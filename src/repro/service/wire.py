"""Wire codec for the serving tier: JSON-safe, bit-exact round trips.

Every transport that crosses a process boundary (the multiprocess worker
queues, the HTTP API) speaks this codec.  Arrays travel as base64 raw
bytes plus their exact dtype string and shape, so decode reproduces the
original array *bit for bit* - the codec adds no quantization, which is
what lets the wire-determinism tests demand bit-identical factorizations
across transports.  Errors travel as a typed envelope
(``{"type", "message", "retryable"}``) that maps back onto the
:mod:`repro.errors` hierarchy on the client, so fault handling (retry a
lost worker, surface a timeout) works the same over HTTP as in process.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import (
    BackpressureError,
    CodebookError,
    ConfigurationError,
    DimensionError,
    RequestTimeoutError,
    ServiceError,
    StaleShardMapError,
    UnknownCodebookError,
    WorkerLostError,
)
from repro.resonator.convergence import Outcome
from repro.resonator.network import FactorizationResult
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.vsa.codebook import Codebook, CodebookSet

# -- arrays ------------------------------------------------------------------


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Encode an array as ``{dtype, shape, data}`` with base64 raw bytes."""
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": contiguous.dtype.str,
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(payload: Dict[str, Any]) -> np.ndarray:
    """Invert :func:`encode_array`; the round trip is bit-exact."""
    try:
        dtype = np.dtype(payload["dtype"])
        shape = tuple(int(n) for n in payload["shape"])
        raw = base64.b64decode(payload["data"])
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(f"malformed array payload: {error}") from None
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if len(raw) != expected:
        raise DimensionError(
            f"array payload carries {len(raw)} bytes but dtype/shape "
            f"{payload['dtype']}/{shape} needs {expected}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


# -- codebooks ---------------------------------------------------------------


def encode_codebooks(codebooks: CodebookSet) -> Dict[str, Any]:
    """Encode a codebook set (algebra tag + per-factor matrices/labels)."""
    return {
        "algebra": codebooks.algebra,
        "codebooks": [
            {
                "name": book.name,
                "labels": list(book.labels) if book.labels else None,
                "matrix": encode_array(book.matrix),
            }
            for book in codebooks.codebooks
        ],
    }


def decode_codebooks(payload: Dict[str, Any]) -> CodebookSet:
    """Invert :func:`encode_codebooks` (content hash is preserved)."""
    try:
        algebra = payload["algebra"]
        books = [
            Codebook(
                name=entry["name"],
                matrix=decode_array(entry["matrix"]),
                labels=list(entry["labels"]) if entry.get("labels") else None,
                algebra=algebra,
            )
            for entry in payload["codebooks"]
        ]
    except (KeyError, TypeError) as error:
        raise ConfigurationError(
            f"malformed codebook payload: {error}"
        ) from None
    return CodebookSet(tuple(books))


# -- requests ----------------------------------------------------------------


def encode_request(request: FactorizationRequest) -> Dict[str, Any]:
    """Encode a request; exactly one of codebooks / codebook_key travels."""
    payload: Dict[str, Any] = {"product": encode_array(request.product)}
    if request.codebooks is not None:
        payload["codebooks"] = encode_codebooks(request.codebooks)
    if request.codebook_key is not None:
        payload["codebook_key"] = request.codebook_key
    if request.seed is not None:
        payload["seed"] = int(request.seed)
    if request.max_iterations is not None:
        payload["max_iterations"] = int(request.max_iterations)
    if request.true_indices is not None:
        payload["true_indices"] = [int(i) for i in request.true_indices]
    if request.request_id is not None:
        payload["request_id"] = request.request_id
    if request.fidelity is not None:
        payload["fidelity"] = request.fidelity
    if request.trace_id is not None:
        payload["trace_id"] = request.trace_id
    return payload


def decode_request(payload: Dict[str, Any]) -> FactorizationRequest:
    """Invert :func:`encode_request` (re-runs request validation)."""
    if not isinstance(payload, dict) or "product" not in payload:
        raise ConfigurationError(
            "malformed request payload: missing 'product'"
        )
    codebooks = (
        decode_codebooks(payload["codebooks"])
        if payload.get("codebooks") is not None
        else None
    )
    true_indices = payload.get("true_indices")
    return FactorizationRequest(
        product=decode_array(payload["product"]),
        codebooks=codebooks,
        codebook_key=payload.get("codebook_key"),
        seed=payload.get("seed"),
        max_iterations=payload.get("max_iterations"),
        true_indices=tuple(true_indices) if true_indices is not None else None,
        request_id=payload.get("request_id"),
        fidelity=payload.get("fidelity"),
        trace_id=payload.get("trace_id"),
    )


# -- results / responses -----------------------------------------------------


def encode_result(result: FactorizationResult) -> Dict[str, Any]:
    """Encode a factorization result (the trace, if any, is dropped)."""
    return {
        "indices": [int(i) for i in result.indices],
        "outcome": result.outcome.value,
        "iterations": int(result.iterations),
        "product_match": bool(result.product_match),
        "correct": result.correct,
        "first_correct_iteration": result.first_correct_iteration,
        "cycle_period": result.cycle_period,
        "elapsed_seconds": float(result.elapsed_seconds),
    }


def decode_result(payload: Dict[str, Any]) -> FactorizationResult:
    """Invert :func:`encode_result`."""
    try:
        return FactorizationResult(
            indices=tuple(int(i) for i in payload["indices"]),
            outcome=Outcome(payload["outcome"]),
            iterations=int(payload["iterations"]),
            product_match=bool(payload["product_match"]),
            correct=payload.get("correct"),
            first_correct_iteration=payload.get("first_correct_iteration"),
            cycle_period=payload.get("cycle_period"),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(f"malformed result payload: {error}") from None


def encode_response(response: FactorizationResponse) -> Dict[str, Any]:
    """Encode a response (result + how the scheduler served it)."""
    return {
        "request_id": response.request_id,
        "result": encode_result(response.result),
        "batch_id": int(response.batch_id),
        "batch_size": int(response.batch_size),
        "cache_hit": bool(response.cache_hit),
        "codebook_key": response.codebook_key,
        "shard": response.shard,
        "node": response.node,
        "trace_id": response.trace_id,
    }


def decode_response(payload: Dict[str, Any]) -> FactorizationResponse:
    """Invert :func:`encode_response`."""
    try:
        return FactorizationResponse(
            request_id=payload.get("request_id"),
            result=decode_result(payload["result"]),
            batch_id=int(payload["batch_id"]),
            batch_size=int(payload["batch_size"]),
            cache_hit=bool(payload["cache_hit"]),
            codebook_key=payload["codebook_key"],
            shard=payload.get("shard"),
            node=payload.get("node"),
            trace_id=payload.get("trace_id"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(
            f"malformed response payload: {error}"
        ) from None


# -- errors ------------------------------------------------------------------

#: Wire name -> exception class, in decode-priority order (subclasses
#: before bases so :func:`error_code` picks the most specific name).
_ERROR_TYPES: List[Any] = [
    ("backpressure", BackpressureError),
    ("worker_lost", WorkerLostError),
    ("stale_shardmap", StaleShardMapError),
    ("timeout", RequestTimeoutError),
    ("unknown_codebook", UnknownCodebookError),
    ("dimension", DimensionError),
    ("configuration", ConfigurationError),
    ("codebook", CodebookError),
    ("service", ServiceError),
]

#: Error codes a client may safely retry: the failure is about serving
#: capacity, a restartable worker, or a routing epoch the client can
#: refresh - never about the request itself - and seeded requests are
#: idempotent.
RETRYABLE_ERRORS = frozenset(
    {"backpressure", "worker_lost", "unknown_codebook", "stale_shardmap"}
)

#: Error codes retrying against the *same* node cannot fix: the client
#: must refresh cluster state (the shard map) first.  The HTTP transport
#: surfaces these immediately instead of burning its backoff ladder.
REFRESH_FIRST_ERRORS = frozenset({"stale_shardmap"})

#: Error code -> HTTP status for the serving tier's responses.
HTTP_STATUS = {
    "configuration": 400,
    "dimension": 400,
    "codebook": 400,
    "unknown_codebook": 404,
    "stale_shardmap": 409,
    "backpressure": 503,
    "worker_lost": 503,
    "timeout": 504,
    "service": 500,
}


def error_code(error: BaseException) -> str:
    """Most specific wire name for an exception (``"service"`` fallback)."""
    for name, cls in _ERROR_TYPES:
        if isinstance(error, cls):
            return name
    return "service"


def is_retryable(code: str) -> bool:
    """True when a client may resubmit after this error code."""
    return code in RETRYABLE_ERRORS


def http_status(code: str) -> int:
    """HTTP status the serving tier answers with for an error code."""
    return HTTP_STATUS.get(code, 500)


def encode_error(error: BaseException) -> Dict[str, Any]:
    """Encode an exception as the typed wire envelope."""
    code = error_code(error)
    return {
        "error": {
            "type": code,
            "message": str(error),
            "retryable": is_retryable(code),
        }
    }


def decode_error(payload: Dict[str, Any]) -> ServiceError:
    """Rebuild the typed exception from a wire envelope.

    Unknown types decode as plain :class:`~repro.errors.ServiceError`, so
    a newer server never crashes an older client.
    """
    envelope = payload.get("error", payload) if isinstance(payload, dict) else {}
    code = envelope.get("type", "service")
    message = envelope.get("message", "unknown server error")
    for name, cls in _ERROR_TYPES:
        if name == code:
            return cls(message)
    return ServiceError(message)


def batch_digest(
    pairs: Sequence[Any],
) -> str:
    """Order-independent sha256 digest over (request_id, result) pairs.

    Accepts ``FactorizationResponse`` objects; the digest covers the
    fields that must replay bit-identically (indices, outcome,
    iterations), sorted by request id so shuffled arrival orders and
    different shard counts produce the same digest iff the factorizations
    match.  The load generator and the determinism tests both use it.
    """
    import hashlib

    rows = []
    for response in pairs:
        result = response.result
        rows.append(
            (
                str(response.request_id),
                ",".join(str(int(i)) for i in result.indices),
                result.outcome.value,
                str(int(result.iterations)),
            )
        )
    digest = hashlib.sha256()
    for row in sorted(rows):
        digest.update("|".join(row).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


__all__ = [
    "encode_array",
    "decode_array",
    "encode_codebooks",
    "decode_codebooks",
    "encode_request",
    "decode_request",
    "encode_result",
    "decode_result",
    "encode_response",
    "decode_response",
    "error_code",
    "is_retryable",
    "http_status",
    "encode_error",
    "decode_error",
    "batch_digest",
    "RETRYABLE_ERRORS",
    "REFRESH_FIRST_ERRORS",
    "HTTP_STATUS",
]
