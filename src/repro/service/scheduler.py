"""Micro-batching factorization service.

:class:`FactorizationService` sits on top of the batched resonator engine
and turns *individual* factorization requests into coalesced stacked
batches - the software analogue of tier-1's SRAM request buffering in
front of the programmed RRAM arrays (Sec. IV-A):

* :meth:`submit` accepts one :class:`~repro.service.request.FactorizationRequest`
  at a time and returns a future; a dispatcher thread groups pending
  requests by batch key (codebook geometry + sweep budget + seededness)
  and flushes a group when it reaches ``max_batch_size`` requests or its
  oldest request has waited ``max_wait_seconds`` - the classic
  micro-batching policy.
* codebooks ride through a content-addressed
  :class:`~repro.service.registry.CodebookRegistry`, so repeated traffic
  against equal-content codebooks pays the programming cost once and
  batches of interned requests run in shared-codebook GEMM mode.
* flushed batches execute on a thread worker pool (the stacked MVMs run
  in numpy with the GIL released); the intake queue is bounded, with a
  blocking or rejecting (:class:`~repro.errors.BackpressureError`)
  backpressure policy.
* :meth:`run_coalesced` is the synchronous twin: it packs a whole request
  list deterministically (planner grouping, submission order) and
  executes inline - the path the experiment sweep drivers use, and the
  reference packing for replay tests.

Determinism: when every request carries a ``seed``, results are
bit-identical for deterministic configurations regardless of arrival
order or batch packing (see :mod:`repro.resonator.replay`).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import baseline_network
from repro.errors import BackpressureError, ConfigurationError, ServiceError
from repro.resonator.batch import NetworkFactory
from repro.resonator.network import FactorizationProblem
from repro.resonator.replay import geometry_key, run_group
from repro.service.profiles import network_factory_for
from repro.service.registry import CodebookRegistry
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.telemetry import (
    BATCH_SIZE_BUCKETS,
    QUEUE_DEPTH_BUCKETS,
    Histogram,
    get_log,
)

#: Geometry (incl. algebra) + sweep budget + seededness + execution
#: profile: what may share a stacked batch.  Bipolar and FHRR traffic
#: never coalesce - their state dtypes and MVM kernels differ - and
#: requests naming different fidelities (see
#: :mod:`repro.service.profiles`) never coalesce either, so one traffic
#: stream can mix algebras and fidelities without cross-contamination.
BatchKey = Tuple[int, Tuple[int, ...], str, Optional[int], bool, str]

_BACKPRESSURE_POLICIES = ("block", "error")


@dataclass
class BatchPolicy:
    """When the scheduler flushes a group of pending requests."""

    #: Flush a group as soon as it holds this many requests.
    max_batch_size: int = 32
    #: ... or as soon as its oldest request has waited this long.
    max_wait_seconds: float = 0.002
    #: Bound on undispatched requests (the intake queue).
    queue_capacity: int = 1024
    #: ``"block"`` the submitter when the queue is full, or ``"error"``
    #: (raise :class:`~repro.errors.BackpressureError`).
    backpressure: str = "block"

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigurationError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        if self.max_wait_seconds < 0:
            raise ConfigurationError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.queue_capacity <= 0:
            raise ConfigurationError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.backpressure not in _BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {_BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )


@dataclass
class ServiceStats:
    """Aggregate intake/batching counters for one service."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    largest_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average requests packed per executed batch."""
        return self.completed / self.batches if self.batches else 0.0


@dataclass
class _Pending:
    """One accepted request waiting for (or riding in) a batch."""

    request: FactorizationRequest
    problem: FactorizationProblem
    codebook_key: str
    cache_hit: bool
    future: "Future[FactorizationResponse]"
    deadline: float = 0.0
    #: Monotonic clock at intake (queue-wait span origin).
    accepted_mono: float = 0.0


class _Flush:
    """Queue sentinel: flush every buffered group, then set the event."""

    def __init__(self) -> None:
        self.done = threading.Event()


_STOP = object()


class FactorizationService:
    """Micro-batching front end over the batched resonator engine.

    Parameters
    ----------
    network_factory:
        Builds the resonator for a problem, exactly as in
        :func:`~repro.resonator.batch.factorize_problems` (the batched
        path calls it once per batch, on the first problem, as a
        template).  Defaults to the deterministic baseline resonator.
    policy:
        Micro-batching flush/backpressure policy.
    registry:
        Codebook registry to intern request codebooks into (a fresh
        64-entry registry by default).
    workers:
        Worker threads executing flushed batches.
    check_correct_every:
        Decode cadence forwarded to the engines.
    """

    def __init__(
        self,
        network_factory: Optional[NetworkFactory] = None,
        *,
        policy: Optional[BatchPolicy] = None,
        registry: Optional[CodebookRegistry] = None,
        workers: int = 2,
        check_correct_every: int = 1,
    ) -> None:
        if workers <= 0:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        self.network_factory: NetworkFactory = (
            network_factory
            if network_factory is not None
            else (lambda problem: baseline_network(problem.codebooks))
        )
        self.policy = policy if policy is not None else BatchPolicy()
        self.registry = registry if registry is not None else CodebookRegistry()
        self.check_correct_every = check_correct_every
        self.stats = ServiceStats()
        #: Batch sizes at flush (surfaced through ``/metrics``).
        self.batch_size_histogram = Histogram(BATCH_SIZE_BUCKETS)
        #: Intake queue depths observed at flush (``/metrics``).
        self.queue_depth_histogram = Histogram(QUEUE_DEPTH_BUCKETS)
        self._stats_lock = threading.Lock()
        # Serializes intake against close(): no submit can sit between the
        # closed check and its queue put while close() enqueues the stop
        # sentinel, so no request can land behind _STOP unobserved.
        self._intake_lock = threading.Lock()
        self._batch_ids = itertools.count()
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.policy.queue_capacity)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="h3dfact-worker"
        )
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="h3dfact-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- intake --------------------------------------------------------------

    def _prepare(self, request: FactorizationRequest) -> _Pending:
        """Resolve the request's codebooks and wrap it for scheduling."""
        if request.codebook_key is not None:
            codebooks = self.registry.get(request.codebook_key)
            key, hit = request.codebook_key, True
        else:
            key, codebooks, hit = self.registry.intern(request.codebooks)
        problem = FactorizationProblem(
            codebooks=codebooks,
            product=request.product,
            true_indices=request.true_indices,
        )
        return _Pending(
            request=request,
            problem=problem,
            codebook_key=key,
            cache_hit=hit,
            future=Future(),
            accepted_mono=time.monotonic(),
        )

    def _batch_key(self, pending: _Pending) -> BatchKey:
        dim, sizes, algebra = geometry_key(pending.problem.codebooks)
        return (
            dim,
            sizes,
            algebra,
            pending.request.max_iterations,
            pending.request.seed is None,
            pending.request.fidelity or "",
        )

    def submit(
        self, request: FactorizationRequest
    ) -> "Future[FactorizationResponse]":
        """Accept one request; the future resolves when its batch runs.

        Blocks (or raises :class:`~repro.errors.BackpressureError`, per
        policy) while the bounded intake queue is full.
        """
        pending = self._prepare(request)
        pending.deadline = time.monotonic() + self.policy.max_wait_seconds
        with self._intake_lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self.policy.backpressure == "error":
                try:
                    self._queue.put_nowait(pending)
                except queue.Full:
                    with self._stats_lock:
                        self.stats.rejected += 1
                    raise BackpressureError(
                        f"intake queue full ({self.policy.queue_capacity} "
                        "pending)"
                    ) from None
            else:
                # Blocking put: the dispatcher keeps draining (close() is
                # held off by the intake lock), so this terminates.
                self._queue.put(pending)
        with self._stats_lock:
            self.stats.submitted += 1
        log = get_log()
        if log.enabled:
            log.emit(
                "request.enqueued",
                trace_id=request.trace_id,
                request_id=request.request_id,
                queue_depth=self._queue.qsize(),
                cache_hit=pending.cache_hit,
            )
        return pending.future

    def submit_many(
        self, requests: Sequence[FactorizationRequest]
    ) -> List["Future[FactorizationResponse]"]:
        """Submit a request stream in order; one future per request."""
        return [self.submit(request) for request in requests]

    def run(
        self,
        requests: Sequence[FactorizationRequest],
        *,
        timeout: Optional[float] = None,
    ) -> List[FactorizationResponse]:
        """Submit ``requests``, flush, and gather responses in order."""
        futures = self.submit_many(requests)
        self.flush()
        return [future.result(timeout=timeout) for future in futures]

    def flush(self, timeout: Optional[float] = None) -> None:
        """Force-dispatch every buffered group (in-flight batches excluded)."""
        sentinel = _Flush()
        with self._intake_lock:
            if self._closed:
                return
            self._queue.put(sentinel)
        sentinel.done.wait(timeout=timeout)

    # -- synchronous deterministic packing -----------------------------------

    def run_coalesced(
        self,
        requests: Sequence[FactorizationRequest],
        *,
        network_factory: Optional[NetworkFactory] = None,
        max_batch_size: Optional[int] = None,
        check_correct_every: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> List[FactorizationResponse]:
        """Pack and execute a whole request list inline, deterministically.

        Groups by batch key in first-appearance order (submission order
        within a group), optionally chunks groups at ``max_batch_size``
        (``None`` packs each group whole), and executes chunks serially in
        the calling thread - no arrival timing, so a given request list
        always produces the same packing.  This is the sweep drivers'
        path: a homogeneous trial list becomes exactly one shared-stream
        batch, bit-identical to the historical
        :func:`~repro.resonator.batch.factorize_problems` drivers.
        """
        if not requests:
            raise ConfigurationError("run_coalesced() needs at least one request")
        if max_batch_size is not None and max_batch_size <= 0:
            raise ConfigurationError(
                f"max_batch_size must be positive, got {max_batch_size}"
            )
        if self._closed:
            raise ServiceError("service is closed")
        cadence = (
            self.check_correct_every
            if check_correct_every is None
            else check_correct_every
        )
        pendings = [self._prepare(request) for request in requests]
        with self._stats_lock:
            self.stats.submitted += len(pendings)
        groups: Dict[BatchKey, List[_Pending]] = {}
        for pending in pendings:
            groups.setdefault(self._batch_key(pending), []).append(pending)
        for members in groups.values():
            step = len(members) if max_batch_size is None else max_batch_size
            for start in range(0, len(members), step):
                self._run_batch(
                    members[start : start + step],
                    network_factory=network_factory,
                    check_correct_every=cadence,
                    engine=engine,
                    reason="coalesced",
                )
        return [pending.future.result() for pending in pendings]

    # -- dispatcher ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        buffers: Dict[BatchKey, List[_Pending]] = {}

        def flush_all(reason: str) -> None:
            """Submit every buffered group, regardless of age or size."""
            for members in buffers.values():
                self._submit_batch(members, reason)
            buffers.clear()

        while True:
            timeout: Optional[float] = None
            if buffers:
                earliest = min(members[0].deadline for members in buffers.values())
                timeout = max(0.0, earliest - time.monotonic())
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                item = None
            if item is _STOP:
                flush_all("close")
                return
            if isinstance(item, _Flush):
                flush_all("flush")
                item.done.set()
            elif isinstance(item, _Pending):
                key = self._batch_key(item)
                members = buffers.setdefault(key, [])
                members.append(item)
                if len(members) >= self.policy.max_batch_size:
                    self._submit_batch(buffers.pop(key), "size")
            now = time.monotonic()
            for key in [
                k for k, members in buffers.items() if members[0].deadline <= now
            ]:
                self._submit_batch(buffers.pop(key), "deadline")

    def _submit_batch(self, batch: List[_Pending], reason: str) -> None:
        # Queue depth is sampled at the flush decision (the dispatcher's
        # view of the backlog), not when the worker eventually runs.
        depth = self._queue.qsize()
        self._executor.submit(
            self._run_batch, batch, reason=reason, queue_depth=depth
        )

    # -- execution -----------------------------------------------------------

    def _run_batch(
        self,
        batch: List[_Pending],
        *,
        network_factory: Optional[NetworkFactory] = None,
        check_correct_every: Optional[int] = None,
        engine: Optional[str] = None,
        reason: str = "coalesced",
        queue_depth: int = 0,
    ) -> None:
        """Execute one coalesced batch and resolve its futures.

        Factory resolution: an explicit ``network_factory`` wins, then the
        batch's named fidelity profile (uniform across the batch - it is
        part of the batch key), then the service default.  ``reason``
        records *why* the dispatcher flushed this group (``"size"``,
        ``"deadline"``, ``"flush"``, ``"close"``, or ``"coalesced"`` for
        the synchronous path) and ``queue_depth`` the intake backlog at
        the flush decision - both feed the telemetry log and histograms.
        """
        if network_factory is not None:
            factory = network_factory
        elif batch[0].request.fidelity is not None:
            factory = network_factory_for(batch[0].request.fidelity)
        else:
            factory = self.network_factory
        cadence = (
            self.check_correct_every
            if check_correct_every is None
            else check_correct_every
        )
        batch_id = next(self._batch_ids)
        self.batch_size_histogram.observe(len(batch))
        self.queue_depth_histogram.observe(queue_depth)
        log = get_log()
        batched_mono = time.monotonic()
        if log.enabled:
            key = self._batch_key(batch[0])
            log.emit(
                "batch.flush",
                batch_id=batch_id,
                reason=reason,
                size=len(batch),
                queue_depth=queue_depth,
                dim=key[0],
                algebra=key[2],
                fidelity=key[5] or None,
                seeded=not key[4],
            )
            for pending in batch:
                log.emit(
                    "request.batched",
                    trace_id=pending.request.trace_id,
                    request_id=pending.request.request_id,
                    batch_id=batch_id,
                    batch_size=len(batch),
                    queue_wait_s=batched_mono - pending.accepted_mono,
                )
        try:
            results = run_group(
                factory,
                [pending.problem for pending in batch],
                seeds=[pending.request.seed for pending in batch],
                max_iterations=batch[0].request.max_iterations,
                check_correct_every=cadence,
                engine=engine,
            )
        except BaseException as error:  # resolve futures, never hang clients
            with self._stats_lock:
                self.stats.failed += len(batch)
            if log.enabled:
                for pending in batch:
                    log.emit(
                        "request.failed",
                        trace_id=pending.request.trace_id,
                        request_id=pending.request.request_id,
                        batch_id=batch_id,
                        error=type(error).__name__,
                    )
            for pending in batch:
                pending.future.set_exception(error)
            return
        engine_s = time.monotonic() - batched_mono
        if log.enabled:
            log.emit(
                "batch.executed",
                batch_id=batch_id,
                size=len(batch),
                engine_s=engine_s,
                iterations_max=max(int(r.iterations) for r in results),
            )
        for pending, result in zip(batch, results):
            pending.future.set_result(
                FactorizationResponse(
                    request_id=pending.request.request_id,
                    result=result,
                    batch_id=batch_id,
                    batch_size=len(batch),
                    cache_hit=pending.cache_hit,
                    codebook_key=pending.codebook_key,
                    trace_id=pending.request.trace_id,
                )
            )
            if log.enabled:
                log.emit(
                    "request.completed",
                    trace_id=pending.request.trace_id,
                    request_id=pending.request.request_id,
                    batch_id=batch_id,
                    outcome=result.outcome.value,
                    iterations=int(result.iterations),
                    queue_wait_s=batched_mono - pending.accepted_mono,
                    engine_s=engine_s,
                )
        with self._stats_lock:
            self.stats.completed += len(batch)
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            if len(batch) > 1:
                self.stats.coalesced_requests += len(batch)

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun (no further intake)."""
        return self._closed

    def close(self) -> None:
        """Flush pending work, stop the dispatcher and the worker pool."""
        with self._intake_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        self._dispatcher.join()
        # Belt and braces: fail any future that somehow landed behind the
        # stop sentinel instead of leaving it unresolved.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Pending):
                item.future.set_exception(
                    ServiceError("service closed before the request dispatched")
                )
            elif isinstance(item, _Flush):
                item.done.set()
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "FactorizationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FactorizationService(policy={self.policy!r}, "
            f"registry={self.registry!r}, stats={self.stats!r})"
        )
