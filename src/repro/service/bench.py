"""``h3dfact serve-bench``: coalesced vs per-request serving throughput.

Generates a fixed-seed stream of same-geometry requests against one shared
codebook set and serves it twice:

* **per-request** - one factorization at a time through the sequential
  engine, the pre-service serving model;
* **coalesced** - the same requests submitted one by one to a
  :class:`~repro.service.scheduler.FactorizationService`, which interns
  the codebooks once and flushes stacked micro-batches.

Every request carries its own seed and the default network is the
deterministic baseline resonator, so both paths decode *bit-identical*
results (the parity row) and every non-wall-clock row is reproducible
from ``--seed``.  Wall-clock rows are machine-dependent and are labeled
as such.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.engine import baseline_network
from repro.errors import ConfigurationError
from repro.resonator.network import FactorizationProblem, FactorizationResult
from repro.resonator.replay import run_group
from repro.service.registry import CodebookRegistry
from repro.service.request import FactorizationRequest
from repro.service.scheduler import BatchPolicy, FactorizationService
from repro.utils.rng import as_rng
from repro.vsa.algebra import ALGEBRAS
from repro.vsa.codebook import CodebookSet


@dataclass
class ServeBenchConfig:
    """Workload knobs for ``h3dfact serve-bench`` (one shared codebook set)."""

    dim: int = 1024
    num_factors: int = 3
    codebook_size: int = 64
    requests: int = 32
    max_batch_size: int = 32
    max_iterations: int = 30
    workers: int = 2
    seed: int = 0
    #: Holographic algebra of the request stream ("bipolar" or "fhrr");
    #: the default factory resolves the matching deterministic baseline.
    algebra: str = "bipolar"

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise ConfigurationError(
                f"requests must be positive, got {self.requests}"
            )
        if self.algebra not in ALGEBRAS:
            raise ConfigurationError(
                f"algebra must be one of {ALGEBRAS}, got {self.algebra!r}"
            )


@dataclass
class ServeBenchResult:
    """Measurements from one serve-bench run (parity + packing + timing)."""

    config: ServeBenchConfig
    solved: int
    parity: bool
    batches: int
    mean_batch_size: float
    largest_batch: int
    cache_hits: int
    cache_misses: int
    per_request_seconds: float
    coalesced_seconds: float

    @property
    def accuracy(self) -> float:
        """Fraction of requests solved within the sweep budget."""
        return self.solved / self.config.requests

    @property
    def speedup(self) -> float:
        """Per-request wall-clock over coalesced wall-clock."""
        if self.coalesced_seconds <= 0:
            return float("inf")
        return self.per_request_seconds / self.coalesced_seconds

    def render(self) -> str:
        """Human-readable report (wall-clock rows marked machine-dependent)."""
        config = self.config
        hit_total = self.cache_hits + self.cache_misses
        hit_rate = 100.0 * self.cache_hits / hit_total if hit_total else 0.0
        per_rps = (
            config.requests / self.per_request_seconds
            if self.per_request_seconds > 0
            else float("inf")
        )
        co_rps = (
            config.requests / self.coalesced_seconds
            if self.coalesced_seconds > 0
            else float("inf")
        )
        return "\n".join(
            [
                "Serve-bench - micro-batching factorization service",
                f"  workload: {config.requests} requests, D={config.dim} "
                f"F={config.num_factors} M={config.codebook_size}, "
                f"algebra={config.algebra}, shared codebooks, budget "
                f"{config.max_iterations} sweeps",
                f"  accuracy: {100.0 * self.accuracy:.1f} % "
                f"({self.solved}/{config.requests} solved)",
                "  deterministic parity (coalesced == per-request): "
                + ("OK" if self.parity else "MISMATCH"),
                f"  batches: {self.batches} (mean size "
                f"{self.mean_batch_size:.1f}, largest {self.largest_batch})",
                f"  codebook cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses (hit rate {hit_rate:.1f} %)",
                f"  wall-clock per-request: {self.per_request_seconds:.3f} s "
                f"({per_rps:.1f} req/s, machine-dependent)",
                f"  wall-clock coalesced:   {self.coalesced_seconds:.3f} s "
                f"({co_rps:.1f} req/s, machine-dependent)",
                f"  wall-clock speedup: {self.speedup:.1f}x (machine-dependent)",
            ]
        )


def _same_result(a: FactorizationResult, b: FactorizationResult) -> bool:
    return (
        a.indices == b.indices
        and a.outcome == b.outcome
        and a.iterations == b.iterations
    )


def run_serve_bench(config: Optional[ServeBenchConfig] = None) -> ServeBenchResult:
    """Serve one seeded stream per-request then coalesced; compare and time."""
    config = config or ServeBenchConfig()
    rng = as_rng(config.seed)
    codebooks = CodebookSet.random_uniform(
        config.dim,
        config.num_factors,
        config.codebook_size,
        rng=rng,
        algebra=config.algebra,
    )
    problems: List[FactorizationProblem] = []
    requests: List[FactorizationRequest] = []
    for index in range(config.requests):
        indices = tuple(
            int(rng.integers(0, config.codebook_size))
            for _ in range(config.num_factors)
        )
        problem = FactorizationProblem.from_indices(codebooks, indices)
        problems.append(problem)
        requests.append(
            FactorizationRequest.from_problem(
                problem,
                seed=config.seed * 1_000_003 + index,
                max_iterations=config.max_iterations,
                request_id=str(index),
            )
        )
    factory = lambda p: baseline_network(  # noqa: E731
        p.codebooks, max_iterations=config.max_iterations
    )

    start = time.perf_counter()
    per_request = [
        run_group(
            factory,
            [problem],
            seeds=[request.seed],
            max_iterations=config.max_iterations,
            engine="sequential",
        )[0]
        for problem, request in zip(problems, requests)
    ]
    per_request_seconds = time.perf_counter() - start

    service = FactorizationService(
        factory,
        policy=BatchPolicy(
            max_batch_size=config.max_batch_size,
            # Generous deadline: packing is decided by batch size, not by
            # submission latency, so the printed batch counts reproduce.
            max_wait_seconds=0.25,
        ),
        registry=CodebookRegistry(capacity=8),
        workers=config.workers,
    )
    with service:
        start = time.perf_counter()
        responses = service.run(requests)
        coalesced_seconds = time.perf_counter() - start

    parity = all(
        _same_result(response.result, expected)
        for response, expected in zip(responses, per_request)
    )
    solved = sum(1 for result in per_request if result.correct)
    return ServeBenchResult(
        config=config,
        solved=solved,
        parity=parity,
        batches=service.stats.batches,
        mean_batch_size=service.stats.mean_batch_size,
        largest_batch=service.stats.largest_batch,
        cache_hits=service.registry.stats.hits,
        cache_misses=service.registry.stats.misses,
        per_request_seconds=per_request_seconds,
        coalesced_seconds=coalesced_seconds,
    )
