"""Retrying keep-alive HTTP client for the serving tier.

:class:`HTTPTransport` is the :class:`~repro.service.transport.Transport`
that speaks to a remote :class:`~repro.service.http.server.H3DFactHTTPServer`.
Connections are per-thread keep-alive :class:`http.client.HTTPConnection`
objects, so the closed-loop load generator's worker threads each hold one
socket.  Failures retry on a :class:`RetryPolicy` backoff ladder with
*full jitter* by default (each sleep is uniform in ``[0, rung]``, so a
fleet of clients knocked loose by the same node death does not
thundering-herd back in lockstep); pass ``jitter_seed`` for a
deterministic jitter stream, or ``jitter="none"`` for the bare ladder.
Retries fire in two cases:

* **connection-level** errors (reset, refused, dropped keep-alive) -
  always retryable: the request may not have reached a worker, and
  seeded requests are idempotent so a duplicate execution is harmless
  *and* bit-identical; final failure raises the typed
  :class:`~repro.errors.TransportError` so cluster callers can tell
  "node unreachable" from server-side errors;
* **typed retryable envelopes** (backpressure, worker lost,
  unknown-codebook races) - the server said "try again".

The exception is :data:`repro.service.wire.REFRESH_FIRST_ERRORS`
(``stale_shardmap``): retrying the *same* node cannot help, so those
surface immediately for the cluster client to refresh its shard map.

Scatter calls resubmit only the failed positions, so a mid-load worker
kill costs retries, never lost or duplicated responses - the
fault-injection suite pins exactly that.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.errors import ConfigurationError, ServiceError, TransportError
from repro.service import wire
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.service.transport import ResponseOrError, Transport
from repro.telemetry import get_log
from repro.vsa.codebook import CodebookSet


@dataclass(frozen=True)
class RetryPolicy:
    """Retry ladder for retryable failures, with optional full jitter.

    The ladder caps the sleep; ``jitter="full"`` (the default) draws each
    actual sleep uniformly from ``[0, rung]`` - the AWS "full jitter"
    scheme, which desynchronises a fleet of clients that all saw the same
    failure at the same instant.  ``jitter="none"`` sleeps the bare rung.
    Determinism is the *caller's* choice of RNG: :meth:`backoff` with no
    ``rng`` is jitter-free, and :class:`HTTPTransport` seeds its RNG from
    ``jitter_seed`` when reproducible timing matters (results are
    bit-identical either way - jitter only moves sleeps).
    """

    #: Total attempts per request (first try included).
    max_attempts: int = 5
    #: Sleep cap before retry k (clamped to the last rung).
    backoff_seconds: Tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.5)
    #: ``"full"`` = uniform in [0, rung]; ``"none"`` = exactly the rung.
    jitter: str = "full"

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigurationError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if not self.backoff_seconds:
            raise ConfigurationError("backoff_seconds must not be empty")
        if self.jitter not in ("full", "none"):
            raise ConfigurationError(
                f"jitter must be 'full' or 'none', got {self.jitter!r}"
            )

    def backoff(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        index = min(attempt - 1, len(self.backoff_seconds) - 1)
        rung = self.backoff_seconds[index]
        if self.jitter == "full" and rng is not None:
            return rng.uniform(0.0, rung)
        return rung


class _Connection(http.client.HTTPConnection):
    """Keep-alive connection with Nagle disabled (small JSON exchanges)."""

    def connect(self) -> None:
        """Connect, then set ``TCP_NODELAY`` (avoids ~40ms ACK stalls)."""
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


@dataclass
class ClientStats:
    """Retry/resubmission counters for one client."""

    requests: int = 0
    retries: int = 0
    resubmitted: int = 0


class HTTPTransport(Transport):
    """Transport over HTTP with typed-error retries.

    ``timeout`` is the default per-request serving deadline forwarded to
    the server; the socket timeout stretches beyond it so the typed 504
    arrives instead of a raw socket error.
    """

    def __init__(
        self,
        url: str,
        *,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        socket_margin: float = 10.0,
        jitter_seed: Optional[int] = None,
    ) -> None:
        parts = urlsplit(url)
        if parts.scheme not in ("http", "") or not parts.netloc and not parts.path:
            raise ConfigurationError(f"unsupported server url {url!r}")
        netloc = parts.netloc or parts.path
        host, _, port = netloc.partition(":")
        if not host or not port:
            raise ConfigurationError(
                f"server url must name host:port, got {url!r}"
            )
        self.host = host
        self.port = int(port)
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.socket_margin = socket_margin
        #: Shard-map epoch stamped onto /eval and /batch_eval bodies when
        #: set (the cluster client keeps it current; plain clients leave
        #: it ``None`` and the server skips the staleness check).
        self.epoch: Optional[int] = None
        self.stats = ClientStats()
        self._stats_lock = threading.Lock()
        self._local = threading.local()
        self._rng = random.Random(jitter_seed)
        self._rng_lock = threading.Lock()

    def _sleep(self, attempt: int) -> None:
        """Back off before retry ``attempt`` (jittered per the policy)."""
        with self._rng_lock:
            seconds = self.retry.backoff(attempt, self._rng)
        time.sleep(seconds)

    # -- connection management ----------------------------------------------

    def _socket_timeout(self, timeout: Optional[float]) -> float:
        deadline = timeout if timeout is not None else self.timeout
        return (deadline or 0.0) + self.socket_margin

    def _connection(self, timeout: Optional[float]) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = _Connection(
                self.host, self.port, timeout=self._socket_timeout(timeout)
            )
            self._local.connection = connection
        else:
            connection.timeout = self._socket_timeout(timeout)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    # -- request plumbing ----------------------------------------------------

    def _roundtrip(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        *,
        timeout: Optional[float],
    ) -> Tuple[int, Dict[str, Any]]:
        """One HTTP exchange; raises ``OSError``-family on transport loss."""
        connection = self._connection(timeout)
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            connection.request(method, path, body=payload, headers=headers)
            answer = connection.getresponse()
            raw = answer.read()
        except BaseException:
            self._drop_connection()
            raise
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError as error:
            raise ServiceError(
                f"server answered non-JSON ({answer.status}): {error}"
            ) from None
        return answer.status, decoded

    def _send(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Exchange with retries; raises the typed error on final failure."""
        with self._stats_lock:
            self.stats.requests += 1
        attempt = 0
        while True:
            attempt += 1
            try:
                status, payload = self._roundtrip(
                    method, path, body, timeout=timeout
                )
            except (OSError, http.client.HTTPException) as error:
                if attempt >= self.retry.max_attempts:
                    raise TransportError(
                        f"{method} {path} failed after {attempt} attempts: "
                        f"{error}"
                    ) from error
                with self._stats_lock:
                    self.stats.retries += 1
                self._sleep(attempt)
                continue
            if status < 400:
                return payload
            error = wire.decode_error(payload)
            envelope = (
                payload.get("error", {}) if isinstance(payload, dict) else {}
            )
            # Refresh-first errors (stale shard map): retrying the same
            # node cannot succeed, so surface immediately for the caller
            # to refresh its routing state and go elsewhere.
            if envelope.get("type") in wire.REFRESH_FIRST_ERRORS:
                raise error
            if not envelope.get("retryable", False) or (
                attempt >= self.retry.max_attempts
            ):
                raise error
            with self._stats_lock:
                self.stats.retries += 1
            self._sleep(attempt)

    def request_json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One JSON exchange with the standard retry/typed-error handling.

        The public face of :meth:`_send` for endpoints outside the
        transport seam - the cluster tier uses it for ``/shardmap`` and
        the membership routes.
        """
        return self._send(method, path, body, timeout=timeout)

    # -- Transport implementation --------------------------------------------

    def evaluate(
        self,
        request: FactorizationRequest,
        *,
        timeout: Optional[float] = None,
    ) -> FactorizationResponse:
        """POST /eval with retries; returns the decoded response."""
        body: Dict[str, Any] = {"request": wire.encode_request(request)}
        deadline = timeout if timeout is not None else self.timeout
        if deadline is not None:
            body["timeout"] = deadline
        if self.epoch is not None:
            body["epoch"] = self.epoch
        log = get_log()
        started = time.monotonic()
        payload = self._send("POST", "/eval", body, timeout=deadline)
        response = wire.decode_response(payload["response"])
        if log.enabled:
            log.emit(
                "client.request",
                trace_id=response.trace_id or request.trace_id,
                request_id=request.request_id,
                seconds=time.monotonic() - started,
                shard=response.shard,
            )
        return response

    def evaluate_scatter(
        self,
        requests: Sequence[FactorizationRequest],
        *,
        timeout: Optional[float] = None,
    ) -> List[ResponseOrError]:
        """POST /batch_eval, resubmitting only retryable failed positions."""
        deadline = timeout if timeout is not None else self.timeout
        results: List[Optional[ResponseOrError]] = [None] * len(requests)
        open_positions = list(range(len(requests)))
        log = get_log()
        started = time.monotonic()
        attempt = 0
        while open_positions:
            attempt += 1
            body: Dict[str, Any] = {
                "requests": [
                    wire.encode_request(requests[position])
                    for position in open_positions
                ]
            }
            if deadline is not None:
                body["timeout"] = deadline
            if self.epoch is not None:
                body["epoch"] = self.epoch
            payload = self._send(
                "POST", "/batch_eval", body, timeout=deadline
            )
            items = payload.get("results", [])
            if len(items) != len(open_positions):
                raise ServiceError(
                    f"/batch_eval answered {len(items)} items for "
                    f"{len(open_positions)} requests"
                )
            retry_positions = []
            for position, item in zip(open_positions, items):
                if "response" in item:
                    results[position] = wire.decode_response(item["response"])
                    continue
                envelope = item.get("error", {})
                if (
                    envelope.get("retryable", False)
                    and envelope.get("type") not in wire.REFRESH_FIRST_ERRORS
                    and attempt < self.retry.max_attempts
                ):
                    retry_positions.append(position)
                else:
                    # Refresh-first errors land here on purpose: the
                    # decoded exception fills the slot so a cluster
                    # caller can re-route just that position.
                    results[position] = wire.decode_error(item)
            if retry_positions:
                with self._stats_lock:
                    self.stats.resubmitted += len(retry_positions)
                self._sleep(attempt)
            open_positions = retry_positions
        if log.enabled:
            log.emit(
                "client.batch",
                size=len(requests),
                attempts=attempt,
                seconds=time.monotonic() - started,
                failed=sum(
                    1 for item in results if isinstance(item, BaseException)
                ),
            )
        return list(results)  # type: ignore[arg-type]

    def register_codebooks(self, codebooks: CodebookSet) -> str:
        """POST /codebooks; returns the registry key."""
        payload = self._send(
            "POST", "/codebooks", {"codebooks": wire.encode_codebooks(codebooks)}
        )
        return payload["codebook_key"]

    def health(self) -> Dict[str, Any]:
        """GET /health."""
        return self._send("GET", "/health", None)

    def metrics(self) -> Dict[str, Any]:
        """GET /metrics."""
        return self._send("GET", "/metrics", None)

    def close(self) -> None:
        """Drop this thread's keep-alive connection."""
        self._drop_connection()


#: The ROADMAP names this surface after EvoAlpha's ``factor_eval_client``;
#: keep that spelling available.
FactorizationClient = HTTPTransport
