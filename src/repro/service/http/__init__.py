"""HTTP serving tier: stdlib-only server, retrying client, load generator.

The network front door for factorization traffic (ROADMAP "serving from
millions of users" north star).  Three pieces, all speaking the wire
codec of :mod:`repro.service.wire`:

* :class:`~repro.service.http.server.H3DFactHTTPServer` - a threaded
  ``http.server`` exposing ``/health``, ``/eval``, ``/batch_eval``,
  ``/metrics`` and ``/codebooks`` over any
  :class:`~repro.service.transport.Transport`;
* :class:`~repro.service.http.client.HTTPTransport` - a keep-alive
  client with a deterministic retry ladder for retryable failures
  (backpressure, worker loss, unknown-codebook races);
* :mod:`~repro.service.http.loadgen` - a closed-loop load generator
  reporting p50/p95/p99 latency and throughput vs. offered load, plus an
  order-independent result digest for cross-deployment bit-identity
  checks.
"""

from repro.service.http.client import FactorizationClient, HTTPTransport, RetryPolicy
from repro.service.http.loadgen import LoadGenConfig, LoadGenReport, run_loadgen
from repro.service.http.server import H3DFactHTTPServer

__all__ = [
    "H3DFactHTTPServer",
    "HTTPTransport",
    "FactorizationClient",
    "RetryPolicy",
    "LoadGenConfig",
    "LoadGenReport",
    "run_loadgen",
]
