"""Closed-loop load generator for the serving tier.

Offers a deterministic seeded workload to any
:class:`~repro.service.transport.Transport` at a fixed concurrency: C
worker threads each hold one in-flight request at a time (closed loop),
pulling work from a shared cursor until the request list is exhausted.
Per level the report carries throughput, p50/p95/p99 latency, error and
retry counts - and an order-independent sha256 digest over the
factorizations, so two deployments (in-process vs. HTTP, 1 vs. 4 shards)
can be checked for bit-identity by comparing one hex string.  Wall-clock
rows are labelled machine-dependent; the digest/solved rows are what the
seeded CLI smokes compare.

The workload spreads requests round-robin over several codebook sets
because the pool routes by codebook fingerprint: one set pins all traffic
to one shard (correct, but serial), while K >= shards sets exercise the
ring's load spreading - the honest way to measure shard scaling.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.service import wire
from repro.service.http.client import HTTPTransport
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.service.transport import Transport
from repro.utils.rng import as_rng
from repro.vsa.codebook import CodebookSet

#: Per-request seed stride (a prime, so request seeds never collide with
#: the small consecutive seeds tests like to use for codebooks).
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class LoadGenConfig:
    """Workload shape and sweep levels for one load-generator run."""

    #: Hypervector dimensionality of the workload.
    dim: int = 256
    #: Number of factors (codebooks per set).
    num_factors: int = 3
    #: Code vectors per factor.
    codebook_size: int = 32
    #: Distinct codebook sets traffic round-robins over (>= shard count
    #: exercises ring load-spreading).
    codebook_sets: int = 4
    #: Requests per concurrency level.
    requests: int = 64
    #: Closed-loop concurrency levels to sweep.
    concurrency: Tuple[int, ...] = (1, 8, 64)
    #: Sweep budget per request.
    max_iterations: int = 30
    #: Master seed: codebooks, ground truths and request seeds derive
    #: from it, so equal configs mean equal workloads bit for bit.
    seed: int = 0
    #: Workload algebra ("bipolar" or "fhrr").
    algebra: str = "bipolar"
    #: Execution profile requests carry (see :mod:`repro.service.profiles`).
    fidelity: str = "baseline"
    #: Pre-register codebook sets and send keyed requests (small wire
    #: payloads, program-once); inline codebooks otherwise.
    use_registry: bool = True

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise ConfigurationError(
                f"requests must be positive, got {self.requests}"
            )
        if self.codebook_sets <= 0:
            raise ConfigurationError(
                f"codebook_sets must be positive, got {self.codebook_sets}"
            )
        if not self.concurrency or any(c <= 0 for c in self.concurrency):
            raise ConfigurationError(
                f"concurrency levels must be positive, got {self.concurrency}"
            )


@dataclass
class LevelReport:
    """One concurrency level's closed-loop measurements."""

    concurrency: int
    requests: int
    seconds: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    errors: int
    solved: int
    digest: str

    def to_record(self) -> dict:
        """This level as one BENCH-style metrics record (no timestamp).

        Mirrors the ``{"kind": "metrics", ...}`` schema of the
        ``BENCH_<area>.json`` trajectory files so ``h3dfact loadgen
        --json`` output can be appended to them or diffed directly;
        the caller stamps ``timestamp``/``machine``.
        """
        return {
            "kind": "metrics",
            "concurrency": self.concurrency,
            "requests": self.requests,
            "seconds": self.seconds,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "errors": self.errors,
            "solved": self.solved,
            "digest": self.digest,
        }


@dataclass
class LoadGenReport:
    """Full sweep: per-level rows plus workload identity."""

    config: LoadGenConfig
    levels: List[LevelReport] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report (stable rows first, wall-clock labelled)."""
        lines = [
            "h3dfact loadgen - closed-loop latency/throughput sweep",
            f"  workload: D={self.config.dim} F={self.config.num_factors} "
            f"M={self.config.codebook_size} sets={self.config.codebook_sets} "
            f"algebra={self.config.algebra} fidelity={self.config.fidelity} "
            f"seed={self.config.seed}",
            f"  requests per level: {self.config.requests} "
            f"(registry={'on' if self.config.use_registry else 'off'})",
        ]
        for level in self.levels:
            lines.append(
                f"  C={level.concurrency:<4d} solved={level.solved}/"
                f"{level.requests} errors={level.errors} "
                f"digest={level.digest[:16]}"
            )
            lines.append(
                f"    {level.throughput_rps:8.1f} req/s  "
                f"p50={level.p50_ms:7.2f}ms p95={level.p95_ms:7.2f}ms "
                f"p99={level.p99_ms:7.2f}ms "
                f"({level.seconds:.2f}s wall) [machine-dependent]"
            )
        digests = {level.digest for level in self.levels}
        lines.append(
            "  digest across levels: "
            + ("IDENTICAL" if len(digests) == 1 else "DIVERGENT")
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable sweep: workload identity + BENCH-style levels.

        The shape ``h3dfact loadgen --json`` prints: a ``workload`` block
        naming the deterministic inputs, ``timestamp``/``machine`` stamps,
        and one :meth:`LevelReport.to_record` row per level under
        ``levels`` (the same schema the ``BENCH_<area>.json`` trajectory
        files use).
        """
        import platform
        import time as _time

        machine = (
            f"{platform.system()}-{platform.machine()}"
            f"-py{platform.python_version()}"
        )
        digests = {level.digest for level in self.levels}
        return {
            "kind": "loadgen",
            "timestamp": _time.time(),
            "machine": machine,
            "workload": {
                "dim": self.config.dim,
                "num_factors": self.config.num_factors,
                "codebook_size": self.config.codebook_size,
                "codebook_sets": self.config.codebook_sets,
                "requests": self.config.requests,
                "max_iterations": self.config.max_iterations,
                "seed": self.config.seed,
                "algebra": self.config.algebra,
                "fidelity": self.config.fidelity,
                "use_registry": self.config.use_registry,
            },
            "levels": [level.to_record() for level in self.levels],
            "digest_identical": len(digests) == 1,
        }


def build_workload(
    config: LoadGenConfig,
) -> Tuple[List[CodebookSet], List[FactorizationRequest]]:
    """Deterministic codebook sets + seeded request list for a config.

    Request ``i`` targets set ``i % codebook_sets`` with per-request seed
    ``seed * stride + i``; everything derives from ``config.seed``, so
    two load generators pointed at different deployments offer the *same*
    workload and their digests are comparable.
    """
    sets = [
        CodebookSet.random(
            dim=config.dim,
            sizes=(config.codebook_size,) * config.num_factors,
            rng=as_rng(config.seed * _SEED_STRIDE + 7919 * (index + 1)),
            algebra=config.algebra,
        )
        for index in range(config.codebook_sets)
    ]
    requests = []
    for index in range(config.requests):
        codebooks = sets[index % config.codebook_sets]
        rng = as_rng(config.seed * _SEED_STRIDE + index)
        indices = tuple(
            int(rng.integers(0, config.codebook_size))
            for _ in range(config.num_factors)
        )
        requests.append(
            FactorizationRequest(
                product=codebooks.compose(indices),
                codebooks=codebooks,
                seed=config.seed * _SEED_STRIDE + index,
                max_iterations=config.max_iterations,
                true_indices=indices,
                request_id=str(index),
                fidelity=config.fidelity,
                # Deterministic per-request trace id: telemetry joins
                # client rows to server lifecycle without minting (trace
                # ids never feed seeds, so results are unaffected).
                trace_id=f"t{config.seed}-{index}",
            )
        )
    return sets, requests


def _keyed(
    requests: Sequence[FactorizationRequest], keys: Sequence[str]
) -> List[FactorizationRequest]:
    """Rewrite inline-codebook requests to keyed requests (same seeds)."""
    keyed = []
    for index, request in enumerate(requests):
        keyed.append(
            FactorizationRequest(
                product=request.product,
                codebook_key=keys[index % len(keys)],
                seed=request.seed,
                max_iterations=request.max_iterations,
                true_indices=request.true_indices,
                request_id=request.request_id,
                fidelity=request.fidelity,
                trace_id=request.trace_id,
            )
        )
    return keyed


def _run_level(
    transport: Transport,
    requests: Sequence[FactorizationRequest],
    concurrency: int,
    *,
    timeout: Optional[float],
) -> LevelReport:
    """Offer the request list at one closed-loop concurrency."""
    cursor = iter(range(len(requests)))
    cursor_lock = threading.Lock()
    latencies: List[float] = []
    responses: List[FactorizationResponse] = []
    errors: List[BaseException] = []
    sink_lock = threading.Lock()

    def worker() -> None:
        """One closed-loop lane: keep exactly one request in flight."""
        while True:
            with cursor_lock:
                index = next(cursor, None)
            if index is None:
                return
            started = time.perf_counter()
            try:
                response = transport.evaluate(requests[index], timeout=timeout)
            except BaseException as error:
                with sink_lock:
                    errors.append(error)
                continue
            elapsed = time.perf_counter() - started
            with sink_lock:
                latencies.append(elapsed)
                responses.append(response)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(min(concurrency, len(requests)))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started

    ordered = sorted(latencies)

    def pct(fraction: float) -> float:
        """Nearest-rank latency percentile, in milliseconds."""
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return 1e3 * ordered[rank]

    solved = sum(1 for response in responses if response.result.correct)
    return LevelReport(
        concurrency=concurrency,
        requests=len(requests),
        seconds=seconds,
        throughput_rps=len(responses) / seconds if seconds > 0 else 0.0,
        p50_ms=pct(0.50),
        p95_ms=pct(0.95),
        p99_ms=pct(0.99),
        errors=len(errors),
        solved=solved,
        digest=wire.batch_digest(responses),
    )


def run_loadgen(
    transport: Transport,
    config: Optional[LoadGenConfig] = None,
    *,
    timeout: Optional[float] = None,
) -> LoadGenReport:
    """Sweep the config's concurrency levels against ``transport``.

    With ``use_registry`` the codebook sets are registered once up front
    and every request travels as a keyed reference - the program-once
    pattern the sharded pool's routing is built around.
    """
    config = config if config is not None else LoadGenConfig()
    sets, requests = build_workload(config)
    if config.use_registry:
        keys = [transport.register_codebooks(codebooks) for codebooks in sets]
        requests = _keyed(requests, keys)
    report = LoadGenReport(config=config)
    for concurrency in config.concurrency:
        report.levels.append(
            _run_level(transport, requests, concurrency, timeout=timeout)
        )
    return report
