"""Stdlib-only HTTP server over the transport seam.

:class:`H3DFactHTTPServer` binds a threaded :mod:`http.server` to any
:class:`~repro.service.transport.Transport` - usually a
:class:`~repro.service.workers.ShardedWorkerPool`, but the in-process
transport works identically (the determinism tests exploit that).  The
endpoint surface follows the retrieval-service shape the ROADMAP calls
for:

=====================  ====  ==================================================
path                   verb  body / answer
=====================  ====  ==================================================
``/health``            GET   liveness + transport health
``/metrics``           GET   latency percentiles + transport counters
``/eval``              POST  ``{"request": <request>, "timeout": s?}`` ->
                             ``{"response": <response>}``
``/batch_eval``        POST  ``{"requests": [...], "timeout": s?}`` ->
                             ``{"results": [{"response":..}|{"error":..}]}``
``/codebooks``         POST  ``{"codebooks": <set>}`` -> ``{"codebook_key"}``
=====================  ====  ==================================================

Errors answer the typed envelope of :mod:`repro.service.wire` with its
HTTP status mapping (400 bad request, 404 unknown codebook, 503
backpressure / worker lost, 504 timeout), so the retrying client can
decide retryability without string matching.

**Cluster roles** (both optional, duck-typed so the service tier does not
import :mod:`repro.cluster`):

* ``coordinator=`` attaches a
  :class:`~repro.cluster.membership.ClusterCoordinator` and adds the
  control-plane routes ``GET /shardmap``, ``GET /cluster/status`` and
  ``POST /cluster/register|heartbeat|leave``.  A coordinator-only server
  may pass ``transport=None``.
* ``node=`` attaches a
  :class:`~repro.cluster.membership.ClusterNodeAgent`: eval bodies may
  then carry the client's shard-map ``epoch``, and a request routed with
  an *older* epoch is rejected with the typed retryable
  ``stale_shardmap`` envelope (HTTP 409) before touching the transport -
  newer epochs are accepted (the client may legitimately learn of a
  membership change before this node's heartbeat does) and fast-forward
  the node.  Responses are stamped with the serving node id.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter, deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Deque, Dict, Optional, Tuple

from repro.errors import ConfigurationError, StaleShardMapError
from repro.service import wire
from repro.service.request import FactorizationRequest
from repro.service.transport import Transport
from repro.telemetry import LATENCY_MS_BUCKETS, Histogram, get_log, mint_trace_id

#: Latency samples kept for the /metrics percentiles (bounded memory).
_LATENCY_WINDOW = 4096


def _percentile(samples: list, fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    rank = min(len(samples) - 1, max(0, int(fraction * len(samples))))
    return samples[rank]


class _Handler(BaseHTTPRequestHandler):
    """Request handler: routes the five endpoints onto the transport."""

    protocol_version = "HTTP/1.1"
    # Small JSON request/response pairs on keep-alive connections are the
    # worst case for Nagle + delayed ACK (~40ms stalls); disable it.
    disable_nagle_algorithm = True
    server: "_Server"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (the tests hammer the API)."""

    # -- plumbing ------------------------------------------------------------

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ConfigurationError("request body must be JSON (empty body)")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"request body is not JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ConfigurationError("request body must be a JSON object")
        return payload

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, error: BaseException) -> None:
        envelope = wire.encode_error(error)
        self._reply(wire.http_status(envelope["error"]["type"]), envelope)

    # -- endpoints -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        """Serve ``/health``, ``/metrics`` and the coordinator map routes."""
        started = time.monotonic()
        app = self.server.app
        try:
            if self.path == "/health":
                self._reply(200, app.health_payload())
            elif self.path == "/metrics":
                self._reply(200, app.metrics_payload())
            elif self.path == "/shardmap" and app.coordinator is not None:
                self._reply(200, app.coordinator.shardmap_payload())
            elif self.path == "/cluster/status" and app.coordinator is not None:
                self._reply(200, app.coordinator.status_payload())
            else:
                self._reply(
                    404, {"error": {"type": "service",
                                    "message": f"no route {self.path!r}",
                                    "retryable": False}}
                )
        except BaseException as error:
            self._reply_error(error)
        finally:
            app.observe(self.path, time.monotonic() - started)

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        """Serve eval/codebook routes plus the coordinator membership ops."""
        started = time.monotonic()
        app = self.server.app
        try:
            if self.path == "/eval":
                self._reply(200, app.eval_one(self._read_json()))
            elif self.path == "/batch_eval":
                self._reply(200, app.eval_batch(self._read_json()))
            elif self.path == "/codebooks":
                self._reply(200, app.register(self._read_json()))
            elif (
                self.path == "/cluster/register"
                and app.coordinator is not None
            ):
                self._reply(
                    200, app.coordinator.handle_register(self._read_json())
                )
            elif (
                self.path == "/cluster/heartbeat"
                and app.coordinator is not None
            ):
                self._reply(
                    200, app.coordinator.handle_heartbeat(self._read_json())
                )
            elif self.path == "/cluster/leave" and app.coordinator is not None:
                self._reply(
                    200, app.coordinator.handle_leave(self._read_json())
                )
            else:
                self._reply(
                    404, {"error": {"type": "service",
                                    "message": f"no route {self.path!r}",
                                    "retryable": False}}
                )
        except BaseException as error:
            self._reply_error(error)
        finally:
            app.observe(self.path, time.monotonic() - started)


class _Server(ThreadingHTTPServer):
    """Threaded HTTP server carrying a reference to the application."""

    daemon_threads = True
    allow_reuse_address = True
    app: "H3DFactHTTPServer"


class H3DFactHTTPServer:
    """The serving tier's front door: five endpoints over a transport.

    ``port=0`` binds an ephemeral port (the tests' pattern); :meth:`start`
    runs the accept loop on a daemon thread and :attr:`url` names the
    bound address.  With ``own_transport=True`` closing the server closes
    the transport too (the CLI uses that; tests usually share one).

    ``coordinator`` / ``node`` attach the cluster roles described in the
    module docstring.  ``transport=None`` is allowed only for a pure
    coordinator; eval routes then answer a typed configuration error.
    """

    def __init__(
        self,
        transport: Optional[Transport],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        own_transport: bool = False,
        coordinator: Optional[Any] = None,
        node: Optional[Any] = None,
    ) -> None:
        if transport is None and coordinator is None:
            raise ConfigurationError(
                "a server without a transport must host a coordinator"
            )
        self.transport = transport
        self.coordinator = coordinator
        self.node = node
        self._own_transport = own_transport
        self._httpd = _Server((host, port), _Handler)
        self._httpd.app = self
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()
        self._metrics_lock = threading.Lock()
        self._endpoint_counts: Counter = Counter()
        self._latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._latencies_by_path: Dict[str, Deque[float]] = {}
        self._latency_histogram = Histogram(LATENCY_MS_BUCKETS)

    def _serving_transport(self) -> Transport:
        """The transport, or a typed error for coordinator-only servers."""
        if self.transport is None:
            raise ConfigurationError(
                "this node is a cluster coordinator; it serves no "
                "factorization traffic (route /eval to the serving nodes)"
            )
        return self.transport

    # -- address -------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the bound server (``http://host:port``)."""
        host, port = self.address
        return f"http://{host}:{port}"

    # -- application logic (called from handler threads) ---------------------

    def observe(self, path: str, seconds: float) -> None:
        """Record one served request for the /metrics percentiles."""
        with self._metrics_lock:
            self._endpoint_counts[path] += 1
            self._latencies.append(seconds)
            by_path = self._latencies_by_path.get(path)
            if by_path is None:
                by_path = deque(maxlen=_LATENCY_WINDOW)
                self._latencies_by_path[path] = by_path
            by_path.append(seconds)
        self._latency_histogram.observe(seconds * 1e3)
        log = get_log()
        if log.enabled:
            if self.node is not None:
                log.emit(
                    "http.request",
                    path=path,
                    seconds=seconds,
                    node=self.node.node_id,
                )
            else:
                log.emit("http.request", path=path, seconds=seconds)

    def _accept(self, request: FactorizationRequest) -> FactorizationRequest:
        """Telemetry seam: mint a trace id if absent, emit ``request.accepted``.

        Returns the request unchanged when telemetry is off, so the
        disabled path builds no copies and stays bit-identical.
        """
        log = get_log()
        if not log.enabled:
            return request
        if request.trace_id is None:
            request = request.with_trace(mint_trace_id())
        log.emit(
            "request.accepted",
            trace_id=request.trace_id,
            request_id=request.request_id,
            source="http",
        )
        return request

    def health_payload(self) -> Dict[str, Any]:
        """GET /health body."""
        payload = {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self._started,
            "transport": (
                self.transport.health()
                if self.transport is not None
                else {"transport": "none"}
            ),
        }
        if self.coordinator is not None:
            payload["role"] = "coordinator"
            payload["epoch"] = self.coordinator.epoch
        if self.node is not None:
            payload["node"] = self.node.node_id
            payload["epoch"] = self.node.epoch
        return payload

    def metrics_payload(self) -> Dict[str, Any]:
        """GET /metrics body: server percentiles + transport counters."""
        with self._metrics_lock:
            samples = sorted(self._latencies)
            counts = dict(self._endpoint_counts)
            by_path = {
                path: sorted(values)
                for path, values in self._latencies_by_path.items()
            }
        latency = {}
        if samples:
            latency = {
                "p50_ms": 1e3 * _percentile(samples, 0.50),
                "p95_ms": 1e3 * _percentile(samples, 0.95),
                "p99_ms": 1e3 * _percentile(samples, 0.99),
                "samples": len(samples),
            }
        latency_by_path = {
            path: {
                "p50_ms": 1e3 * _percentile(values, 0.50),
                "p95_ms": 1e3 * _percentile(values, 0.95),
                "p99_ms": 1e3 * _percentile(values, 0.99),
                "samples": len(values),
            }
            for path, values in by_path.items()
            if values
        }
        log = get_log()
        payload = {
            "endpoints": counts,
            "latency": latency,
            "latency_by_path": latency_by_path,
            # Fixed buckets merge exactly across nodes, unlike the
            # percentile windows above - `h3dfact cluster status` relies
            # on this field for the fleet view.
            "latency_histogram": self._latency_histogram.to_dict(),
            "transport": (
                self.transport.metrics() if self.transport is not None else {}
            ),
            "telemetry": {
                "enabled": log.enabled,
                "emitted": getattr(log, "emitted", 0),
                "dropped": getattr(log, "dropped", 0),
            },
        }
        if self.node is not None:
            payload["node"] = self.node.node_id
            payload["epoch"] = self.node.epoch
        return payload

    def _check_epoch(self, body: Dict[str, Any]) -> None:
        """Reject requests routed with a shard map older than this node's.

        Only *older* epochs are stale: a client can legitimately hold a
        newer map than this node has heard of (it refreshed first), and
        such requests both succeed and fast-forward the node's view.
        Plain (non-cluster) clients send no epoch and skip the check.
        """
        if self.node is None:
            return
        epoch = body.get("epoch")
        if epoch is None:
            return
        epoch = int(epoch)
        ours = self.node.epoch
        if epoch < ours:
            log = get_log()
            if log.enabled:
                log.emit(
                    "cluster.stale",
                    node=self.node.node_id,
                    epoch=ours,
                    request_epoch=epoch,
                )
            raise StaleShardMapError(
                f"request routed with shard map epoch {epoch} but node "
                f"{self.node.node_id!r} is at epoch {ours}; refresh the map"
            )
        self.node.observe_epoch(epoch)

    def _stamp(self, response: Any) -> Any:
        """Mark which cluster node served a response (no-op off-cluster)."""
        if self.node is not None:
            response.node = self.node.node_id
        return response

    def eval_one(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """POST /eval body -> response envelope (errors propagate typed)."""
        if "request" not in body:
            raise ConfigurationError("POST /eval body needs a 'request' field")
        self._check_epoch(body)
        request = self._accept(wire.decode_request(body["request"]))
        timeout = body.get("timeout")
        response = self._serving_transport().evaluate(
            request, timeout=float(timeout) if timeout is not None else None
        )
        return {"response": wire.encode_response(self._stamp(response))}

    def eval_batch(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """POST /batch_eval body -> per-item response/error envelopes.

        The HTTP status is 200 whenever the *batch* was processed; each
        item reports its own success or typed error, so one poisoned
        request never hides the rest of the batch.
        """
        if "requests" not in body or not isinstance(body["requests"], list):
            raise ConfigurationError(
                "POST /batch_eval body needs a 'requests' list"
            )
        self._check_epoch(body)
        timeout = body.get("timeout")
        requests = []
        decode_errors: Dict[int, BaseException] = {}
        for position, payload in enumerate(body["requests"]):
            try:
                requests.append(self._accept(wire.decode_request(payload)))
            except BaseException as error:
                decode_errors[position] = error
                requests.append(None)
        valid = [request for request in requests if request is not None]
        outcomes = iter(
            self._serving_transport().evaluate_scatter(
                valid,
                timeout=float(timeout) if timeout is not None else None,
            )
            if valid
            else []
        )
        results = []
        for position, request in enumerate(requests):
            if request is None:
                results.append(wire.encode_error(decode_errors[position]))
                continue
            outcome = next(outcomes)
            if isinstance(outcome, BaseException):
                results.append(wire.encode_error(outcome))
            else:
                results.append(
                    {"response": wire.encode_response(self._stamp(outcome))}
                )
        return {"results": results}

    def register(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """POST /codebooks body -> the content-hash registry key."""
        if "codebooks" not in body:
            raise ConfigurationError(
                "POST /codebooks body needs a 'codebooks' field"
            )
        codebooks = wire.decode_codebooks(body["codebooks"])
        return {
            "codebook_key": self._serving_transport().register_codebooks(
                codebooks
            )
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "H3DFactHTTPServer":
        """Run the accept loop on a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="h3dfact-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop in the calling thread (the CLI's path)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop accepting, join the accept thread, release the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        if self.node is not None:
            self.node.close()
        if self._own_transport and self.transport is not None:
            self.transport.close()

    def __enter__(self) -> "H3DFactHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
