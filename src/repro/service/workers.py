"""Registry-sharded multiprocess worker pool behind the transport seam.

:class:`ShardedWorkerPool` is the :class:`~repro.service.transport.Transport`
that escapes the GIL: N worker *processes*, each running its own
:class:`~repro.service.scheduler.FactorizationService` over its own
:class:`~repro.service.registry.CodebookRegistry` shard.  Requests route
by codebook fingerprint over a
:class:`~repro.service.sharding.ConsistentHashRing`, so all traffic
against one codebook set lands on the worker that programmed it -
program-once amortization (conductance tiles, packed bit planes)
survives sharding.

Fault model (exercised by ``tests/test_service_faults.py``):

* **Worker loss** - every shard has its *own* inbox and outbox queue and
  is the sole writer of its outbox, so a ``SIGKILL`` cannot corrupt
  another shard's channel.  A monitor thread detects the dead process,
  fails that shard's in-flight requests with
  :class:`~repro.errors.WorkerLostError` (retryable), respawns the worker
  on fresh queues, and replays the codebook registrations the control
  plane holds for that shard.
* **Backpressure** - per-shard inboxes are bounded; ``"block"`` stalls
  the submitter (re-checking for restarts), ``"error"`` raises
  :class:`~repro.errors.BackpressureError` immediately.
* **Timeout** - :meth:`ShardedWorkerPool.evaluate` raises
  :class:`~repro.errors.RequestTimeoutError` when the caller's deadline
  passes; a late result is discarded (counted as ``orphaned``).

Determinism: workers resolve requests through the same seeded-replay
scheduler as the in-process path, so a seeded request's response is
bit-identical regardless of shard count, arrival order, or restarts.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import signal
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    RequestTimeoutError,
    ServiceError,
    WorkerLostError,
)
from repro.service import wire
from repro.service.registry import CodebookRegistry, codebook_fingerprint
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.service.scheduler import BatchPolicy, FactorizationService
from repro.service.sharding import ConsistentHashRing
from repro.service.transport import (
    ResponseOrError,
    Transport,
    request_routing_key,
)
from repro.telemetry import get_log
from repro.vsa.codebook import CodebookSet

_BACKPRESSURE_POLICIES = ("block", "error")

#: Environment override for the multiprocessing start method
#: (``fork``/``spawn``/``forkserver``); wins over config.
START_METHOD_ENV = "H3DFACT_MP_START"


@dataclass
class WorkerPoolConfig:
    """Shape and fault policy of a :class:`ShardedWorkerPool`."""

    #: Number of worker processes (= registry shards).
    shards: int = 2
    #: Bound on each shard's inbox (undispatched requests).
    queue_capacity: int = 256
    #: ``"block"`` the submitter on a full inbox, or ``"error"``.
    backpressure: str = "block"
    #: Micro-batch ceiling inside each worker's scheduler.
    max_batch_size: int = 32
    #: LRU capacity of each worker's registry shard.
    registry_capacity: int = 64
    #: Virtual nodes per shard on the routing ring.
    vnodes: int = 64
    #: Decode cadence forwarded to the workers' engines.
    check_correct_every: int = 1
    #: Respawn dead workers (and replay their registrations).
    restart_workers: bool = True
    #: Multiprocessing start method; ``None`` prefers ``fork`` (cheap,
    #: copy-on-write numpy) when available, else the platform default.
    start_method: Optional[str] = None
    #: Liveness poll cadence of the monitor thread, seconds.
    poll_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ConfigurationError(
                f"shards must be positive, got {self.shards}"
            )
        if self.queue_capacity <= 0:
            raise ConfigurationError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.backpressure not in _BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {_BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.poll_seconds <= 0:
            raise ConfigurationError(
                f"poll_seconds must be positive, got {self.poll_seconds}"
            )


@dataclass
class PoolStats:
    """Aggregate dispatch/fault counters for one pool."""

    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    worker_losses: int = 0
    restarts: int = 0
    orphaned: int = 0


def _resolve_start_method(config: WorkerPoolConfig) -> str:
    """Start-method priority: env var, config, fork-if-available."""
    method = os.environ.get(START_METHOD_ENV) or config.start_method
    available = multiprocessing.get_all_start_methods()
    if method is not None:
        if method not in available:
            raise ConfigurationError(
                f"start method {method!r} not available (have {available})"
            )
        return method
    return "fork" if "fork" in available else available[0]


def _shard_main(
    index: int,
    config: WorkerPoolConfig,
    inbox: "multiprocessing.Queue",
    outbox: "multiprocessing.Queue",
    generation: int = 0,
) -> None:
    """Worker process body: one scheduler over one registry shard.

    Protocol (``(op, job_id, payload)`` tuples): ``"eval"`` carries a
    wire-encoded request and answers ``("ok", job_id, response)`` or
    ``("error", job_id, envelope)``; ``"register"`` interns a codebook
    set (no reply when ``job_id`` is ``None`` - the restart replay path);
    ``"metrics"`` reports the shard's scheduler counters; ``"stop"``
    drains and exits.  The worker is the sole writer of its outbox, so a
    kill can never corrupt another shard's channel.
    """
    service = FactorizationService(
        policy=BatchPolicy(
            max_batch_size=config.max_batch_size,
            queue_capacity=max(1024, config.queue_capacity),
            backpressure="block",
        ),
        registry=CodebookRegistry(capacity=config.registry_capacity),
        workers=1,
        check_correct_every=config.check_correct_every,
    )
    # get_log() resolves from the inherited environment; under fork it
    # also detects the pid change and drops the parent's dead writer.
    log = get_log()
    if log.enabled:
        log.emit("worker.start", shard=index, generation=generation)

    def handle_control(op: str, job_id: Optional[str], payload: Any) -> None:
        """Serve one non-eval message (register / metrics / unknown op)."""
        try:
            if op == "register":
                key = service.registry.register(wire.decode_codebooks(payload))
                if job_id is not None:
                    outbox.put(("ok", job_id, {"codebook_key": key}))
            elif op == "metrics":
                from repro.service.profiles import cache_metrics

                stats = service.stats
                shard_log = get_log()
                outbox.put(
                    (
                        "ok",
                        job_id,
                        {
                            "shard": index,
                            "submitted": stats.submitted,
                            "completed": stats.completed,
                            "failed": stats.failed,
                            "batches": stats.batches,
                            "mean_batch_size": stats.mean_batch_size,
                            "registry_hits": service.registry.stats.hits,
                            "registry_misses": service.registry.stats.misses,
                            "registry_evictions": service.registry.stats.evictions,
                            "registered_codebooks": len(service.registry),
                            "batch_size_histogram": (
                                service.batch_size_histogram.to_dict()
                            ),
                            "queue_depth_histogram": (
                                service.queue_depth_histogram.to_dict()
                            ),
                            "caches": cache_metrics(),
                            "telemetry_emitted": getattr(shard_log, "emitted", 0),
                            "telemetry_dropped": getattr(shard_log, "dropped", 0),
                        },
                    )
                )
            else:
                if job_id is not None:
                    outbox.put(
                        (
                            "error",
                            job_id,
                            wire.encode_error(
                                ServiceError(f"unknown op {op!r}")
                            ),
                        )
                    )
        except BaseException as error:
            if job_id is not None:
                outbox.put(("error", job_id, wire.encode_error(error)))

    def run_evals(messages: List[Tuple[str, Any]]) -> None:
        """Decode, submit and answer one drained burst of eval messages."""
        # Submit the whole drained burst before flushing, so queued
        # traffic coalesces into stacked batches exactly like the
        # in-process path (seeded replay keeps results packing-
        # independent either way).
        submitted: List[Tuple[str, "Future[FactorizationResponse]"]] = []
        for job_id, payload in messages:
            try:
                request = wire.decode_request(payload)
                submitted.append((job_id, service.submit(request)))
            except BaseException as error:
                outbox.put(("error", job_id, wire.encode_error(error)))
        if not submitted:
            return
        service.flush()
        for job_id, future in submitted:
            try:
                response = future.result()
                response.shard = index
                outbox.put(("ok", job_id, wire.encode_response(response)))
            except BaseException as error:
                outbox.put(("error", job_id, wire.encode_error(error)))

    try:
        while True:
            message = inbox.get()
            evals: List[Tuple[str, Any]] = []
            stop = False
            while True:
                op, job_id, payload = message
                if op == "stop":
                    stop = True
                elif op == "eval":
                    evals.append((job_id, payload))
                else:
                    handle_control(op, job_id, payload)
                if stop or len(evals) >= config.max_batch_size:
                    break
                try:
                    message = inbox.get_nowait()
                except queue.Empty:
                    break
            run_evals(evals)
            if stop:
                return
    finally:
        service.close()
        log = get_log()
        if log.enabled:
            log.emit("worker.stop", shard=index, generation=generation)
            log.close()


@dataclass
class _PendingJob:
    """One dispatched request the frontend is waiting on."""

    shard: int
    generation: int
    future: "Future[Any]" = field(default_factory=Future)


class _Shard:
    """One worker process plus its private channels and listener."""

    def __init__(
        self,
        index: int,
        generation: int,
        config: WorkerPoolConfig,
        context: "multiprocessing.context.BaseContext",
    ) -> None:
        self.index = index
        self.generation = generation
        self.inbox: "multiprocessing.Queue" = context.Queue(
            maxsize=config.queue_capacity
        )
        self.outbox: "multiprocessing.Queue" = context.Queue()
        self.process = context.Process(
            target=_shard_main,
            args=(index, config, self.inbox, self.outbox, generation),
            name=f"h3dfact-shard-{index}",
            daemon=True,
        )
        self.stop_listening = threading.Event()
        self.listener: Optional[threading.Thread] = None

    def alive(self) -> bool:
        """True while the worker process is running."""
        return self.process.is_alive()


class ShardedWorkerPool(Transport):
    """Transport over N registry-sharded worker processes.

    Construction spawns the workers; :meth:`close` stops them.  Safe for
    concurrent use from many threads (the load generator's closed-loop
    workers all share one pool).
    """

    def __init__(self, config: Optional[WorkerPoolConfig] = None) -> None:
        self.config = config if config is not None else WorkerPoolConfig()
        self.stats = PoolStats()
        self._context = multiprocessing.get_context(
            _resolve_start_method(self.config)
        )
        self.ring = ConsistentHashRing(
            self.config.shards, vnodes=self.config.vnodes
        )
        self._job_ids = itertools.count()
        self._lock = threading.RLock()
        self._pending: Dict[str, _PendingJob] = {}
        self._registered: Dict[str, Any] = {}
        self._closing = False
        self._dead: set = set()
        self._started = time.monotonic()
        self._shards: List[_Shard] = []
        for index in range(self.config.shards):
            self._shards.append(self._spawn(index, generation=0))
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="h3dfact-pool-monitor", daemon=True
        )
        self._monitor.start()

    # -- shard lifecycle -----------------------------------------------------

    def _spawn(self, index: int, generation: int) -> _Shard:
        """Start one worker process and its outbox listener."""
        shard = _Shard(index, generation, self.config, self._context)
        shard.process.start()
        shard.listener = threading.Thread(
            target=self._listen,
            args=(shard,),
            name=f"h3dfact-listener-{index}-g{generation}",
            daemon=True,
        )
        shard.listener.start()
        return shard

    def _listen(self, shard: _Shard) -> None:
        """Drain one shard generation's outbox into pending futures."""
        while not shard.stop_listening.is_set():
            try:
                kind, job_id, payload = shard.outbox.get(timeout=0.1)
            except queue.Empty:
                continue
            except (EOFError, OSError):
                return
            with self._lock:
                job = self._pending.pop(job_id, None)
            if job is None:
                with self._lock:
                    self.stats.orphaned += 1
                continue
            if kind == "ok":
                job.future.set_result(payload)
            else:
                job.future.set_exception(wire.decode_error(payload))

    def _monitor_loop(self) -> None:
        """Detect dead workers; fail their in-flight jobs; respawn."""
        while not self._closing:
            time.sleep(self.config.poll_seconds)
            for index in range(self.config.shards):
                with self._lock:
                    if self._closing:
                        return
                    if index in self._dead:
                        continue
                    shard = self._shards[index]
                    if shard.alive():
                        continue
                    self._handle_loss(shard)

    def _handle_loss(self, shard: _Shard) -> None:
        """Called with the lock held: one shard generation died."""
        shard.stop_listening.set()
        self.stats.worker_losses += 1
        lost = [
            job_id
            for job_id, job in self._pending.items()
            if job.shard == shard.index and job.generation <= shard.generation
        ]
        error = WorkerLostError(
            f"worker shard {shard.index} (generation {shard.generation}) "
            f"died with exit code {shard.process.exitcode}; "
            f"{len(lost)} request(s) in flight"
        )
        for job_id in lost:
            job = self._pending.pop(job_id)
            self.stats.failed += 1
            job.future.set_exception(error)
        log = get_log()
        if log.enabled:
            log.emit(
                "worker.death",
                shard=shard.index,
                generation=shard.generation,
                exit_code=shard.process.exitcode,
                in_flight=len(lost),
            )
        if not self.config.restart_workers:
            # No respawn: mark the shard permanently dead so new dispatches
            # fail fast instead of queueing against a corpse.
            self._dead.add(shard.index)
            return
        replacement = self._spawn(shard.index, shard.generation + 1)
        self._shards[shard.index] = replacement
        self.stats.restarts += 1
        if log.enabled:
            log.emit(
                "worker.restarted",
                shard=shard.index,
                generation=replacement.generation,
            )
        # Replay the control plane: re-program every codebook set this
        # shard owns so keyed requests resolve after the restart.
        replayed = 0
        for key, payload in self._registered.items():
            if self.ring.route(key) == shard.index:
                replacement.inbox.put(("register", None, payload))
                replayed += 1
        if log.enabled and replayed:
            log.emit(
                "worker.replay",
                shard=shard.index,
                generation=replacement.generation,
                codebooks=replayed,
            )

    def kill_shard(self, index: int) -> None:
        """Fault injection: SIGKILL one worker process (tests use this)."""
        with self._lock:
            process = self._shards[index].process
        if process.pid is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(
        self, index: int, op: str, payload: Any
    ) -> "Future[Any]":
        """Enqueue one message onto a shard's inbox; returns its future."""
        with self._lock:
            if self._closing:
                raise ServiceError("worker pool is closed")
            if index in self._dead:
                raise WorkerLostError(
                    f"worker shard {index} is dead and restarts are disabled"
                )
            shard = self._shards[index]
            job_id = f"j{next(self._job_ids)}"
            job = _PendingJob(shard=index, generation=shard.generation)
            self._pending[job_id] = job
            self.stats.dispatched += 1
        if op == "eval":
            log = get_log()
            if log.enabled:
                log.emit(
                    "request.dispatched",
                    trace_id=payload.get("trace_id"),
                    request_id=payload.get("request_id"),
                    shard=index,
                    generation=shard.generation,
                )
        message = (op, job_id, payload)
        if self.config.backpressure == "error":
            try:
                shard.inbox.put_nowait(message)
            except queue.Full:
                with self._lock:
                    self._pending.pop(job_id, None)
                    self.stats.rejected += 1
                    self.stats.dispatched -= 1
                raise BackpressureError(
                    f"shard {index} inbox full "
                    f"({self.config.queue_capacity} pending)"
                ) from None
            return job.future
        while True:
            try:
                shard.inbox.put(message, timeout=0.05)
                return job.future
            except queue.Full:
                # Re-read the shard: a restart swaps in fresh queues, and
                # a blocked put against a dead inbox would never drain.
                with self._lock:
                    if self._closing:
                        self._pending.pop(job_id, None)
                        raise ServiceError("worker pool is closed") from None
                    current = self._shards[index]
                    if current is not shard:
                        if job_id not in self._pending:
                            # The loss handler already failed this job
                            # (WorkerLostError); hand the caller that.
                            return job.future
                        shard = current
                        job.generation = shard.generation

    def _await(
        self, future: "Future[Any]", *, timeout: Optional[float]
    ) -> Any:
        """Wait for a dispatched job, mapping timeout to the typed error."""
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            with self._lock:
                for job_id, job in list(self._pending.items()):
                    if job.future is future:
                        self._pending.pop(job_id)
                        break
            raise RequestTimeoutError(
                f"request did not complete within {timeout}s"
            ) from None

    # -- Transport implementation --------------------------------------------

    def evaluate(
        self,
        request: FactorizationRequest,
        *,
        timeout: Optional[float] = None,
    ) -> FactorizationResponse:
        """Route one request to its codebook's shard and wait."""
        index = self.ring.route(request_routing_key(request))
        future = self._dispatch(index, "eval", wire.encode_request(request))
        payload = self._await(future, timeout=timeout)
        with self._lock:
            self.stats.completed += 1
        return wire.decode_response(payload)

    def evaluate_scatter(
        self,
        requests: Sequence[FactorizationRequest],
        *,
        timeout: Optional[float] = None,
    ) -> List[ResponseOrError]:
        """Dispatch the whole list (sharded fan-out), then gather in order."""
        futures: List[ResponseOrError] = []
        for request in requests:
            try:
                index = self.ring.route(request_routing_key(request))
                futures.append(
                    self._dispatch(index, "eval", wire.encode_request(request))
                )
            except BaseException as error:
                futures.append(error)
        results: List[ResponseOrError] = []
        for item in futures:
            if isinstance(item, BaseException):
                results.append(item)
                continue
            try:
                payload = self._await(item, timeout=timeout)
                with self._lock:
                    self.stats.completed += 1
                results.append(wire.decode_response(payload))
            except BaseException as error:
                results.append(error)
        return results

    def register_codebooks(self, codebooks: CodebookSet) -> str:
        """Program a codebook set onto its ring shard (control plane).

        The pool remembers the wire payload so a restarted shard can be
        re-programmed without client involvement.
        """
        payload = wire.encode_codebooks(codebooks)
        key = codebook_fingerprint(codebooks)
        with self._lock:
            self._registered[key] = payload
        index = self.ring.route(key)
        future = self._dispatch(index, "register", payload)
        answer = self._await(future, timeout=60.0)
        return answer["codebook_key"]

    def health(self) -> Dict[str, Any]:
        """Shard liveness and restart counters."""
        with self._lock:
            return {
                "transport": "sharded",
                "shards": self.config.shards,
                "alive": [shard.alive() for shard in self._shards],
                "generations": [shard.generation for shard in self._shards],
                "restarts": self.stats.restarts,
                "worker_losses": self.stats.worker_losses,
                "uptime_seconds": time.monotonic() - self._started,
                "closed": self._closing,
            }

    def metrics(self) -> Dict[str, Any]:
        """Pool counters plus per-shard scheduler counters (best effort)."""
        with self._lock:
            summary: Dict[str, Any] = {
                "transport": "sharded",
                "dispatched": self.stats.dispatched,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "rejected": self.stats.rejected,
                "worker_losses": self.stats.worker_losses,
                "restarts": self.stats.restarts,
                "orphaned": self.stats.orphaned,
                "pending": len(self._pending),
                "telemetry_emitted": getattr(get_log(), "emitted", 0),
                "telemetry_dropped": getattr(get_log(), "dropped", 0),
            }
        shards = []
        for index in range(self.config.shards):
            try:
                future = self._dispatch(index, "metrics", None)
                shards.append(self._await(future, timeout=5.0))
            except BaseException as error:
                shards.append({"shard": index, "error": str(error)})
        summary["shards"] = shards
        return summary

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop workers, fail whatever is still pending, join threads."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            shards = list(self._shards)
            pending = list(self._pending.items())
            self._pending.clear()
        for job_id, job in pending:
            if not job.future.done():
                job.future.set_exception(
                    ServiceError("worker pool closed with the request pending")
                )
        for shard in shards:
            try:
                shard.inbox.put(("stop", None, None), timeout=0.5)
            except (queue.Full, ValueError, OSError):
                pass
        deadline = time.monotonic() + 10.0
        for shard in shards:
            shard.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=2.0)
            if shard.process.is_alive():
                shard.process.kill()
                shard.process.join(timeout=2.0)
            shard.stop_listening.set()
        for shard in shards:
            if shard.listener is not None:
                shard.listener.join(timeout=2.0)
        if threading.current_thread() is not self._monitor:
            self._monitor.join(timeout=2.0)

    def __repr__(self) -> str:
        return (
            f"ShardedWorkerPool(shards={self.config.shards}, "
            f"backpressure={self.config.backpressure!r}, stats={self.stats!r})"
        )
