"""Transport seam: transport-agnostic dispatch for factorization traffic.

A :class:`Transport` is the serving tier's narrow waist - the same five
verbs (``evaluate``, ``evaluate_batch``, ``register_codebooks``,
``health``, ``metrics``) whether the resonators run in the caller's
process, behind N worker processes, or across an HTTP connection:

* :class:`InProcessTransport` (here) wraps a
  :class:`~repro.service.scheduler.FactorizationService` directly - the
  zero-copy reference implementation every other transport must match
  bit for bit;
* :class:`~repro.service.workers.ShardedWorkerPool` dispatches over
  multiprocess queues to registry-sharded workers;
* :class:`~repro.service.http.client.HTTPTransport` speaks the wire
  codec to a remote :class:`~repro.service.http.server.H3DFactHTTPServer`
  (and retries retryable failures).

Because per-request seeding makes factorizations a pure function of
(request, profile), any two transports given the same seeded request set
must return bit-identical results - the property the wire-determinism
suite pins across all three implementations.
"""

from __future__ import annotations

import abc
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import RequestTimeoutError
from repro.service.registry import codebook_fingerprint
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.service.scheduler import FactorizationService
from repro.telemetry import get_log, mint_trace_id
from repro.vsa.codebook import CodebookSet

#: Scatter result: a response, or the typed error that request hit.
ResponseOrError = Union[FactorizationResponse, BaseException]


class Transport(abc.ABC):
    """Abstract dispatch seam for factorization traffic.

    Implementations must preserve the determinism contract: a seeded
    request's response depends only on the request (product, codebooks,
    seed, budget, fidelity), never on the transport, arrival order, or
    which worker served it.
    """

    @abc.abstractmethod
    def evaluate(
        self,
        request: FactorizationRequest,
        *,
        timeout: Optional[float] = None,
    ) -> FactorizationResponse:
        """Serve one request synchronously.

        Raises :class:`~repro.errors.RequestTimeoutError` when ``timeout``
        (seconds) elapses first.
        """

    @abc.abstractmethod
    def evaluate_scatter(
        self,
        requests: Sequence[FactorizationRequest],
        *,
        timeout: Optional[float] = None,
    ) -> List[ResponseOrError]:
        """Serve a request list; per-item response-or-exception, in order.

        Partial failure is expressed positionally (an exception object in
        the failed slot) so callers can retry just the failed items.
        """

    def evaluate_batch(
        self,
        requests: Sequence[FactorizationRequest],
        *,
        timeout: Optional[float] = None,
    ) -> List[FactorizationResponse]:
        """Serve a request list, raising the first failure (all-or-error)."""
        results = self.evaluate_scatter(requests, timeout=timeout)
        for item in results:
            if isinstance(item, BaseException):
                raise item
        return results  # type: ignore[return-value]

    @abc.abstractmethod
    def register_codebooks(self, codebooks: CodebookSet) -> str:
        """Pre-program a codebook set; returns its content-hash key.

        Subsequent requests may carry ``codebook_key`` instead of inline
        codebooks (smaller wire payloads; program-once economics).
        """

    @abc.abstractmethod
    def health(self) -> Dict[str, Any]:
        """Liveness summary (JSON-safe)."""

    @abc.abstractmethod
    def metrics(self) -> Dict[str, Any]:
        """Serving counters (JSON-safe)."""

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InProcessTransport(Transport):
    """The reference transport: a service in the caller's process.

    Owns its service when constructed without one (and closes it on
    :meth:`close`); wrapping an existing service leaves its lifecycle to
    the caller.
    """

    def __init__(self, service: Optional[FactorizationService] = None) -> None:
        self._own_service = service is None
        self.service = service if service is not None else FactorizationService()

    def _accept(self, request: FactorizationRequest) -> FactorizationRequest:
        """Telemetry seam: mint a trace id if absent, emit ``request.accepted``.

        A no-op returning the request unchanged when telemetry is off, so
        the disabled path builds no copies and stays bit-identical.
        """
        log = get_log()
        if not log.enabled:
            return request
        if request.trace_id is None:
            request = request.with_trace(mint_trace_id())
        log.emit(
            "request.accepted",
            trace_id=request.trace_id,
            request_id=request.request_id,
            source="in-process",
        )
        return request

    def evaluate(
        self,
        request: FactorizationRequest,
        *,
        timeout: Optional[float] = None,
    ) -> FactorizationResponse:
        """Submit one request and wait for its micro-batch to flush."""
        future = self.service.submit(self._accept(request))
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            raise RequestTimeoutError(
                f"request {request.request_id!r} did not complete within "
                f"{timeout}s"
            ) from None

    def evaluate_scatter(
        self,
        requests: Sequence[FactorizationRequest],
        *,
        timeout: Optional[float] = None,
    ) -> List[ResponseOrError]:
        """Submit the whole list (coalescing applies), then gather."""
        futures = self.service.submit_many(
            [self._accept(request) for request in requests]
        )
        self.service.flush()
        results: List[ResponseOrError] = []
        for request, future in zip(requests, futures):
            try:
                results.append(future.result(timeout=timeout))
            except FutureTimeoutError:
                results.append(
                    RequestTimeoutError(
                        f"request {request.request_id!r} did not complete "
                        f"within {timeout}s"
                    )
                )
            except BaseException as error:
                results.append(error)
        return results

    def register_codebooks(self, codebooks: CodebookSet) -> str:
        """Intern into the service's registry; returns the content key."""
        return self.service.registry.register(codebooks)

    def health(self) -> Dict[str, Any]:
        """Open/closed plus registry occupancy."""
        return {
            "transport": "in-process",
            "closed": self.service.closed,
            "registered_codebooks": len(self.service.registry),
        }

    def metrics(self) -> Dict[str, Any]:
        """The service's intake/batching counters (plus cache/telemetry)."""
        from repro.service.profiles import cache_metrics

        stats = self.service.stats
        log = get_log()
        return {
            "transport": "in-process",
            "submitted": stats.submitted,
            "completed": stats.completed,
            "failed": stats.failed,
            "rejected": stats.rejected,
            "batches": stats.batches,
            "mean_batch_size": stats.mean_batch_size,
            "registry_hits": self.service.registry.stats.hits,
            "registry_misses": self.service.registry.stats.misses,
            "registry_evictions": self.service.registry.stats.evictions,
            "batch_size_histogram": self.service.batch_size_histogram.to_dict(),
            "queue_depth_histogram": (
                self.service.queue_depth_histogram.to_dict()
            ),
            "caches": cache_metrics(),
            "telemetry_emitted": getattr(log, "emitted", 0),
            "telemetry_dropped": getattr(log, "dropped", 0),
        }

    def close(self) -> None:
        """Close the owned service (no-op for caller-owned services)."""
        if self._own_service:
            self.service.close()


def request_routing_key(request: FactorizationRequest) -> str:
    """The key a sharded transport routes on: the codebook content hash.

    Routing by codebook identity (not request id) is what keeps
    program-once amortization alive under sharding - every request
    against one codebook set lands on the worker that programmed it.
    """
    if request.codebook_key is not None:
        return request.codebook_key
    return codebook_fingerprint(request.codebooks)
