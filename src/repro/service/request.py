"""Request/response envelopes for the factorization service.

A :class:`FactorizationRequest` is one client query: a product vector plus
a codebook reference - either an inline
:class:`~repro.vsa.codebook.CodebookSet` (interned into the service's
registry on submission) or the registry key of a previously programmed
set.  An optional per-request ``seed`` pins the trial's initial state, the
basis of the service's deterministic-replay guarantee (see
:mod:`repro.resonator.replay`).

A :class:`FactorizationResponse` pairs the request with its
:class:`~repro.resonator.network.FactorizationResult` and records how the
scheduler served it: which batch it rode in, how many requests were
coalesced with it, and whether its codebooks were already programmed
(a registry hit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.resonator.network import FactorizationProblem, FactorizationResult
from repro.utils.validation import check_vector
from repro.vsa.codebook import CodebookSet


@dataclass(frozen=True)
class FactorizationRequest:
    """One factorization query against a referenced codebook set."""

    #: Product vector to factorize (bipolar int, or complex phasor for
    #: FHRR codebooks).
    product: np.ndarray
    #: Inline codebooks (interned on submission) - exclusive with ``codebook_key``.
    codebooks: Optional[CodebookSet] = None
    #: Registry key of a pre-programmed set - exclusive with ``codebooks``.
    codebook_key: Optional[str] = None
    #: Per-request seed for the trial's initial state (deterministic replay).
    seed: Optional[int] = None
    #: Optional per-request sweep budget (requests batch only with equals).
    max_iterations: Optional[int] = None
    #: Ground truth for accuracy bookkeeping, when known.
    true_indices: Optional[Tuple[int, ...]] = None
    #: Client-side correlation id, echoed back on the response.
    request_id: Optional[str] = None
    #: Named execution profile ("baseline" or an engine fidelity); ``None``
    #: means the serving endpoint's default factory (requests batch only
    #: with equal profiles - see :mod:`repro.service.profiles`).
    fidelity: Optional[str] = None
    #: Telemetry correlation id (see :mod:`repro.telemetry`): minted at
    #: the transport seam when absent, propagated over the wire, echoed on
    #: the response.  Never feeds seeds or batch keys, so tracing cannot
    #: perturb results.
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.codebooks is None) == (self.codebook_key is None):
            raise ConfigurationError(
                "a request needs exactly one of codebooks / codebook_key"
            )
        product = np.asarray(self.product)
        if product.ndim != 1:
            raise DimensionError(
                f"request product must be 1-D, got shape {product.shape}"
            )
        # Inline codebooks name the algebra; a registry-key request is
        # validated from the product's own dtype (the scheduler re-checks
        # against the resolved set when it builds the problem).
        if self.codebooks is not None:
            algebra = self.codebooks.algebra
        elif np.issubdtype(product.dtype, np.complexfloating):
            algebra = "fhrr"
        else:
            algebra = "bipolar"
        check_vector("request product", product, algebra=algebra)
        if self.fidelity is not None:
            from repro.service.profiles import check_profile

            check_profile(self.fidelity, algebra)
        if self.codebooks is not None and product.shape != (self.codebooks.dim,):
            raise DimensionError(
                f"request product shape {product.shape} does not match "
                f"codebook dim ({self.codebooks.dim},)"
            )
        if self.max_iterations is not None and self.max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.true_indices is not None:
            object.__setattr__(
                self, "true_indices", tuple(int(i) for i in self.true_indices)
            )

    @classmethod
    def from_problem(
        cls,
        problem: FactorizationProblem,
        *,
        seed: Optional[int] = None,
        max_iterations: Optional[int] = None,
        request_id: Optional[str] = None,
        fidelity: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> "FactorizationRequest":
        """Wrap an existing problem (keeps its ground-truth bookkeeping)."""
        return cls(
            product=problem.product,
            codebooks=problem.codebooks,
            seed=seed,
            max_iterations=max_iterations,
            true_indices=problem.true_indices,
            request_id=request_id,
            fidelity=fidelity,
            trace_id=trace_id,
        )

    def with_trace(self, trace_id: str) -> "FactorizationRequest":
        """Copy of this request carrying ``trace_id`` (validation re-runs)."""
        from dataclasses import replace

        return replace(self, trace_id=trace_id)


@dataclass
class FactorizationResponse:
    """A request's result plus how the scheduler served it."""

    #: Echo of the request's correlation id.
    request_id: Optional[str]
    #: The factorization outcome for this request.
    result: FactorizationResult
    #: Monotonic id of the coalesced batch this request rode in.
    batch_id: int
    #: Number of requests coalesced into that batch.
    batch_size: int
    #: True when the request's codebooks were already programmed (LRU hit).
    cache_hit: bool
    #: Registry key of the codebook set the request ran against.
    codebook_key: str
    #: Index of the worker shard that served the request (``None`` for the
    #: single-process in-process path).
    shard: Optional[int] = None
    #: Cluster node id that served the request (``None`` outside the
    #: multi-host cluster tier - see :mod:`repro.cluster`).
    node: Optional[str] = None
    #: Echo of the request's telemetry trace id (``None`` untraced).
    trace_id: Optional[str] = None

    @property
    def coalesced(self) -> bool:
        """True when the request shared its batch with other requests."""
        return self.batch_size > 1
