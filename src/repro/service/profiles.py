"""Named execution profiles: transport-safe fidelity -> factory resolution.

A request travelling over a wire (HTTP body, multiprocess queue) cannot
carry a Python closure, so the serving tier names its execution
configuration instead: a *profile* string that every transport resolves to
the same network factory.  The profile set is the engine's fidelity
spectrum plus the deterministic baseline:

* ``"baseline"`` - :func:`~repro.core.engine.baseline_network` (exact
  rectified resonator for bipolar codebooks, exact phasor resonator for
  FHRR), the service's historical default;
* ``"statistical"`` / ``"crossbar"`` / ``"sram"`` / ``"hybrid"`` - the
  :class:`~repro.core.engine.H3DFact` fidelities (see the README's
  "Fidelity spectrum").

Engines are cached per ``(fidelity, algebra)`` so program-once artifacts
(conductance tiles, packed codebook planes) amortize across batches within
one process, and every network is built from a fixed-seed generator so
profile resolution adds no hidden entropy: a seeded request's trajectory
still depends only on its own seed, its product and its codebooks - the
basis of the cross-transport bit-identity guarantee.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.core.engine import FIDELITIES, H3DFact, baseline_network
from repro.errors import ConfigurationError
from repro.resonator.batch import NetworkFactory
from repro.resonator.network import FactorizationProblem, ResonatorNetwork
from repro.utils.rng import as_rng

#: The deterministic default profile (exact MVMs, no hardware model).
BASELINE_PROFILE = "baseline"

#: Every profile name a request's ``fidelity`` field may carry.
PROFILE_FIDELITIES = (BASELINE_PROFILE,) + FIDELITIES

#: Fidelities that model bipolar hardware and cannot carry complex state.
_BIPOLAR_ONLY = ("crossbar", "sram", "hybrid")

#: Fixed seed for profile-owned engines and per-network generators.  The
#: generator only feeds probability-zero tie-breaks (analog projections
#: are continuous) and batch-wide fallbacks that seeded replay overrides,
#: so pinning it removes the last source of ambient entropy.
_ENGINE_SEED = 0x4833_4446  # "H3DF"

_engines: Dict[Tuple[str, str], H3DFact] = {}
_engines_lock = threading.Lock()


def check_profile(fidelity: str, algebra: Optional[str] = None) -> str:
    """Validate a profile name (and its algebra pairing); returns the name.

    Raises :class:`~repro.errors.ConfigurationError` for unknown profiles
    and for FHRR requests against the bipolar-hardware fidelities, the
    same incompatibility :class:`~repro.core.engine.H3DFact` enforces.
    """
    if fidelity not in PROFILE_FIDELITIES:
        raise ConfigurationError(
            f"fidelity must be one of {PROFILE_FIDELITIES}, got {fidelity!r}"
        )
    if algebra == "fhrr" and fidelity in _BIPOLAR_ONLY:
        raise ConfigurationError(
            f"fidelity={fidelity!r} models bipolar hardware and cannot "
            "serve FHRR (complex phasor) requests; use 'baseline' or "
            "'statistical'"
        )
    return fidelity


def engine_for(fidelity: str, algebra: str) -> H3DFact:
    """The process-wide cached engine for one ``(fidelity, algebra)`` pair.

    Caching is what makes program-once economics survive profile dispatch:
    every batch of the same profile reuses one engine, whose backends key
    their caches (conductances, packed planes) by codebook content hash.
    """
    check_profile(fidelity, algebra)
    if fidelity == BASELINE_PROFILE:
        raise ConfigurationError(
            "the 'baseline' profile has no H3DFact engine; use "
            "network_factory_for('baseline')"
        )
    key = (fidelity, algebra)
    with _engines_lock:
        engine = _engines.get(key)
        if engine is None:
            engine = H3DFact(
                fidelity=fidelity, algebra=algebra, rng=as_rng(_ENGINE_SEED)
            )
            _engines[key] = engine
        return engine


def cache_metrics() -> Dict[str, Dict[str, int]]:
    """Hit/miss/eviction counters of the process-wide backend caches.

    Reads the crossbar conductance cache and the SRAM packed-codebook
    cache (both program-once stores keyed by codebook content) so the
    serving tier's ``/metrics`` endpoint can surface them without
    importing backend modules at call sites.
    """
    from repro.cim.sram.batched import PACKED_CODEBOOK_CACHE
    from repro.core.crossbar_backend import CONDUCTANCE_CACHE

    return {
        "conductance": {
            "entries": len(CONDUCTANCE_CACHE),
            "hits": CONDUCTANCE_CACHE.hits,
            "misses": CONDUCTANCE_CACHE.misses,
            "evictions": CONDUCTANCE_CACHE.evictions,
        },
        "packed_codebook": {
            "entries": len(PACKED_CODEBOOK_CACHE),
            "hits": PACKED_CODEBOOK_CACHE.hits,
            "misses": PACKED_CODEBOOK_CACHE.misses,
            "evictions": PACKED_CODEBOOK_CACHE.evictions,
        },
    }


def network_factory_for(fidelity: str) -> NetworkFactory:
    """Resolve a profile name to a network factory (algebra-dispatching).

    The returned factory reads the problem's codebook algebra, so one
    profile serves mixed bipolar/FHRR traffic (each batch is single-
    algebra by construction - the scheduler's batch key includes it).
    """
    check_profile(fidelity)

    def factory(problem: FactorizationProblem) -> ResonatorNetwork:
        """Build the profile's resonator for one problem's codebooks."""
        algebra = problem.codebooks.algebra
        check_profile(fidelity, algebra)
        if fidelity == BASELINE_PROFILE:
            return baseline_network(problem.codebooks)
        return engine_for(fidelity, algebra).make_network(
            problem.codebooks, rng=as_rng(_ENGINE_SEED)
        )

    return factory
