"""Process sharding: sweep cells and live-traffic routing.

The thread worker pool is the right tool for serving one process's
traffic (numpy releases the GIL inside the stacked MVMs), but independent
work parallelizes better across *processes*: each shard owns its arrays
and interpreter.  This module covers both sharded workloads the repo has:

* **Sweep cells** - a grid sweep's independent (design, F, M) cells as
  picklable :class:`SweepCell` objects fanned over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (:func:`run_cells`).
* **Live traffic** - the :class:`ConsistentHashRing` the serving tier's
  :class:`~repro.service.workers.ShardedWorkerPool` routes requests with.
  Routing hashes the *codebook fingerprint*, so every request against one
  codebook set lands on the shard that programmed it (program-once
  amortization survives sharding), and the ring's virtual nodes keep the
  key space balanced and mostly stable when the shard count changes.

Cells and requests are seeded individually, so the outcome of a unit of
work is independent of which shard ran it and of the shard count - the
same arrival-order-independence contract the request scheduler gives
individual requests.
"""

from __future__ import annotations

import bisect
import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

_DESIGNS = ("baseline", "h3d")


@dataclass(frozen=True)
class SweepCell:
    """One picklable grid cell of an accuracy sweep."""

    dim: int
    num_factors: int
    codebook_size: int
    trials: int
    seed: int
    max_iterations: int = 500
    design: str = "baseline"
    share_codebooks: bool = False

    def __post_init__(self) -> None:
        if self.design not in _DESIGNS:
            raise ConfigurationError(
                f"design must be one of {_DESIGNS}, got {self.design!r}"
            )


@dataclass(frozen=True)
class CellOutcome:
    """Aggregate results of one cell (picklable, shard-independent)."""

    cell: SweepCell
    accuracy: float
    mean_iterations: float
    solved: int


def run_cell(cell: SweepCell) -> CellOutcome:
    """Execute one cell in the current process (the shard worker body)."""
    # Imported here so a spawned shard pays the import cost itself and the
    # module stays cheap to pickle.
    from repro.core.engine import H3DFact, baseline_network
    from repro.resonator.batch import factorize_batch
    from repro.utils.rng import as_rng

    rng = as_rng(cell.seed)
    if cell.design == "h3d":
        engine = H3DFact(rng=rng)
        factory = lambda p: engine.make_network(  # noqa: E731
            p.codebooks, max_iterations=cell.max_iterations
        )
    else:
        factory = lambda p: baseline_network(  # noqa: E731
            p.codebooks, max_iterations=cell.max_iterations, rng=rng
        )
    batch = factorize_batch(
        factory,
        dim=cell.dim,
        num_factors=cell.num_factors,
        codebook_size=cell.codebook_size,
        trials=cell.trials,
        max_iterations=cell.max_iterations,
        rng=rng,
        share_codebooks=cell.share_codebooks,
    )
    solved = sum(1 for result in batch.results if result.correct)
    return CellOutcome(
        cell=cell,
        accuracy=batch.accuracy,
        mean_iterations=batch.mean_iterations,
        solved=solved,
    )


def run_cells(
    cells: Sequence[SweepCell], *, processes: Optional[int] = None
) -> List[CellOutcome]:
    """Run a cell list, optionally sharded over worker processes.

    ``processes=None`` (or ``<= 1``) runs in-process; otherwise the cells
    fan out over a :class:`~concurrent.futures.ProcessPoolExecutor` and
    the outcomes return in input order.  Per-cell seeding makes the
    outcomes identical either way.
    """
    cells = list(cells)
    if not cells:
        return []
    if processes is None or processes <= 1:
        return [run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(run_cell, cells))


class ConsistentHashRing:
    """Consistent hashing of string keys onto shard indices or node ids.

    Each owner contributes ``vnodes`` virtual points on a sha256 ring; a
    key routes to the first point clockwise of its own hash.  Two owner
    vocabularies share the implementation:

    * ``ConsistentHashRing(4)`` - dense integer shard indices, the
      single-host worker pool's vocabulary (tokens ``shard:i:vnode:r``);
    * ``ConsistentHashRing(["node-a", "node-b"])`` - string node ids, the
      cluster shard map's vocabulary (tokens ``node:<id>:vnode:r``).
      Hashing the node *id* (not a dense index) is what makes membership
      churn minimal-movement: removing a node deletes only its own
      virtual points, so only the keys on its arcs move.

    The construction is deterministic (a pure function of the owners and
    ``vnodes``), so every frontend - and every test - computes the same
    placement, and growing the ring from N to N+1 owners moves only
    ~1/(N+1) of the key space (pinned by the minimal-movement property
    test in ``tests/test_service_sharding.py``).
    """

    def __init__(
        self, shards: Union[int, Sequence[str]], *, vnodes: int = 64
    ) -> None:
        if vnodes <= 0:
            raise ConfigurationError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        if isinstance(shards, int):
            if shards <= 0:
                raise ConfigurationError(
                    f"shards must be positive, got {shards}"
                )
            self.shards = int(shards)
            owners: List[Union[int, str]] = list(range(self.shards))
            tokens = [f"shard:{owner}" for owner in owners]
        else:
            names = [str(name) for name in shards]
            if not names:
                raise ConfigurationError("node ring needs at least one node id")
            if len(set(names)) != len(names):
                raise ConfigurationError(f"duplicate node ids in {names}")
            self.shards = len(names)
            owners = list(names)
            tokens = [f"node:{owner}" for owner in owners]
        self.owners: Tuple[Union[int, str], ...] = tuple(owners)
        points = []
        for owner, token in zip(owners, tokens):
            for replica in range(self.vnodes):
                point = f"{token}:vnode:{replica}".encode("utf-8")
                points.append((self._hash(point), owner))
        points.sort(key=lambda pair: (pair[0], str(pair[1])))
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _hash(data: bytes) -> int:
        """First 8 bytes of sha256 as the ring position."""
        return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")

    def route(self, key: str) -> Union[int, str]:
        """The owner of ``key`` (e.g. a codebook fingerprint).

        Returns a shard index for integer-constructed rings, a node id
        for node-id rings.
        """
        position = self._hash(key.encode("utf-8"))
        index = bisect.bisect_right(self._hashes, position)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def successors(self, key: str, count: int) -> List[Union[int, str]]:
        """The first ``count`` *distinct* owners clockwise of ``key``.

        The replica set of the cluster tier: entry 0 is the primary
        (identical to :meth:`route`), the rest are the ring successors a
        replication factor R > 1 fans registrations out to.  ``count`` is
        clamped to the number of distinct owners.
        """
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        position = self._hash(key.encode("utf-8"))
        start = bisect.bisect_right(self._hashes, position)
        owners: List[Union[int, str]] = []
        seen = set()
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner in seen:
                continue
            seen.add(owner)
            owners.append(owner)
            if len(owners) >= min(count, self.shards):
                break
        return owners

    def __repr__(self) -> str:
        return f"ConsistentHashRing(shards={self.shards}, vnodes={self.vnodes})"
