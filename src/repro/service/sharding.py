"""Process-sharded experiment sweeps.

The thread worker pool is the right tool for serving one process's
traffic (numpy releases the GIL inside the stacked MVMs), but a grid
sweep - many independent (design, F, M) cells - parallelizes better
across *processes*: each shard owns its arrays and interpreter.  This
module describes one cell as a picklable :class:`SweepCell` and fans a
cell list out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Cells are seeded individually, so the outcome of a cell is independent of
which shard ran it and of the shard count - the same
arrival-order-independence contract the request scheduler gives
individual requests.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError

_DESIGNS = ("baseline", "h3d")


@dataclass(frozen=True)
class SweepCell:
    """One picklable grid cell of an accuracy sweep."""

    dim: int
    num_factors: int
    codebook_size: int
    trials: int
    seed: int
    max_iterations: int = 500
    design: str = "baseline"
    share_codebooks: bool = False

    def __post_init__(self) -> None:
        if self.design not in _DESIGNS:
            raise ConfigurationError(
                f"design must be one of {_DESIGNS}, got {self.design!r}"
            )


@dataclass(frozen=True)
class CellOutcome:
    """Aggregate results of one cell (picklable, shard-independent)."""

    cell: SweepCell
    accuracy: float
    mean_iterations: float
    solved: int


def run_cell(cell: SweepCell) -> CellOutcome:
    """Execute one cell in the current process (the shard worker body)."""
    # Imported here so a spawned shard pays the import cost itself and the
    # module stays cheap to pickle.
    from repro.core.engine import H3DFact, baseline_network
    from repro.resonator.batch import factorize_batch
    from repro.utils.rng import as_rng

    rng = as_rng(cell.seed)
    if cell.design == "h3d":
        engine = H3DFact(rng=rng)
        factory = lambda p: engine.make_network(  # noqa: E731
            p.codebooks, max_iterations=cell.max_iterations
        )
    else:
        factory = lambda p: baseline_network(  # noqa: E731
            p.codebooks, max_iterations=cell.max_iterations, rng=rng
        )
    batch = factorize_batch(
        factory,
        dim=cell.dim,
        num_factors=cell.num_factors,
        codebook_size=cell.codebook_size,
        trials=cell.trials,
        max_iterations=cell.max_iterations,
        rng=rng,
        share_codebooks=cell.share_codebooks,
    )
    solved = sum(1 for result in batch.results if result.correct)
    return CellOutcome(
        cell=cell,
        accuracy=batch.accuracy,
        mean_iterations=batch.mean_iterations,
        solved=solved,
    )


def run_cells(
    cells: Sequence[SweepCell], *, processes: Optional[int] = None
) -> List[CellOutcome]:
    """Run a cell list, optionally sharded over worker processes.

    ``processes=None`` (or ``<= 1``) runs in-process; otherwise the cells
    fan out over a :class:`~concurrent.futures.ProcessPoolExecutor` and
    the outcomes return in input order.  Per-cell seeding makes the
    outcomes identical either way.
    """
    cells = list(cells)
    if not cells:
        return []
    if processes is None or processes <= 1:
        return [run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(run_cell, cells))
