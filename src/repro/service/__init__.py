"""Micro-batching factorization service (the program-once/query-many path).

Production serving layer over the batched resonator engine: individual
:class:`FactorizationRequest`\\ s are coalesced into stacked micro-batches
by a :class:`FactorizationService` (max-batch-size / max-wait flush
policy, bounded-queue backpressure, thread worker pool), codebooks are
interned once into a content-addressed LRU :class:`CodebookRegistry`, and
per-request seeding makes deterministic configurations replay
bit-identically regardless of arrival order or batch packing.

>>> from repro.service import FactorizationRequest, FactorizationService
>>> from repro import FactorizationProblem
>>> with FactorizationService() as service:
...     problem = FactorizationProblem.random(1024, 3, 16, rng=0)
...     future = service.submit(
...         FactorizationRequest.from_problem(problem, seed=7)
...     )
...     response = future.result()
>>> response.result.correct
True
"""

from repro.resonator.replay import (
    GeometryKey,
    geometry_key,
    group_by_geometry,
    run_group,
    run_problems_grouped,
    seeded_initial_estimates,
)
from repro.service.bench import ServeBenchConfig, ServeBenchResult, run_serve_bench
from repro.service.registry import (
    CodebookRegistry,
    RegistryStats,
    codebook_fingerprint,
)
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.service.scheduler import (
    BatchPolicy,
    FactorizationService,
    ServiceStats,
)
from repro.service.sharding import CellOutcome, SweepCell, run_cell, run_cells

__all__ = [
    "BatchPolicy",
    "CellOutcome",
    "CodebookRegistry",
    "FactorizationRequest",
    "FactorizationResponse",
    "FactorizationService",
    "GeometryKey",
    "RegistryStats",
    "ServeBenchConfig",
    "ServeBenchResult",
    "ServiceStats",
    "SweepCell",
    "codebook_fingerprint",
    "geometry_key",
    "group_by_geometry",
    "run_cell",
    "run_cells",
    "run_group",
    "run_problems_grouped",
    "run_serve_bench",
    "seeded_initial_estimates",
]
