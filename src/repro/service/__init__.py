"""Micro-batching factorization service (the program-once/query-many path).

Production serving layer over the batched resonator engine: individual
:class:`FactorizationRequest`\\ s are coalesced into stacked micro-batches
by a :class:`FactorizationService` (max-batch-size / max-wait flush
policy, bounded-queue backpressure, thread worker pool), codebooks are
interned once into a content-addressed LRU :class:`CodebookRegistry`, and
per-request seeding makes deterministic configurations replay
bit-identically regardless of arrival order or batch packing.

The serving tier extends the same guarantee over process and network
boundaries: dispatch is transport-agnostic behind the :class:`Transport`
seam (:class:`InProcessTransport` here,
:class:`~repro.service.workers.ShardedWorkerPool` over registry-sharded
worker processes, :class:`~repro.service.http.HTTPTransport` over the
stdlib HTTP server in :mod:`repro.service.http`), requests may name an
execution profile (:mod:`repro.service.profiles`), and the
:class:`~repro.service.sharding.ConsistentHashRing` routes live traffic
by codebook fingerprint so program-once amortization survives sharding.

>>> from repro.service import FactorizationRequest, FactorizationService
>>> from repro import FactorizationProblem
>>> with FactorizationService() as service:
...     problem = FactorizationProblem.random(1024, 3, 16, rng=0)
...     future = service.submit(
...         FactorizationRequest.from_problem(problem, seed=7)
...     )
...     response = future.result()
>>> response.result.correct
True
"""

from repro.resonator.replay import (
    GeometryKey,
    geometry_key,
    group_by_geometry,
    run_group,
    run_problems_grouped,
    seeded_initial_estimates,
)
from repro.service.bench import ServeBenchConfig, ServeBenchResult, run_serve_bench
from repro.service.registry import (
    CodebookRegistry,
    RegistryStats,
    codebook_fingerprint,
)
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.service.profiles import (
    BASELINE_PROFILE,
    PROFILE_FIDELITIES,
    check_profile,
    network_factory_for,
)
from repro.service.scheduler import (
    BatchPolicy,
    FactorizationService,
    ServiceStats,
)
from repro.service.sharding import (
    CellOutcome,
    ConsistentHashRing,
    SweepCell,
    run_cell,
    run_cells,
)
from repro.service.transport import (
    InProcessTransport,
    Transport,
    request_routing_key,
)
from repro.service.workers import (
    PoolStats,
    ShardedWorkerPool,
    WorkerPoolConfig,
)

__all__ = [
    "BASELINE_PROFILE",
    "BatchPolicy",
    "CellOutcome",
    "CodebookRegistry",
    "ConsistentHashRing",
    "FactorizationRequest",
    "FactorizationResponse",
    "FactorizationService",
    "GeometryKey",
    "InProcessTransport",
    "PROFILE_FIDELITIES",
    "PoolStats",
    "RegistryStats",
    "ServeBenchConfig",
    "ServeBenchResult",
    "ServiceStats",
    "ShardedWorkerPool",
    "SweepCell",
    "Transport",
    "WorkerPoolConfig",
    "check_profile",
    "codebook_fingerprint",
    "geometry_key",
    "group_by_geometry",
    "network_factory_for",
    "request_routing_key",
    "run_cell",
    "run_cells",
    "run_group",
    "run_problems_grouped",
    "run_serve_bench",
    "seeded_initial_estimates",
]
