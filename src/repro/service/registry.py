"""Content-addressed codebook registry with LRU eviction.

In hardware, a codebook set is *programmed* into the RRAM tiers once and
then serves an unbounded stream of queries (Sec. IV-A; the program-once /
query-many economics of in-memory factorization).  The software analogue
is interning: the registry keys every :class:`~repro.vsa.codebook.CodebookSet`
by a content hash, so repeated traffic against equal-content codebooks is
routed to one canonical instance.  Canonicalization is what lets the
scheduler detect the shared-codebook situation across independent requests
(`problem.codebooks is first_set`) and run the whole batch as one GEMM
against a single programmed array.

Capacity is bounded: the registry holds at most ``capacity`` sets and
evicts least-recently-used entries (re-programming cost is paid again if
an evicted set returns).  In-flight batches keep their own references, so
eviction never invalidates running work.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError, UnknownCodebookError
from repro.telemetry import get_log
from repro.vsa.codebook import CodebookSet, codebook_set_fingerprint


def codebook_fingerprint(codebooks: CodebookSet) -> str:
    """Stable content hash of a codebook set - the registry's key format.

    Two sets with identical factor names, sizes and item vectors map to
    the same key regardless of object identity - the "same arrays would be
    programmed" equivalence.  The hash itself lives at the VSA layer
    (:func:`repro.vsa.codebook.codebook_set_fingerprint`) so that lower
    layers - notably the crossbar conductance cache of
    :mod:`repro.core.crossbar_backend` - key off the same content identity
    without importing the serving stack.
    """
    return codebook_set_fingerprint(codebooks)


@dataclass
class RegistryStats:
    """Hit/miss/eviction counters for one registry."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without re-programming."""
        return self.hits / self.lookups if self.lookups else 0.0


class CodebookRegistry:
    """LRU cache of canonical codebook sets keyed by content hash."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"registry capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, CodebookSet]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = RegistryStats()

    def intern(self, codebooks: CodebookSet) -> Tuple[str, CodebookSet, bool]:
        """Canonicalize ``codebooks``; returns ``(key, canonical, hit)``.

        A hit returns the already-programmed instance (and refreshes its
        recency); a miss programs this instance, evicting the
        least-recently-used set if the registry is at capacity.
        """
        key = codebook_fingerprint(codebooks)
        evicted = 0
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                hit = True
            else:
                self.stats.misses += 1
                self._entries[key] = codebooks
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                    evicted += 1
                cached, hit = codebooks, False
        log = get_log()
        if log.enabled:
            log.emit(
                "registry.hit" if hit else "registry.miss",
                key=key[:16],
                entries=len(self._entries),
            )
            for _ in range(evicted):
                log.emit("registry.eviction", capacity=self.capacity)
        return key, cached, hit

    def register(self, codebooks: CodebookSet) -> str:
        """Intern ``codebooks`` and return the registry key."""
        key, _, _ = self.intern(codebooks)
        return key

    def get(self, key: str) -> CodebookSet:
        """Look up a previously registered set by key.

        Raises :class:`~repro.errors.UnknownCodebookError` (a retryable
        :class:`~repro.errors.ServiceError`) on a miss - over the wire
        this surfaces as HTTP 404 with a typed envelope.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        log = get_log()
        if log.enabled:
            log.emit(
                "registry.hit" if cached is not None else "registry.miss",
                key=key[:16],
                entries=len(self._entries),
            )
        if cached is None:
            raise UnknownCodebookError(
                f"no codebook set registered under key {key[:16]!r}... "
                "(evicted, or never registered)"
            )
        return cached

    def keys(self) -> Tuple[str, ...]:
        """Registered content-hash keys, least- to most-recently used.

        The cluster tier's replication replay reads this to decide which
        sets a node already holds (re-registering a held key is a cheap
        registry hit, so replay is idempotent).
        """
        with self._lock:
            return tuple(self._entries.keys())

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"CodebookRegistry(capacity={self.capacity}, entries={len(self)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions})"
        )
