"""Codebooks of item hypervectors.

A :class:`Codebook` is the ``D x M`` matrix of item vectors for one
attribute (e.g. all shapes); a :class:`CodebookSet` holds one codebook per
attribute and is the second input to the resonator network (the first being
the product vector to factorize).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodebookError, ConfigurationError, DimensionError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_vector
from repro.vsa import fhrr
from repro.vsa.ops import DEFAULT_DTYPE, random_hypervector


@dataclass
class Codebook:
    """Item vectors for one attribute.

    Attributes
    ----------
    name:
        Human-readable attribute name (``"shape"``, ``"color"``, ...).
    matrix:
        ``(dim, size)`` matrix; column ``m`` is item vector ``m``.  Bipolar
        codebooks hold -1/+1 int8 entries, FHRR codebooks hold complex128
        unitary phasors.
    labels:
        Optional item labels, e.g. ``["circle", "triangle"]``.
    algebra:
        ``"bipolar"`` (the paper's MAP VSA, default) or ``"fhrr"``
        (circular-convolution binding, :mod:`repro.vsa.fhrr`).
    """

    name: str
    matrix: np.ndarray
    labels: Optional[List[str]] = None
    algebra: str = "bipolar"

    def __post_init__(self) -> None:
        if self.algebra not in ("bipolar", "fhrr"):
            raise ConfigurationError(
                f"codebook {self.name!r}: algebra must be 'bipolar' or "
                f"'fhrr', got {self.algebra!r}"
            )
        self.matrix = np.asarray(self.matrix)
        if self.algebra == "fhrr":
            self.matrix = self.matrix.astype(fhrr.COMPLEX_DTYPE, copy=False)
        if self.matrix.ndim != 2:
            raise DimensionError(
                f"codebook {self.name!r} matrix must be 2-D, got "
                f"{self.matrix.ndim}-D"
            )
        check_vector(f"codebook {self.name!r}", self.matrix, algebra=self.algebra)
        if self.labels is not None and len(self.labels) != self.size:
            raise CodebookError(
                f"codebook {self.name!r} has {self.size} items but "
                f"{len(self.labels)} labels"
            )

    # -- construction ---------------------------------------------------

    @classmethod
    def random(
        cls,
        name: str,
        dim: int,
        size: int,
        *,
        rng: RandomState = None,
        labels: Optional[Sequence[str]] = None,
        algebra: str = "bipolar",
    ) -> "Codebook":
        """Generate ``size`` random item vectors of dimension ``dim``."""
        if size <= 0:
            raise CodebookError(f"codebook size must be positive, got {size}")
        generator = as_rng(rng)
        if algebra == "fhrr":
            matrix = fhrr.random_phasor_matrix(dim, size, rng=generator)
        else:
            matrix = (
                2 * generator.integers(0, 2, size=(dim, size), dtype=np.int8) - 1
            ).astype(DEFAULT_DTYPE)
        return cls(
            name=name,
            matrix=matrix,
            labels=list(labels) if labels else None,
            algebra=algebra,
        )

    # -- basic properties -------------------------------------------------

    @property
    def dim(self) -> int:
        """Hypervector dimension ``D``."""
        return int(self.matrix.shape[0])

    @property
    def size(self) -> int:
        """Number of item vectors ``M``."""
        return int(self.matrix.shape[1])

    def __len__(self) -> int:
        return self.size

    def vector(self, index: int) -> np.ndarray:
        """Item vector at ``index`` (a view into the matrix)."""
        if not 0 <= index < self.size:
            raise CodebookError(
                f"item index {index} out of range for codebook "
                f"{self.name!r} of size {self.size}"
            )
        return self.matrix[:, index]

    def label(self, index: int) -> str:
        """Label of item ``index`` (falls back to ``name[index]``)."""
        if self.labels is not None:
            return self.labels[index]
        return f"{self.name}[{index}]"

    # -- similarity-based decoding -----------------------------------------

    def similarities(self, query: np.ndarray) -> np.ndarray:
        """Similarity of ``query`` with every item vector.

        Bipolar: the integer dot product ``X^T q`` - exactly the MVM the
        RRAM similarity tier performs (Sec. IV-A, step II).  FHRR: the
        real part of the Hermitian product ``Re(X^H q)``; a matching
        unitary item scores ~1 (Parseval), a random one ~N(0, 1/sqrt(2D)).
        """
        query = np.asarray(query)
        if query.shape != (self.dim,):
            raise DimensionError(
                f"query shape {query.shape} does not match codebook dim "
                f"({self.dim},)"
            )
        if self.algebra == "fhrr":
            return np.real(
                self.matrix.conj().T @ query.astype(fhrr.COMPLEX_DTYPE)
            )
        return self.matrix.T.astype(np.int64) @ query.astype(np.int64)

    def cleanup(self, query: np.ndarray) -> Tuple[int, np.ndarray]:
        """Nearest item index and the item vector itself."""
        sims = self.similarities(query)
        index = int(np.argmax(sims))
        return index, self.vector(index)

    def project(self, weights: np.ndarray) -> np.ndarray:
        """Weighted sum of item vectors (``X a``), the projection MVM."""
        weights = np.asarray(weights)
        if weights.shape != (self.size,):
            raise DimensionError(
                f"weights shape {weights.shape} does not match codebook size "
                f"({self.size},)"
            )
        if self.algebra == "fhrr":
            # Similarity weights are real; the items are complex phasors.
            return self.matrix @ weights.astype(np.float64)
        return self.matrix.astype(np.int64) @ weights.astype(np.int64)

    def contains_vector(self, query: np.ndarray) -> bool:
        """True if ``query`` equals one of the item vectors exactly."""
        if self.algebra == "fhrr":
            query = np.asarray(query, dtype=fhrr.COMPLEX_DTYPE)
            if query.shape != (self.dim,):
                raise DimensionError(
                    f"query shape {query.shape} does not match codebook dim "
                    f"({self.dim},)"
                )
            return bool(np.any(np.all(self.matrix == query[:, None], axis=0)))
        sims = self.similarities(query)
        return bool(np.max(sims) == self.dim)


@dataclass
class CodebookSet:
    """One codebook per attribute, sharing a hypervector dimension."""

    codebooks: List[Codebook] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.codebooks:
            raise CodebookError("CodebookSet requires at least one codebook")
        dims = {cb.dim for cb in self.codebooks}
        if len(dims) != 1:
            raise DimensionError(
                f"codebooks must share a dimension, got dims {sorted(dims)}"
            )
        algebras = {cb.algebra for cb in self.codebooks}
        if len(algebras) != 1:
            raise ConfigurationError(
                f"codebooks must share an algebra, got {sorted(algebras)}"
            )
        names = [cb.name for cb in self.codebooks]
        if len(set(names)) != len(names):
            raise CodebookError(f"duplicate codebook names: {names}")

    @classmethod
    def random(
        cls,
        dim: int,
        sizes: Sequence[int],
        *,
        names: Optional[Sequence[str]] = None,
        rng: RandomState = None,
        algebra: str = "bipolar",
    ) -> "CodebookSet":
        """Random codebooks with per-attribute ``sizes``."""
        generator = as_rng(rng)
        if names is None:
            names = [f"factor{i}" for i in range(len(sizes))]
        if len(names) != len(sizes):
            raise CodebookError(
                f"{len(names)} names provided for {len(sizes)} sizes"
            )
        books = [
            Codebook.random(name, dim, size, rng=generator, algebra=algebra)
            for name, size in zip(names, sizes)
        ]
        return cls(books)

    @classmethod
    def random_uniform(
        cls,
        dim: int,
        num_factors: int,
        size: int,
        *,
        rng: RandomState = None,
        algebra: str = "bipolar",
    ) -> "CodebookSet":
        """``num_factors`` codebooks of identical ``size`` (the Table II setup)."""
        return cls.random(dim, [size] * num_factors, rng=rng, algebra=algebra)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.codebooks)

    def __iter__(self) -> Iterator[Codebook]:
        return iter(self.codebooks)

    def __getitem__(self, key) -> Codebook:
        if isinstance(key, str):
            for codebook in self.codebooks:
                if codebook.name == key:
                    return codebook
            raise CodebookError(f"no codebook named {key!r}")
        return self.codebooks[key]

    # -- properties -----------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.codebooks[0].dim

    @property
    def num_factors(self) -> int:
        return len(self.codebooks)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(cb.size for cb in self.codebooks)

    @property
    def algebra(self) -> str:
        """The shared algebra of every codebook (``"bipolar"`` or ``"fhrr"``)."""
        return self.codebooks[0].algebra

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(cb.name for cb in self.codebooks)

    @property
    def search_space(self) -> int:
        """Size of the combinatorial search space ``prod(M_f)``."""
        product = 1
        for codebook in self.codebooks:
            product *= codebook.size
        return product

    def compose(self, indices: Sequence[int]) -> np.ndarray:
        """Bind the items at ``indices`` into a product vector."""
        if len(indices) != self.num_factors:
            raise CodebookError(
                f"{len(indices)} indices provided for {self.num_factors} factors"
            )
        if self.algebra == "fhrr":
            return fhrr.bind(
                *(
                    codebook.vector(index)
                    for codebook, index in zip(self.codebooks, indices)
                )
            )
        product = np.ones(self.dim, dtype=np.int32)
        for codebook, index in zip(self.codebooks, indices):
            product *= codebook.vector(index).astype(np.int32)
        return product.astype(DEFAULT_DTYPE)

    def describe(self, indices: Sequence[int]) -> Dict[str, str]:
        """Human-readable labels for a factor-index assignment."""
        return {
            codebook.name: codebook.label(index)
            for codebook, index in zip(self.codebooks, indices)
        }


# -- content addressing -------------------------------------------------------
#
# Content hashes are the "same arrays would be programmed" equivalence used
# by the serving registry (:mod:`repro.service.registry`) and the crossbar
# conductance cache (:mod:`repro.core.crossbar_backend`): two codebooks with
# identical item vectors hash identically regardless of object identity or
# the float dtype their matrices are stored in.


def _matrix_digest_bytes(codebook: Codebook) -> bytes:
    """Canonical byte form of a codebook matrix for content hashing.

    Bipolar entries fit int8 exactly; hashing the compact form keeps the
    key independent of the float dtype the matrix is stored in (and keeps
    bipolar fingerprints byte-identical to the pre-FHRR format).  FHRR
    matrices hash their full complex128 bytes so the key covers every
    phase, not just a sign pattern.
    """
    if codebook.algebra == "fhrr":
        return np.ascontiguousarray(
            codebook.matrix, dtype=fhrr.COMPLEX_DTYPE
        ).tobytes()
    return np.ascontiguousarray(codebook.matrix, dtype=np.int8).tobytes()


def _algebra_tag(algebra: str) -> bytes:
    """Hash-domain separator for non-default algebras.

    Empty for bipolar so pre-existing bipolar fingerprints are unchanged;
    FHRR keys get an explicit tag so a (hypothetical) byte collision with
    a bipolar matrix cannot alias in the registry.
    """
    return b"" if algebra == "bipolar" else f"algebra={algebra};".encode()


def codebook_fingerprint(codebook: Codebook) -> str:
    """Stable content hash of one codebook's item-vector matrix.

    Keyed on geometry plus the entries only - the codebook *name* is
    excluded, since programming an RRAM array depends on the weights,
    not on what the attribute is called.  FHRR fingerprints cover the
    complex phases of every item.
    """
    hasher = hashlib.sha256()
    hasher.update(_algebra_tag(codebook.algebra))
    hasher.update(f"dim={codebook.dim};size={codebook.size}:".encode())
    hasher.update(_matrix_digest_bytes(codebook))
    return hasher.hexdigest()


def codebook_set_fingerprint(codebooks: CodebookSet) -> str:
    """Stable content hash of a codebook set (geometry, names, matrices).

    Two sets with identical algebra, factor names, sizes and item vectors
    map to the same key regardless of object identity.  This is the key
    format of :class:`repro.service.registry.CodebookRegistry`.
    """
    hasher = hashlib.sha256()
    hasher.update(_algebra_tag(codebooks.algebra))
    hasher.update(f"dim={codebooks.dim};factors={codebooks.num_factors}".encode())
    for codebook in codebooks:
        hasher.update(f";{codebook.name}:{codebook.size}:".encode())
        hasher.update(_matrix_digest_bytes(codebook))
    return hasher.hexdigest()
