"""Codebooks of item hypervectors.

A :class:`Codebook` is the ``D x M`` matrix of item vectors for one
attribute (e.g. all shapes); a :class:`CodebookSet` holds one codebook per
attribute and is the second input to the resonator network (the first being
the product vector to factorize).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodebookError, DimensionError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_bipolar
from repro.vsa.ops import DEFAULT_DTYPE, random_hypervector


@dataclass
class Codebook:
    """Item vectors for one attribute.

    Attributes
    ----------
    name:
        Human-readable attribute name (``"shape"``, ``"color"``, ...).
    matrix:
        ``(dim, size)`` bipolar matrix; column ``m`` is item vector ``m``.
    labels:
        Optional item labels, e.g. ``["circle", "triangle"]``.
    """

    name: str
    matrix: np.ndarray
    labels: Optional[List[str]] = None

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix)
        if self.matrix.ndim != 2:
            raise DimensionError(
                f"codebook {self.name!r} matrix must be 2-D, got "
                f"{self.matrix.ndim}-D"
            )
        check_bipolar(f"codebook {self.name!r}", self.matrix)
        if self.labels is not None and len(self.labels) != self.size:
            raise CodebookError(
                f"codebook {self.name!r} has {self.size} items but "
                f"{len(self.labels)} labels"
            )

    # -- construction ---------------------------------------------------

    @classmethod
    def random(
        cls,
        name: str,
        dim: int,
        size: int,
        *,
        rng: RandomState = None,
        labels: Optional[Sequence[str]] = None,
    ) -> "Codebook":
        """Generate ``size`` random item vectors of dimension ``dim``."""
        if size <= 0:
            raise CodebookError(f"codebook size must be positive, got {size}")
        generator = as_rng(rng)
        matrix = (
            2 * generator.integers(0, 2, size=(dim, size), dtype=np.int8) - 1
        ).astype(DEFAULT_DTYPE)
        return cls(name=name, matrix=matrix, labels=list(labels) if labels else None)

    # -- basic properties -------------------------------------------------

    @property
    def dim(self) -> int:
        """Hypervector dimension ``D``."""
        return int(self.matrix.shape[0])

    @property
    def size(self) -> int:
        """Number of item vectors ``M``."""
        return int(self.matrix.shape[1])

    def __len__(self) -> int:
        return self.size

    def vector(self, index: int) -> np.ndarray:
        """Item vector at ``index`` (a view into the matrix)."""
        if not 0 <= index < self.size:
            raise CodebookError(
                f"item index {index} out of range for codebook "
                f"{self.name!r} of size {self.size}"
            )
        return self.matrix[:, index]

    def label(self, index: int) -> str:
        """Label of item ``index`` (falls back to ``name[index]``)."""
        if self.labels is not None:
            return self.labels[index]
        return f"{self.name}[{index}]"

    # -- similarity-based decoding -----------------------------------------

    def similarities(self, query: np.ndarray) -> np.ndarray:
        """Dot product of ``query`` with every item vector (``X^T q``).

        This is exactly the MVM the RRAM similarity tier performs
        (Sec. IV-A, step II).
        """
        query = np.asarray(query)
        if query.shape != (self.dim,):
            raise DimensionError(
                f"query shape {query.shape} does not match codebook dim "
                f"({self.dim},)"
            )
        return self.matrix.T.astype(np.int64) @ query.astype(np.int64)

    def cleanup(self, query: np.ndarray) -> Tuple[int, np.ndarray]:
        """Nearest item index and the item vector itself."""
        sims = self.similarities(query)
        index = int(np.argmax(sims))
        return index, self.vector(index)

    def project(self, weights: np.ndarray) -> np.ndarray:
        """Weighted sum of item vectors (``X a``), the projection MVM."""
        weights = np.asarray(weights)
        if weights.shape != (self.size,):
            raise DimensionError(
                f"weights shape {weights.shape} does not match codebook size "
                f"({self.size},)"
            )
        return self.matrix.astype(np.int64) @ weights.astype(np.int64)

    def contains_vector(self, query: np.ndarray) -> bool:
        """True if ``query`` equals one of the item vectors exactly."""
        sims = self.similarities(query)
        return bool(np.max(sims) == self.dim)


@dataclass
class CodebookSet:
    """One codebook per attribute, sharing a hypervector dimension."""

    codebooks: List[Codebook] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.codebooks:
            raise CodebookError("CodebookSet requires at least one codebook")
        dims = {cb.dim for cb in self.codebooks}
        if len(dims) != 1:
            raise DimensionError(
                f"codebooks must share a dimension, got dims {sorted(dims)}"
            )
        names = [cb.name for cb in self.codebooks]
        if len(set(names)) != len(names):
            raise CodebookError(f"duplicate codebook names: {names}")

    @classmethod
    def random(
        cls,
        dim: int,
        sizes: Sequence[int],
        *,
        names: Optional[Sequence[str]] = None,
        rng: RandomState = None,
    ) -> "CodebookSet":
        """Random codebooks with per-attribute ``sizes``."""
        generator = as_rng(rng)
        if names is None:
            names = [f"factor{i}" for i in range(len(sizes))]
        if len(names) != len(sizes):
            raise CodebookError(
                f"{len(names)} names provided for {len(sizes)} sizes"
            )
        books = [
            Codebook.random(name, dim, size, rng=generator)
            for name, size in zip(names, sizes)
        ]
        return cls(books)

    @classmethod
    def random_uniform(
        cls,
        dim: int,
        num_factors: int,
        size: int,
        *,
        rng: RandomState = None,
    ) -> "CodebookSet":
        """``num_factors`` codebooks of identical ``size`` (the Table II setup)."""
        return cls.random(dim, [size] * num_factors, rng=rng)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.codebooks)

    def __iter__(self) -> Iterator[Codebook]:
        return iter(self.codebooks)

    def __getitem__(self, key) -> Codebook:
        if isinstance(key, str):
            for codebook in self.codebooks:
                if codebook.name == key:
                    return codebook
            raise CodebookError(f"no codebook named {key!r}")
        return self.codebooks[key]

    # -- properties -----------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.codebooks[0].dim

    @property
    def num_factors(self) -> int:
        return len(self.codebooks)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(cb.size for cb in self.codebooks)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(cb.name for cb in self.codebooks)

    @property
    def search_space(self) -> int:
        """Size of the combinatorial search space ``prod(M_f)``."""
        product = 1
        for codebook in self.codebooks:
            product *= codebook.size
        return product

    def compose(self, indices: Sequence[int]) -> np.ndarray:
        """Bind the items at ``indices`` into a product vector."""
        if len(indices) != self.num_factors:
            raise CodebookError(
                f"{len(indices)} indices provided for {self.num_factors} factors"
            )
        product = np.ones(self.dim, dtype=np.int32)
        for codebook, index in zip(self.codebooks, indices):
            product *= codebook.vector(index).astype(np.int32)
        return product.astype(DEFAULT_DTYPE)

    def describe(self, indices: Sequence[int]) -> Dict[str, str]:
        """Human-readable labels for a factor-index assignment."""
        return {
            codebook.name: codebook.label(index)
            for codebook, index in zip(self.codebooks, indices)
        }


# -- content addressing -------------------------------------------------------
#
# Content hashes are the "same arrays would be programmed" equivalence used
# by the serving registry (:mod:`repro.service.registry`) and the crossbar
# conductance cache (:mod:`repro.core.crossbar_backend`): two codebooks with
# identical item vectors hash identically regardless of object identity or
# the float dtype their matrices are stored in.


def codebook_fingerprint(codebook: Codebook) -> str:
    """Stable content hash of one codebook's item-vector matrix.

    Keyed on geometry plus the bipolar entries only - the codebook *name*
    is excluded, since programming an RRAM array depends on the weights,
    not on what the attribute is called.
    """
    hasher = hashlib.sha256()
    hasher.update(f"dim={codebook.dim};size={codebook.size}:".encode())
    hasher.update(np.ascontiguousarray(codebook.matrix, dtype=np.int8).tobytes())
    return hasher.hexdigest()


def codebook_set_fingerprint(codebooks: CodebookSet) -> str:
    """Stable content hash of a codebook set (geometry, names, matrices).

    Two sets with identical factor names, sizes and item vectors map to
    the same key regardless of object identity.  This is the key format of
    :class:`repro.service.registry.CodebookRegistry`.
    """
    hasher = hashlib.sha256()
    hasher.update(f"dim={codebooks.dim};factors={codebooks.num_factors}".encode())
    for codebook in codebooks:
        hasher.update(f";{codebook.name}:{codebook.size}:".encode())
        # Bipolar entries fit int8 exactly; hashing the compact form keeps
        # the key independent of the float dtype the matrix is stored in.
        hasher.update(
            np.ascontiguousarray(codebook.matrix, dtype=np.int8).tobytes()
        )
    return hasher.hexdigest()
