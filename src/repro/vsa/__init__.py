"""Holographic (vector-symbolic) algebras over hypervectors.

This package implements the computational primitives of Sec. II-A of the
H3DFact paper in two interchangeable algebras:

* **bipolar** (:mod:`repro.vsa.ops`) - the paper's MAP VSA: random -1/+1
  item vectors, binding by element-wise multiplication, bundling by
  addition with sign thresholding, permutation for sequence encoding.
* **fhrr** (:mod:`repro.vsa.fhrr`) - Fourier HRR in the style of
  Langenegger et al. 2023: unitary complex phasor vectors, binding by
  circular convolution (``ifft(fft(a) * fft(b))``), phase-preserving
  bundle normalization.

:mod:`repro.vsa.algebra` exposes both behind one :class:`Algebra`
interface selected by the library-wide ``algebra="bipolar"|"fhrr"`` knob.
"""

from repro.vsa import fhrr
from repro.vsa.algebra import (
    ALGEBRAS,
    BIPOLAR,
    FHRR,
    Algebra,
    BipolarAlgebra,
    FhrrAlgebra,
    get_algebra,
)
from repro.vsa.codebook import (
    Codebook,
    CodebookSet,
    codebook_fingerprint,
    codebook_set_fingerprint,
)
from repro.vsa.encoding import SceneEncoder, bind_factors, product_vector
from repro.vsa.ops import (
    bind,
    bundle,
    ensure_vector,
    expected_similarity_floor,
    hamming_similarity,
    inverse_permute,
    normalized_similarity,
    permute,
    random_hypervector,
    sign_with_tiebreak,
    similarity,
    unbind,
)
from repro.vsa.scene import (
    VISUAL_OBJECT_ATTRIBUTES,
    AttributeScene,
    AttributeSpec,
    ConvolutionalSceneEncoder,
)

__all__ = [
    "ALGEBRAS",
    "Algebra",
    "BipolarAlgebra",
    "FhrrAlgebra",
    "BIPOLAR",
    "FHRR",
    "get_algebra",
    "fhrr",
    "Codebook",
    "CodebookSet",
    "codebook_fingerprint",
    "codebook_set_fingerprint",
    "SceneEncoder",
    "ConvolutionalSceneEncoder",
    "bind_factors",
    "product_vector",
    "bind",
    "bundle",
    "ensure_vector",
    "expected_similarity_floor",
    "hamming_similarity",
    "inverse_permute",
    "normalized_similarity",
    "permute",
    "random_hypervector",
    "sign_with_tiebreak",
    "similarity",
    "unbind",
    "AttributeScene",
    "AttributeSpec",
    "VISUAL_OBJECT_ATTRIBUTES",
]
