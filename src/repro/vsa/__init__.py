"""Holographic (vector-symbolic) algebra over bipolar hypervectors.

This package implements the computational primitives of Sec. II-A of the
H3DFact paper: randomly generated bipolar item vectors, binding/unbinding by
element-wise multiplication, bundling (superposition) by element-wise
addition with sign thresholding, and permutation for sequence encoding.
"""

from repro.vsa.codebook import Codebook, CodebookSet
from repro.vsa.encoding import SceneEncoder, bind_factors, product_vector
from repro.vsa.ops import (
    bind,
    bundle,
    expected_similarity_floor,
    hamming_similarity,
    inverse_permute,
    normalized_similarity,
    permute,
    random_hypervector,
    sign_with_tiebreak,
    similarity,
    unbind,
)
from repro.vsa.scene import (
    VISUAL_OBJECT_ATTRIBUTES,
    AttributeScene,
    AttributeSpec,
)

__all__ = [
    "Codebook",
    "CodebookSet",
    "SceneEncoder",
    "bind_factors",
    "product_vector",
    "bind",
    "bundle",
    "expected_similarity_floor",
    "hamming_similarity",
    "inverse_permute",
    "normalized_similarity",
    "permute",
    "random_hypervector",
    "sign_with_tiebreak",
    "similarity",
    "unbind",
    "AttributeScene",
    "AttributeSpec",
    "VISUAL_OBJECT_ATTRIBUTES",
]
