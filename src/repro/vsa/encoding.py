"""Encoding attribute scenes into holographic product vectors.

:class:`SceneEncoder` owns a :class:`~repro.vsa.codebook.CodebookSet` built
from an attribute vocabulary and converts symbolic scenes to product
hypervectors (Fig. 1a) and back (via exhaustive or resonator decoding).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodebookError, DimensionError
from repro.utils.rng import RandomState, as_rng
from repro.vsa.codebook import Codebook, CodebookSet
from repro.vsa.ops import DEFAULT_DTYPE, bind
from repro.vsa.scene import AttributeScene, AttributeSpec


def bind_factors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Bind a list of factor vectors into a product vector."""
    if not vectors:
        raise DimensionError("bind_factors() requires at least one vector")
    return bind(*vectors)


def product_vector(codebooks: CodebookSet, indices: Sequence[int]) -> np.ndarray:
    """Product vector for the items at ``indices`` (alias of ``compose``)."""
    return codebooks.compose(indices)


class SceneEncoder:
    """Bidirectional map between attribute scenes and product vectors."""

    def __init__(
        self,
        attributes: Sequence[AttributeSpec],
        dim: int,
        *,
        rng: RandomState = None,
    ) -> None:
        if dim <= 0:
            raise DimensionError(f"dim must be positive, got {dim}")
        self.attributes: Tuple[AttributeSpec, ...] = tuple(attributes)
        if not self.attributes:
            raise CodebookError("SceneEncoder requires at least one attribute")
        generator = as_rng(rng)
        self.codebooks = CodebookSet(
            [
                Codebook.random(
                    spec.name, dim, spec.size, rng=generator, labels=spec.values
                )
                for spec in self.attributes
            ]
        )

    # -- properties -----------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.codebooks.dim

    @property
    def num_factors(self) -> int:
        return self.codebooks.num_factors

    # -- encoding ---------------------------------------------------------------

    def encode(self, scene: AttributeScene) -> np.ndarray:
        """Bind the scene's attribute vectors into a product vector."""
        indices = scene.indices(self.attributes)
        return self.codebooks.compose(indices)

    def encode_indices(self, indices: Sequence[int]) -> np.ndarray:
        return self.codebooks.compose(indices)

    # -- decoding ---------------------------------------------------------------

    def decode_indices(self, indices: Sequence[int]) -> AttributeScene:
        """Scene for a factor-index assignment."""
        if len(indices) != len(self.attributes):
            raise CodebookError(
                f"{len(indices)} indices for {len(self.attributes)} attributes"
            )
        assignment = {
            spec.name: spec.values[index]
            for spec, index in zip(self.attributes, indices)
        }
        return AttributeScene.from_dict(assignment)

    def decode_exhaustive(self, product: np.ndarray) -> AttributeScene:
        """Brute-force decode: try every combination, keep the best match.

        Exponential in the number of attributes - exactly the combinatorial
        search the resonator network replaces.  Kept as an oracle for tests
        and to quantify the resonator's advantage.
        """
        product = np.asarray(product)
        best_score = -np.inf
        best: Optional[List[int]] = None
        for indices in np.ndindex(*self.codebooks.sizes):
            candidate = self.codebooks.compose(indices)
            score = int(
                candidate.astype(np.int64) @ product.astype(np.int64)
            )
            if score > best_score:
                best_score = score
                best = list(indices)
        assert best is not None
        return self.decode_indices(best)

    def accuracy(
        self,
        predicted: Iterable[AttributeScene],
        truth: Iterable[AttributeScene],
    ) -> float:
        """Fraction of scenes whose *every* attribute is decoded correctly."""
        predicted = list(predicted)
        truth = list(truth)
        if len(predicted) != len(truth):
            raise DimensionError(
                f"{len(predicted)} predictions for {len(truth)} ground truths"
            )
        if not predicted:
            return 0.0
        hits = sum(p == t for p, t in zip(predicted, truth))
        return hits / len(predicted)
