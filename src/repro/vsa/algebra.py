"""Algebra abstraction: one interface over the bipolar (MAP) and FHRR VSAs.

The reproduction started bipolar-only (Sec. II-A of the paper); the FHRR
layer (:mod:`repro.vsa.fhrr`) adds circular-convolution binding in the
style of Langenegger et al. 2023.  Everything downstream - codebooks,
resonator engines, the factorization service, experiments - selects a VSA
through this module's :func:`get_algebra` rather than importing either
primitive set directly, so an ``algebra="bipolar"|"fhrr"`` knob is enough
to switch the entire stack.

The two singletons are stateless; all randomness flows through explicitly
passed generators, which is what keeps seeded replay bit-identical across
engines and service arrival orders.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RandomState
from repro.utils.validation import check_vector
from repro.vsa import fhrr, ops

#: Valid values of every ``algebra=`` knob in the library.
ALGEBRAS = ("bipolar", "fhrr")


class Algebra(abc.ABC):
    """Primitive hypervector operations of one vector-symbolic architecture."""

    #: Knob value selecting this algebra (``"bipolar"`` or ``"fhrr"``).
    name: str
    #: Storage dtype of this algebra's hypervectors.
    dtype: np.dtype

    @abc.abstractmethod
    def random_hypervector(self, dim: int, *, rng: RandomState = None) -> np.ndarray:
        """Draw one random item vector of length ``dim``."""

    @abc.abstractmethod
    def random_matrix(
        self, dim: int, size: int, *, rng: RandomState = None
    ) -> np.ndarray:
        """Draw a ``(dim, size)`` codebook matrix of random item columns."""

    @abc.abstractmethod
    def bind(self, *vectors: np.ndarray) -> np.ndarray:
        """Compose vectors into a product vector."""

    @abc.abstractmethod
    def unbind(self, product: np.ndarray, *factors: np.ndarray) -> np.ndarray:
        """Remove known ``factors`` from ``product``."""

    @abc.abstractmethod
    def bundle(
        self, vectors: Sequence[np.ndarray], *, rng: RandomState = None
    ) -> np.ndarray:
        """Superpose vectors back onto the algebra's vector manifold."""

    @abc.abstractmethod
    def normalize(self, vector: np.ndarray, *, rng: RandomState = None) -> np.ndarray:
        """Project an arbitrary vector back onto the algebra's manifold."""

    @abc.abstractmethod
    def similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        """Un-normalized similarity (the quantity the similarity MVM computes)."""

    @abc.abstractmethod
    def normalized_similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        """Similarity scaled to [-1, 1]."""

    def permute(self, vector: np.ndarray, shift: int = 1) -> np.ndarray:
        """Cyclic shift for sequence/position encoding (both algebras)."""
        return np.roll(np.asarray(vector), shift)

    def inverse_permute(self, vector: np.ndarray, shift: int = 1) -> np.ndarray:
        """Inverse of :meth:`permute` with the same ``shift``."""
        return np.roll(np.asarray(vector), -shift)

    def check_vector(self, name: str, array: np.ndarray) -> np.ndarray:
        """Validate that ``array`` belongs to this algebra's vector space."""
        return check_vector(name, array, algebra=self.name)

    @abc.abstractmethod
    def noise_sigma(self, dim: int) -> float:
        """Std-dev of the normalized similarity of two random vectors."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class BipolarAlgebra(Algebra):
    """The paper's multiply-add-permute VSA over {-1, +1} int8 vectors."""

    name = "bipolar"
    dtype = np.dtype(ops.DEFAULT_DTYPE)

    def random_hypervector(self, dim: int, *, rng: RandomState = None) -> np.ndarray:
        return ops.random_hypervector(dim, rng=rng)

    def random_matrix(
        self, dim: int, size: int, *, rng: RandomState = None
    ) -> np.ndarray:
        from repro.utils.rng import as_rng

        generator = as_rng(rng)
        return (
            2 * generator.integers(0, 2, size=(dim, size), dtype=np.int8) - 1
        ).astype(ops.DEFAULT_DTYPE)

    def bind(self, *vectors: np.ndarray) -> np.ndarray:
        return ops.bind(*vectors)

    def unbind(self, product: np.ndarray, *factors: np.ndarray) -> np.ndarray:
        return ops.unbind(product, *factors)

    def bundle(
        self, vectors: Sequence[np.ndarray], *, rng: RandomState = None
    ) -> np.ndarray:
        return ops.bundle(vectors, rng=rng)

    def normalize(self, vector: np.ndarray, *, rng: RandomState = None) -> np.ndarray:
        return ops.sign_with_tiebreak(np.asarray(vector), rng=rng)

    def similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(ops.similarity(a, b))

    def normalized_similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(ops.normalized_similarity(a, b))

    def noise_sigma(self, dim: int) -> float:
        return 1.0 / float(np.sqrt(dim))


class FhrrAlgebra(Algebra):
    """Fourier HRR: circular-convolution binding over unitary phasors."""

    name = "fhrr"
    dtype = np.dtype(fhrr.COMPLEX_DTYPE)

    def random_hypervector(self, dim: int, *, rng: RandomState = None) -> np.ndarray:
        return fhrr.random_phasor(dim, rng=rng)

    def random_matrix(
        self, dim: int, size: int, *, rng: RandomState = None
    ) -> np.ndarray:
        return fhrr.random_phasor_matrix(dim, size, rng=rng)

    def bind(self, *vectors: np.ndarray) -> np.ndarray:
        return fhrr.bind(*vectors)

    def unbind(self, product: np.ndarray, *factors: np.ndarray) -> np.ndarray:
        return fhrr.unbind(product, *factors)

    def bundle(
        self, vectors: Sequence[np.ndarray], *, rng: RandomState = None
    ) -> np.ndarray:
        # Phase-preserving normalization is deterministic; rng accepted for
        # interface symmetry with the bipolar tiebreak.
        return fhrr.bundle(vectors)

    def normalize(self, vector: np.ndarray, *, rng: RandomState = None) -> np.ndarray:
        return fhrr.spectral_normalize(vector)

    def similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        return fhrr.similarity(a, b)

    def normalized_similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        return fhrr.normalized_similarity(a, b)

    def noise_sigma(self, dim: int) -> float:
        # Re<a, b> of two random unitary vectors sums 2*dim independent
        # phase terms; the variance halves relative to bipolar.
        return 1.0 / float(np.sqrt(2.0 * dim))


#: Singleton instances - algebras are stateless, so share them freely.
BIPOLAR = BipolarAlgebra()
FHRR = FhrrAlgebra()

_BY_NAME = {BIPOLAR.name: BIPOLAR, FHRR.name: FHRR}


def get_algebra(name: str) -> Algebra:
    """Resolve an ``algebra=`` knob value to its singleton instance."""
    if isinstance(name, Algebra):
        return name
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"algebra must be one of {list(ALGEBRAS)}, got {name!r}"
        ) from None
