"""FHRR/HRR holographic algebra: circular-convolution binding via the FFT.

The paper's "holographic perceptual representations" family extends the
in-memory factorization line of Langenegger et al. 2023 (PAPERS.md), whose
resonators run on *complex phasor* vectors bound by circular convolution.
This module provides those primitives in the convention of the
``HolographicMemory`` exemplars (SNIPPETS.md): binding is computed as
``ifft(fft(a) * fft(b))`` - the O(D log D) transform-domain form of the
O(D^2) circular convolution - and keys are kept *unitary* (unit-modulus
spectrum), which makes unbinding an exact inverse.

Representation
--------------
Hypervectors are complex128 arrays stored in the spatial domain whose DFT
coefficients all have modulus 1 ("unitary" phasor vectors):

* :func:`random_phasor` draws i.i.d. uniform spectral phases and inverse
  transforms, so ``|fft(v)| == 1`` exactly;
* :func:`bind` multiplies spectra, hence preserves unit modulus;
* :func:`unbind` multiplies by the conjugate spectrum (circular
  correlation) - for unitary keys this is an *exact* inverse, which is
  what the resonator's unbinding step relies on;
* :func:`spectral_normalize` restores unit modulus after bundling while
  preserving every spectral phase (the "phase-preserving normalization").

With this convention the self-similarity ``Re<v, v>`` of a unitary vector
is exactly 1 (Parseval), and the cross-similarity of two random unitary
vectors is zero-mean with standard deviation ``1/sqrt(2 D)`` - the FHRR
analogue of the bipolar ``1/sqrt(D)`` quasi-orthogonality floor (see
:func:`repro.vsa.ops.expected_similarity_floor`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import DimensionError
from repro.utils.rng import RandomState, as_rng

#: Storage dtype of FHRR hypervectors.
COMPLEX_DTYPE = np.complex128


def random_phasor(dim: int, *, rng: RandomState = None) -> np.ndarray:
    """Draw a random unitary hypervector (unit-modulus spectrum).

    Phases are drawn i.i.d. uniform on [0, 2*pi) in the *frequency*
    domain, so the spectrum has modulus exactly 1 in every bin and
    binding/unbinding round-trips are exact.
    """
    if dim <= 0:
        raise DimensionError(f"hypervector dim must be positive, got {dim}")
    generator = as_rng(rng)
    phases = generator.uniform(0.0, 2.0 * np.pi, size=dim)
    return np.fft.ifft(np.exp(1j * phases)).astype(COMPLEX_DTYPE)


def random_phasor_matrix(
    dim: int, size: int, *, rng: RandomState = None
) -> np.ndarray:
    """``(dim, size)`` matrix of random unitary item vectors (columns).

    Column ``m`` is one codebook item; phases are drawn column-major so a
    single matrix draw equals ``size`` successive :func:`random_phasor`
    draws from the same generator.
    """
    if dim <= 0 or size <= 0:
        raise DimensionError(
            f"phasor matrix needs positive (dim, size), got ({dim}, {size})"
        )
    generator = as_rng(rng)
    columns = [random_phasor(dim, rng=generator) for _ in range(size)]
    return np.stack(columns, axis=1)


def bind(*vectors: np.ndarray) -> np.ndarray:
    """Bind by circular convolution, computed in the spectral domain.

    ``bind(a, b) == ifft(fft(a) * fft(b))`` is exactly the O(D^2) circular
    convolution ``out[n] = sum_m a[m] b[(n - m) mod D]`` evaluated in
    O(D log D) (asserted against :func:`mvm_bind_reference` by the
    property suite).  Binding unitary vectors yields a unitary vector.
    """
    if not vectors:
        raise DimensionError("bind() requires at least one vector")
    first = np.asarray(vectors[0], dtype=COMPLEX_DTYPE)
    spectrum = np.fft.fft(first)
    for vector in vectors[1:]:
        other = np.asarray(vector, dtype=COMPLEX_DTYPE)
        if other.shape != first.shape:
            raise DimensionError(
                f"cannot bind shapes {first.shape} and {other.shape}"
            )
        spectrum = spectrum * np.fft.fft(other)
    return np.fft.ifft(spectrum)


def unbind(product: np.ndarray, *factors: np.ndarray) -> np.ndarray:
    """Remove known ``factors`` from ``product`` by circular correlation.

    Multiplies by the conjugate spectra of the factors.  For unitary keys
    (``|fft(k)| == 1``) this is the exact inverse of :func:`bind`:
    ``unbind(bind(a, k), k) == a`` up to float rounding.
    """
    product = np.asarray(product, dtype=COMPLEX_DTYPE)
    spectrum = np.fft.fft(product)
    for factor in factors:
        other = np.asarray(factor, dtype=COMPLEX_DTYPE)
        if other.shape != product.shape:
            raise DimensionError(
                f"cannot unbind shapes {product.shape} and {other.shape}"
            )
        spectrum = spectrum * np.conj(np.fft.fft(other))
    return np.fft.ifft(spectrum)


def spectral_normalize(vector: np.ndarray) -> np.ndarray:
    """Project onto the unitary manifold, preserving every spectral phase.

    Divides each spectral coefficient by its modulus (zero-modulus bins
    pass through unscaled rather than dividing by zero).  This is the
    FHRR activation ``g`` and the phase-preserving step that makes
    bundles unitary again.
    """
    spectrum = np.fft.fft(np.asarray(vector, dtype=COMPLEX_DTYPE))
    modulus = np.abs(spectrum)
    modulus = np.where(modulus == 0.0, 1.0, modulus)
    return np.fft.ifft(spectrum / modulus)


def bundle(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Superpose by addition, then phase-preserving normalization.

    The sum of unitary vectors is not unitary; :func:`spectral_normalize`
    restores unit modulus while keeping the bundle maximally similar to
    each operand (only spectral magnitudes are discarded).
    """
    if len(vectors) == 0:
        raise DimensionError("bundle() requires at least one vector")
    stacked = np.stack([np.asarray(v, dtype=COMPLEX_DTYPE) for v in vectors])
    return spectral_normalize(stacked.sum(axis=0))


def similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Real part of the Hermitian inner product ``Re <a, b>``.

    For unitary vectors the self-similarity is exactly 1, so this plays
    the role the (un-normalized) integer dot product plays for bipolar
    vectors - the quantity the similarity MVM computes.
    """
    a = np.asarray(a, dtype=COMPLEX_DTYPE)
    b = np.asarray(b, dtype=COMPLEX_DTYPE)
    if a.shape != b.shape:
        raise DimensionError(f"similarity shapes differ: {a.shape} vs {b.shape}")
    return float(np.real(np.vdot(a, b)))


def normalized_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity ``Re <a, b> / (|a| |b|)``, in [-1, 1]."""
    a = np.asarray(a, dtype=COMPLEX_DTYPE)
    b = np.asarray(b, dtype=COMPLEX_DTYPE)
    if a.shape != b.shape:
        raise DimensionError(f"similarity shapes differ: {a.shape} vs {b.shape}")
    norms = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if norms == 0.0:
        return 0.0
    return float(np.real(np.vdot(a, b))) / norms


def is_unitary(vector: np.ndarray, *, atol: float = 1e-8) -> bool:
    """True if every spectral coefficient has modulus 1 (within ``atol``)."""
    spectrum = np.fft.fft(np.asarray(vector, dtype=COMPLEX_DTYPE))
    return bool(np.allclose(np.abs(spectrum), 1.0, atol=atol))


def mvm_bind_reference(
    a: np.ndarray, b: np.ndarray, *, block: int = 256
) -> np.ndarray:
    """Direct O(D^2) circular convolution - the MVM-bind oracle.

    Evaluates ``out[n] = sum_m a[m] b[(n - m) mod D]`` as blocked
    gather-then-matvec products against the circulant of ``b`` - the work
    a crossbar would perform if binding were programmed as a D x D MVM.
    Used by the property suite (FFT bind must match it exactly) and by
    ``benchmarks/bench_algebra.py`` as the baseline the FFT path must
    beat.  ``block`` bounds the materialized circulant slice so the
    reference stays usable at D = 8192 without a D^2 allocation.
    """
    a = np.asarray(a, dtype=COMPLEX_DTYPE)
    b = np.asarray(b, dtype=COMPLEX_DTYPE)
    if a.shape != b.shape or a.ndim != 1:
        raise DimensionError(
            f"mvm_bind_reference needs two 1-D vectors of equal length, "
            f"got shapes {a.shape} and {b.shape}"
        )
    dim = a.size
    out = np.empty(dim, dtype=COMPLEX_DTYPE)
    m = np.arange(dim)
    for start in range(0, dim, block):
        n = np.arange(start, min(start + block, dim))
        # (block, dim) slice of the circulant of b: row n holds b[(n-m)%D].
        rows = b[(n[:, None] - m[None, :]) % dim]
        out[n] = rows @ a
    return out


# -- resonator step kernels ---------------------------------------------------
#
# Both resonator engines (sequential and batched) call these exact
# functions per trial, which is what makes the FHRR engine-parity
# guarantee hold bitwise: identical inputs go through identical numpy call
# sequences, so the trajectories cannot diverge between engines.


def resonator_unbind(
    product: np.ndarray, estimates: Sequence[np.ndarray], skip: int
) -> np.ndarray:
    """Unbind every estimate except ``skip`` from ``product``.

    The FHRR analogue of the bipolar ``product * prod(other estimates)``
    step: one forward FFT of the product, one conjugate spectral multiply
    per other factor, one inverse FFT.
    """
    spectrum = np.fft.fft(np.asarray(product, dtype=COMPLEX_DTYPE))
    for g, estimate in enumerate(estimates):
        if g != skip:
            spectrum = spectrum * np.conj(np.fft.fft(estimate))
    return np.fft.ifft(spectrum)


def fft_flops(dim: int) -> int:
    """Deterministic flop model of one length-``dim`` complex FFT.

    Uses the standard ``5 D log2 D`` radix-2 account (exact for powers of
    two, a stable deterministic convention otherwise) so profiler totals
    stay machine-independent.
    """
    if dim <= 1:
        return 0
    return int(5 * dim * math.log2(dim))


def unbind_flops(dim: int, num_factors: int) -> int:
    """Exact flop account of one :func:`resonator_unbind` call.

    ``num_factors`` forward FFTs (product + each non-skipped estimate
    re-transformed), one inverse FFT, and ``num_factors - 1`` spectral
    conjugate multiplies at 6 real flops per complex multiply.
    """
    transforms = num_factors + 1
    return transforms * fft_flops(dim) + (num_factors - 1) * 6 * dim


def phase_activation_flops(dim: int) -> int:
    """Exact flop account of one spectral phase normalization.

    One forward and one inverse FFT plus per-bin modulus + divide
    (modulus: 2 mult + 1 add + 1 sqrt ~ 4; complex-by-real divide: 2),
    giving ``2 * fft + 6 D``.
    """
    return 2 * fft_flops(dim) + 6 * dim
