"""Attribute scenes: symbolic descriptions of composed objects.

The paper's running example (Fig. 1a) encodes a visual object with four
attributes - shape, color, vertical position, horizontal position.  An
:class:`AttributeSpec` describes the attribute vocabulary; an
:class:`AttributeScene` is one concrete assignment (e.g. *blue triangle,
top-left*) which :mod:`repro.vsa.encoding` turns into a product hypervector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import CodebookError
from repro.utils.rng import RandomState, as_rng


@dataclass(frozen=True)
class AttributeSpec:
    """Vocabulary of one attribute: a name plus its possible values."""

    name: str
    values: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise CodebookError(f"attribute {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise CodebookError(
                f"attribute {self.name!r} has duplicate values: {self.values}"
            )

    @property
    def size(self) -> int:
        return len(self.values)

    def index_of(self, value: str) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise CodebookError(
                f"attribute {self.name!r} has no value {value!r}; "
                f"valid values: {list(self.values)}"
            ) from None


#: The paper's running visual-object vocabulary (Fig. 1a).
VISUAL_OBJECT_ATTRIBUTES: Tuple[AttributeSpec, ...] = (
    AttributeSpec("shape", ("circle", "triangle", "square", "diamond")),
    AttributeSpec("color", ("blue", "red", "green", "yellow")),
    AttributeSpec("vertical", ("top", "bottom")),
    AttributeSpec("horizontal", ("left", "right")),
)


@dataclass(frozen=True)
class AttributeScene:
    """One object: an assignment of a value to every attribute."""

    assignment: Tuple[Tuple[str, str], ...]

    @classmethod
    def from_dict(cls, assignment: Dict[str, str]) -> "AttributeScene":
        return cls(tuple(sorted(assignment.items())))

    @classmethod
    def random(
        cls,
        attributes: Sequence[AttributeSpec],
        *,
        rng: RandomState = None,
    ) -> "AttributeScene":
        """Draw a uniformly random assignment over ``attributes``."""
        generator = as_rng(rng)
        chosen = {
            spec.name: spec.values[int(generator.integers(0, spec.size))]
            for spec in attributes
        }
        return cls.from_dict(chosen)

    def as_dict(self) -> Dict[str, str]:
        return dict(self.assignment)

    def value(self, attribute: str) -> str:
        mapping = self.as_dict()
        if attribute not in mapping:
            raise CodebookError(
                f"scene has no attribute {attribute!r}; has {sorted(mapping)}"
            )
        return mapping[attribute]

    def indices(self, attributes: Sequence[AttributeSpec]) -> List[int]:
        """Per-attribute value indices in the order of ``attributes``."""
        return [spec.index_of(self.value(spec.name)) for spec in attributes]

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.assignment)
        return f"Scene({parts})"
