"""Attribute scenes: symbolic descriptions of composed objects.

The paper's running example (Fig. 1a) encodes a visual object with four
attributes - shape, color, vertical position, horizontal position.  An
:class:`AttributeSpec` describes the attribute vocabulary; an
:class:`AttributeScene` is one concrete assignment (e.g. *blue triangle,
top-left*) which :mod:`repro.vsa.encoding` turns into a product hypervector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CodebookError, DimensionError
from repro.utils.rng import RandomState, as_rng


@dataclass(frozen=True)
class AttributeSpec:
    """Vocabulary of one attribute: a name plus its possible values."""

    name: str
    values: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise CodebookError(f"attribute {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise CodebookError(
                f"attribute {self.name!r} has duplicate values: {self.values}"
            )

    @property
    def size(self) -> int:
        return len(self.values)

    def index_of(self, value: str) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise CodebookError(
                f"attribute {self.name!r} has no value {value!r}; "
                f"valid values: {list(self.values)}"
            ) from None


#: The paper's running visual-object vocabulary (Fig. 1a).
VISUAL_OBJECT_ATTRIBUTES: Tuple[AttributeSpec, ...] = (
    AttributeSpec("shape", ("circle", "triangle", "square", "diamond")),
    AttributeSpec("color", ("blue", "red", "green", "yellow")),
    AttributeSpec("vertical", ("top", "bottom")),
    AttributeSpec("horizontal", ("left", "right")),
)


@dataclass(frozen=True)
class AttributeScene:
    """One object: an assignment of a value to every attribute."""

    assignment: Tuple[Tuple[str, str], ...]

    @classmethod
    def from_dict(cls, assignment: Dict[str, str]) -> "AttributeScene":
        return cls(tuple(sorted(assignment.items())))

    @classmethod
    def random(
        cls,
        attributes: Sequence[AttributeSpec],
        *,
        rng: RandomState = None,
    ) -> "AttributeScene":
        """Draw a uniformly random assignment over ``attributes``."""
        generator = as_rng(rng)
        chosen = {
            spec.name: spec.values[int(generator.integers(0, spec.size))]
            for spec in attributes
        }
        return cls.from_dict(chosen)

    def as_dict(self) -> Dict[str, str]:
        return dict(self.assignment)

    def value(self, attribute: str) -> str:
        mapping = self.as_dict()
        if attribute not in mapping:
            raise CodebookError(
                f"scene has no attribute {attribute!r}; has {sorted(mapping)}"
            )
        return mapping[attribute]

    def indices(self, attributes: Sequence[AttributeSpec]) -> List[int]:
        """Per-attribute value indices in the order of ``attributes``."""
        return [spec.index_of(self.value(spec.name)) for spec in attributes]

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.assignment)
        return f"Scene({parts})"


class ConvolutionalSceneEncoder:
    """Algebra-generic scene and trajectory encoder.

    The FHRR counterpart of :class:`repro.vsa.encoding.SceneEncoder`: one
    codebook per attribute, scenes encoded by *binding* the chosen item
    vectors (circular convolution for FHRR, element-wise multiply for
    bipolar), and trajectories - ordered sequences of scenes - encoded by
    permutation position tags:

    .. math:: t = \\bigotimes_k \\rho^k(\\mathrm{encode}(s_k))

    where ``rho`` is the cyclic shift.  Because permutation commutes with
    neither algebra's binding, each step occupies its own protected
    subspace; :meth:`recover_step` inverts the construction *exactly*
    (bit-exact for bipolar, to float rounding for FHRR), which the
    property suite asserts for both algebras.
    """

    def __init__(
        self,
        attributes: Sequence[AttributeSpec],
        dim: int,
        *,
        algebra: str = "fhrr",
        rng: RandomState = None,
    ) -> None:
        # Deferred imports keep repro.vsa.scene importable on its own
        # (codebook imports nothing from this module's encoder half).
        from repro.vsa.algebra import get_algebra
        from repro.vsa.codebook import CodebookSet

        if not attributes:
            raise CodebookError("encoder requires at least one attribute")
        self.attributes: Tuple[AttributeSpec, ...] = tuple(attributes)
        self.algebra = get_algebra(algebra)
        self.codebooks = CodebookSet.random(
            dim,
            [spec.size for spec in self.attributes],
            names=[spec.name for spec in self.attributes],
            rng=rng,
            algebra=self.algebra.name,
        )

    @property
    def dim(self) -> int:
        return self.codebooks.dim

    def encode(self, scene: AttributeScene) -> np.ndarray:
        """Bind the scene's attribute items into one product vector."""
        indices = scene.indices(self.attributes)
        return self.codebooks.compose(indices)

    def decode_step_attribute(
        self,
        recovered: np.ndarray,
        scene: AttributeScene,
        attribute: str,
    ) -> str:
        """Clean up one attribute of a recovered single-scene vector.

        Unbinds the *other* attributes' items (known from ``scene``) and
        picks the most similar item in ``attribute``'s codebook - the
        query-with-partial-knowledge read-out of Fig. 1a.
        """
        target = None
        others = []
        for spec, codebook in zip(self.attributes, self.codebooks):
            index = spec.index_of(scene.value(spec.name))
            if spec.name == attribute:
                target = (spec, codebook)
            else:
                others.append(codebook.vector(index))
        if target is None:
            raise CodebookError(
                f"encoder has no attribute {attribute!r}; "
                f"has {[spec.name for spec in self.attributes]}"
            )
        spec, codebook = target
        query = (
            self.algebra.unbind(recovered, *others) if others else recovered
        )
        sims = codebook.similarities(np.asarray(query, dtype=self.algebra.dtype))
        return spec.values[int(np.argmax(sims))]

    def encode_trajectory(self, scenes: Sequence[AttributeScene]) -> np.ndarray:
        """Bind position-tagged scene encodings into one trajectory vector."""
        if not scenes:
            raise DimensionError("trajectory requires at least one scene")
        tagged = [
            self.algebra.permute(self.encode(scene), step)
            for step, scene in enumerate(scenes)
        ]
        return self.algebra.bind(*tagged)

    def recover_step(
        self,
        trajectory: np.ndarray,
        scenes: Sequence[AttributeScene],
        step: int,
    ) -> np.ndarray:
        """Recover the scene vector at ``step`` given the other scenes.

        Unbinds every *other* position-tagged encoding from the trajectory,
        then removes position ``step``'s permutation tag.  The result
        equals ``encode(scenes[step])`` exactly (up to float rounding for
        FHRR), demonstrating the exact invertibility of the encoding.
        """
        if not 0 <= step < len(scenes):
            raise DimensionError(
                f"step {step} out of range for trajectory of {len(scenes)} scenes"
            )
        others = [
            self.algebra.permute(self.encode(scene), k)
            for k, scene in enumerate(scenes)
            if k != step
        ]
        residue = (
            self.algebra.unbind(trajectory, *others)
            if others
            else np.asarray(trajectory)
        )
        return self.algebra.inverse_permute(residue, step)
