"""Primitive operations on bipolar hypervectors.

Hypervectors are 1-D numpy arrays with entries in ``{-1, +1}`` (dtype int8 by
default).  Operations follow the multiply-add-permute (MAP) vector-symbolic
architecture used by the paper:

* :func:`bind` / :func:`unbind` - element-wise multiplication.  Binding is
  its own inverse in bipolar space, which is what makes the resonator's
  "unbinding" step an XNOR in hardware (Sec. III-B).
* :func:`bundle` - element-wise addition followed by a sign threshold,
  producing the superposition of several vectors.
* :func:`permute` - cyclic shift, used to encode sequence positions.
* :func:`similarity` - un-normalized dot product, the quantity the RRAM
  similarity tier computes (Sec. IV-A step II).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_bipolar, check_vector

DEFAULT_DTYPE = np.int8


def random_hypervector(
    dim: int,
    *,
    rng: RandomState = None,
    dtype: np.dtype = DEFAULT_DTYPE,
) -> np.ndarray:
    """Draw a dense random bipolar hypervector of length ``dim``.

    Random bipolar vectors in high dimension are quasi-orthogonal: the
    expected normalized similarity of two independent draws is 0 with
    standard deviation ``1/sqrt(dim)``, which is what lets codebooks encode
    separable features (Sec. II-A).
    """
    if dim <= 0:
        raise DimensionError(f"hypervector dim must be positive, got {dim}")
    generator = as_rng(rng)
    return (2 * generator.integers(0, 2, size=dim, dtype=np.int8) - 1).astype(dtype)


def bind(*vectors: np.ndarray) -> np.ndarray:
    """Bind hypervectors via element-wise multiplication.

    Binding composes attributes into a product vector; e.g. an object is
    ``shape ⊙ color ⊙ v_pos ⊙ h_pos``.  The result is dissimilar to every
    operand, which is what makes factorization a search problem.
    """
    if not vectors:
        raise DimensionError("bind() requires at least one vector")
    result = np.asarray(vectors[0]).copy()
    for vector in vectors[1:]:
        other = np.asarray(vector)
        if other.shape != result.shape:
            raise DimensionError(
                f"cannot bind shapes {result.shape} and {other.shape}"
            )
        result *= other
    return result


def unbind(product: np.ndarray, *factors: np.ndarray) -> np.ndarray:
    """Remove known ``factors`` from ``product``.

    In bipolar space binding is an involution (``x ⊙ x = 1``), so unbinding
    is just binding with the same vectors.  This is the step the digital
    tier-1 executes with XNOR gates.
    """
    return bind(product, *factors)


def sign_with_tiebreak(
    values: np.ndarray,
    *,
    rng: RandomState = None,
    dtype: np.dtype = DEFAULT_DTYPE,
) -> np.ndarray:
    """Sign threshold mapping to {-1, +1}; zeros break randomly.

    A plain ``np.sign`` maps 0 to 0, leaving the vector outside bipolar
    space.  Ties occur whenever an even number of vectors is bundled, so the
    resonator's activation must resolve them; random resolution matches the
    behaviour of an analog comparator sitting exactly at threshold.
    """
    values = np.asarray(values)
    result = np.sign(values).astype(dtype)
    zeros = result == 0
    if np.any(zeros):
        generator = as_rng(rng)
        fills = 2 * generator.integers(0, 2, size=int(zeros.sum()), dtype=np.int8) - 1
        result[zeros] = fills.astype(dtype)
    return result


def bundle(
    vectors: Sequence[np.ndarray],
    *,
    rng: RandomState = None,
    dtype: np.dtype = DEFAULT_DTYPE,
) -> np.ndarray:
    """Superpose ``vectors`` by element-wise addition and sign threshold."""
    if len(vectors) == 0:
        raise DimensionError("bundle() requires at least one vector")
    stacked = np.stack([np.asarray(v, dtype=np.int32) for v in vectors])
    sums = stacked.sum(axis=0)
    return sign_with_tiebreak(sums, rng=rng, dtype=dtype)


def permute(vector: np.ndarray, shift: int = 1) -> np.ndarray:
    """Cyclic shift; protects against cross-talk when encoding sequences."""
    return np.roll(np.asarray(vector), shift)


def inverse_permute(vector: np.ndarray, shift: int = 1) -> np.ndarray:
    """Inverse of :func:`permute` with the same ``shift``."""
    return np.roll(np.asarray(vector), -shift)


def similarity(a: np.ndarray, b: np.ndarray) -> int:
    """Un-normalized dot product between two hypervectors."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise DimensionError(f"similarity shapes differ: {a.shape} vs {b.shape}")
    return int(np.dot(a, b))


def normalized_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Dot product scaled to [-1, 1] by the dimension."""
    a = np.asarray(a)
    return similarity(a, b) / a.size


def hamming_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of matching components, in [0, 1]."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise DimensionError(f"hamming shapes differ: {a.shape} vs {b.shape}")
    return float(np.mean(a == b))


def expected_similarity_floor(
    dim: int, num_vectors: int = 1, *, algebra: str = "bipolar"
) -> float:
    """3-sigma noise floor of normalized similarity between random vectors.

    Useful to decide whether a measured similarity is meaningful: two random
    bipolar vectors of dimension ``dim`` have normalized similarity with
    sigma ``1/sqrt(dim)``; for FHRR phasor vectors the real-part inner
    product averages twice as many independent terms, so sigma tightens to
    ``1/sqrt(2 dim)``.  With ``num_vectors`` comparisons the max grows
    roughly with ``sqrt(2 log num_vectors)``.
    """
    if dim <= 0:
        raise DimensionError(f"dim must be positive, got {dim}")
    if algebra == "bipolar":
        sigma = 1.0 / np.sqrt(dim)
    elif algebra == "fhrr":
        sigma = 1.0 / np.sqrt(2.0 * dim)
    else:
        raise ConfigurationError(
            f"algebra must be 'bipolar' or 'fhrr', got {algebra!r}"
        )
    spread = np.sqrt(2.0 * np.log(max(num_vectors, 2)))
    return float(sigma * (3.0 + spread))


def ensure_bipolar(name: str, vector: np.ndarray) -> np.ndarray:
    """Re-export of :func:`repro.utils.validation.check_bipolar` for callers."""
    return check_bipolar(name, vector)


def ensure_vector(
    name: str, vector: np.ndarray, *, algebra: str = "bipolar"
) -> np.ndarray:
    """Algebra-aware validation (re-export of ``check_vector``).

    Bipolar callers get the classic -1/+1 check; FHRR callers get a
    complex-phasor check instead of a misleading bipolar complaint.
    """
    return check_vector(name, vector, algebra=algebra)
