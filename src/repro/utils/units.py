"""Unit helpers.

The hardware models internally use SI base units (meters, joules, seconds,
watts, kelvin).  These helpers make call sites read like the paper: areas in
mm^2, pitches in um, energies in fJ/pJ, frequencies in MHz.
"""

from __future__ import annotations

# -- length ----------------------------------------------------------------


def nm(value: float) -> float:
    """Nanometers to meters."""
    return value * 1e-9


def um(value: float) -> float:
    """Micrometers to meters."""
    return value * 1e-6


def mm(value: float) -> float:
    """Millimeters to meters."""
    return value * 1e-3


# -- area -------------------------------------------------------------------


def um2(value: float) -> float:
    """Square micrometers to square meters."""
    return value * 1e-12


def mm2(value: float) -> float:
    """Square millimeters to square meters."""
    return value * 1e-6


def m2_to_mm2(value: float) -> float:
    """Square meters to square millimeters."""
    return value * 1e6


def m2_to_um2(value: float) -> float:
    """Square meters to square micrometers."""
    return value * 1e12


# -- energy -----------------------------------------------------------------


def fj(value: float) -> float:
    """Femtojoules to joules."""
    return value * 1e-15


def pj(value: float) -> float:
    """Picojoules to joules."""
    return value * 1e-12


def nj(value: float) -> float:
    """Nanojoules to joules."""
    return value * 1e-9


# -- frequency ---------------------------------------------------------------

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


# -- temperature --------------------------------------------------------------

_ZERO_CELSIUS_IN_KELVIN = 273.15


def celsius_to_kelvin(value: float) -> float:
    return value + _ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(value: float) -> float:
    return value - _ZERO_CELSIUS_IN_KELVIN


# -- formatting ---------------------------------------------------------------

_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def format_engineering(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering prefix, e.g. ``1.52 TOPS``."""
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
