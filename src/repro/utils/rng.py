"""Deterministic random-number-generator plumbing.

All stochastic components of the library (random codebooks, RRAM noise,
ADC dither, workload generators) accept either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion logic here keeps
every experiment reproducible from a single integer seed while still letting
callers share one generator across components when they want correlated
streams.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]

_DERIVE_MODULUS = 2**63 - 25  # large prime; keeps derived seeds in int64 range


def as_rng(seed: RandomState = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces an OS-seeded generator, an ``int`` produces a
    deterministic generator, and an existing generator is returned as-is so
    that components can share a stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def fresh_seed(rng: np.random.Generator) -> int:
    """Draw a new 63-bit seed from ``rng`` suitable for child generators."""
    return int(rng.integers(0, _DERIVE_MODULUS))


def derive_rng(seed: RandomState, stream: str) -> np.random.Generator:
    """Derive an independent generator for a named ``stream``.

    Components that need several independent noise sources (e.g. programming
    noise vs. read noise) derive one generator per stream name so that
    changing how often one stream is sampled does not perturb the others.
    """
    if isinstance(seed, np.random.Generator):
        # Split the provided generator deterministically.
        return np.random.default_rng(fresh_seed(seed))
    mix = np.random.SeedSequence(
        entropy=0 if seed is None else int(seed),
        spawn_key=tuple(ord(ch) for ch in stream),
    )
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(mix)
