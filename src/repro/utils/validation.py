"""Validation helpers shared across the library.

These raise :class:`repro.errors` exceptions with actionable messages rather
than letting numpy broadcast mistakes propagate as cryptic ``ValueError``s.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, DimensionError


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Ensure a scalar parameter is positive (or non-negative)."""
    if allow_zero:
        if value < 0:
            raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Ensure a scalar lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_shape(
    name: str, array: np.ndarray, expected: Tuple[int, ...]
) -> np.ndarray:
    """Ensure ``array.shape == expected``."""
    if tuple(array.shape) != tuple(expected):
        raise DimensionError(
            f"{name} has shape {tuple(array.shape)}, expected {tuple(expected)}"
        )
    return array


def check_bipolar(name: str, array: np.ndarray) -> np.ndarray:
    """Ensure every element of ``array`` is -1 or +1."""
    values = np.asarray(array)
    if values.size and not np.all(np.isin(values, (-1, 1))):
        bad = np.unique(values[~np.isin(values, (-1, 1))])[:5]
        raise DimensionError(
            f"{name} must be bipolar (-1/+1); found values {bad.tolist()}"
        )
    return values


def check_choice(name: str, value: str, choices: Sequence[str]) -> str:
    """Ensure a string option is one of ``choices``."""
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {sorted(choices)}, got {value!r}"
        )
    return value
