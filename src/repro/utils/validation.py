"""Validation helpers shared across the library.

These raise :class:`repro.errors` exceptions with actionable messages rather
than letting numpy broadcast mistakes propagate as cryptic ``ValueError``s.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, DimensionError


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Ensure a scalar parameter is positive (or non-negative)."""
    if allow_zero:
        if value < 0:
            raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Ensure a scalar lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_shape(
    name: str, array: np.ndarray, expected: Tuple[int, ...]
) -> np.ndarray:
    """Ensure ``array.shape == expected``."""
    if tuple(array.shape) != tuple(expected):
        raise DimensionError(
            f"{name} has shape {tuple(array.shape)}, expected {tuple(expected)}"
        )
    return array


def check_bipolar(name: str, array: np.ndarray) -> np.ndarray:
    """Ensure every element of ``array`` is -1 or +1."""
    values = np.asarray(array)
    if np.issubdtype(values.dtype, np.complexfloating):
        # A complex array can never be bipolar; saying so directly beats
        # printing a page of complex "offending values".
        raise DimensionError(
            f"{name} is complex-valued; the bipolar (MAP) algebra expects "
            "-1/+1 entries - did you mean algebra='fhrr'?"
        )
    if values.size and not np.all(np.isin(values, (-1, 1))):
        bad = np.unique(values[~np.isin(values, (-1, 1))])[:5]
        raise DimensionError(
            f"{name} must be bipolar (-1/+1); found values {bad.tolist()}"
        )
    return values


def check_complex_phasor(name: str, array: np.ndarray) -> np.ndarray:
    """Ensure ``array`` is a finite complex array (an FHRR phasor vector).

    FHRR/HRR hypervectors are complex-valued with unit-modulus spectra;
    the cheap structural checks here (complex dtype, finite entries) catch
    the common mix-ups - handing a bipolar int8 vector to the phasor
    resonator, or propagating NaNs through a spectral division - without
    paying an FFT per validation.
    """
    values = np.asarray(array)
    if not np.issubdtype(values.dtype, np.complexfloating):
        raise DimensionError(
            f"{name} has dtype {values.dtype}; the FHRR algebra expects a "
            "complex phasor vector - did you mean algebra='bipolar'?"
        )
    if values.size and not np.all(np.isfinite(values)):
        raise DimensionError(f"{name} contains non-finite (NaN/inf) values")
    return values


def check_vector(name: str, array: np.ndarray, algebra: str = "bipolar") -> np.ndarray:
    """Algebra-aware hypervector validation.

    Dispatches to :func:`check_bipolar` for the MAP algebra and
    :func:`check_complex_phasor` for FHRR, so call sites that serve both
    algebras (problems, service requests, batched products) raise the
    right error instead of a misleading bipolar complaint on complex data.
    """
    if algebra == "bipolar":
        return check_bipolar(name, array)
    if algebra == "fhrr":
        return check_complex_phasor(name, array)
    raise ConfigurationError(
        f"algebra must be 'bipolar' or 'fhrr', got {algebra!r}"
    )


def check_choice(name: str, value: str, choices: Sequence[str]) -> str:
    """Ensure a string option is one of ``choices``."""
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {sorted(choices)}, got {value!r}"
        )
    return value
