"""Shared utilities: RNG handling, unit conversion, validation helpers."""

from repro.utils.rng import RandomState, as_rng, derive_rng, fresh_seed
from repro.utils.units import (
    GHZ,
    KHZ,
    MHZ,
    celsius_to_kelvin,
    fj,
    format_engineering,
    kelvin_to_celsius,
    mm2,
    nj,
    nm,
    pj,
    um,
    um2,
)
from repro.utils.validation import (
    check_bipolar,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "RandomState",
    "as_rng",
    "derive_rng",
    "fresh_seed",
    "GHZ",
    "KHZ",
    "MHZ",
    "celsius_to_kelvin",
    "fj",
    "format_engineering",
    "kelvin_to_celsius",
    "mm2",
    "nj",
    "nm",
    "pj",
    "um",
    "um2",
    "check_bipolar",
    "check_positive",
    "check_probability",
    "check_shape",
]
