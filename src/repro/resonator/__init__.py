"""Resonator networks for factorizing holographic product vectors.

Implements the baseline deterministic resonator network of Frady et al.
(Neural Computation 2020) used as the paper's baseline, plus the stochastic
variants (similarity noise, ADC quantization) that model H3DFact's in-memory
execution, with convergence / limit-cycle instrumentation and an op-level
profiler used to reproduce Fig. 1c.
"""

from repro.resonator.activations import (
    Activation,
    IdentityActivation,
    PhaseActivation,
    SignActivation,
    make_activation,
)
from repro.resonator.backends import (
    CodebookBatch,
    ExactBackend,
    MVMBackend,
    NoisySimilarityBackend,
    PhasorBackend,
    QuantizedSimilarityBackend,
    codebooks_per_trial,
)
from repro.resonator.batched import BatchedResonatorNetwork
from repro.resonator.convergence import (
    ConvergenceMonitor,
    CycleDetector,
    Outcome,
)
from repro.resonator.metrics import (
    BatchStatistics,
    accuracy_curve,
    iterations_to_accuracy,
    operational_capacity,
    summarize,
)
from repro.resonator.network import (
    FactorizationProblem,
    FactorizationResult,
    ResonatorNetwork,
)
from repro.resonator.batch import (
    BatchResult,
    batched_network_for,
    engine_from_environment,
    factorize_batch,
    factorize_problems,
    generate_problems,
)
from repro.resonator.replay import (
    GeometryKey,
    geometry_key,
    group_by_geometry,
    run_group,
    run_problems_grouped,
    seeded_initial_estimates,
)
from repro.resonator.profiler import OpCounts, ResonatorProfiler, StepTiming
from repro.resonator.stochastic import (
    RectifiedBackend,
    StochasticThresholdBackend,
    ThresholdPolicy,
)

__all__ = [
    "Activation",
    "IdentityActivation",
    "PhaseActivation",
    "SignActivation",
    "make_activation",
    "CodebookBatch",
    "ExactBackend",
    "MVMBackend",
    "NoisySimilarityBackend",
    "PhasorBackend",
    "QuantizedSimilarityBackend",
    "codebooks_per_trial",
    "BatchedResonatorNetwork",
    "ConvergenceMonitor",
    "CycleDetector",
    "Outcome",
    "BatchStatistics",
    "accuracy_curve",
    "iterations_to_accuracy",
    "operational_capacity",
    "summarize",
    "FactorizationProblem",
    "FactorizationResult",
    "ResonatorNetwork",
    "BatchResult",
    "batched_network_for",
    "engine_from_environment",
    "factorize_batch",
    "factorize_problems",
    "generate_problems",
    "GeometryKey",
    "geometry_key",
    "group_by_geometry",
    "run_group",
    "run_problems_grouped",
    "seeded_initial_estimates",
    "OpCounts",
    "ResonatorProfiler",
    "StepTiming",
    "RectifiedBackend",
    "StochasticThresholdBackend",
    "ThresholdPolicy",
]
