"""Accuracy / capacity metrics over collections of factorization runs.

Table II reports, per problem size, the factorization *accuracy* and the
*number of iterations required to reach at least 99 % accuracy*.  These
helpers turn a batch of :class:`~repro.resonator.network.FactorizationResult`
records into those numbers, and estimate *operational capacity* - the
largest search space solvable at a target accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.resonator.network import FactorizationResult


@dataclass(frozen=True)
class BatchStatistics:
    """Summary of a batch of trials at one problem size."""

    num_trials: int
    accuracy: float
    solved_fraction: float
    mean_iterations: float
    median_iterations: float
    #: Iterations needed so that ``target_accuracy`` of trials are correct;
    #: None if the batch never reaches the target ("Fail" in Table II).
    iterations_to_target: Optional[float]
    limit_cycle_fraction: float
    converged_fraction: float

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular reports."""
        return {
            "trials": self.num_trials,
            "accuracy_pct": round(100 * self.accuracy, 1),
            "mean_iterations": round(self.mean_iterations, 1),
            "iterations_to_target": (
                None
                if self.iterations_to_target is None
                else round(self.iterations_to_target, 1)
            ),
            "limit_cycle_pct": round(100 * self.limit_cycle_fraction, 1),
        }


def summarize(
    results: Sequence[FactorizationResult],
    *,
    target_accuracy: float = 0.99,
) -> BatchStatistics:
    """Aggregate a batch of results into :class:`BatchStatistics`."""
    if not results:
        raise ConfigurationError("summarize() requires at least one result")
    correct_flags = [bool(r.correct) for r in results]
    accuracy = float(np.mean(correct_flags))
    solved = float(np.mean([r.solved for r in results]))
    iterations = np.array([r.iterations for r in results], dtype=float)
    limit_cycles = float(np.mean([r.outcome.value == "limit_cycle" for r in results]))
    converged = float(np.mean([r.converged for r in results]))
    return BatchStatistics(
        num_trials=len(results),
        accuracy=accuracy,
        solved_fraction=solved,
        mean_iterations=float(iterations.mean()),
        median_iterations=float(np.median(iterations)),
        iterations_to_target=iterations_to_accuracy(
            results, target_accuracy=target_accuracy
        ),
        limit_cycle_fraction=limit_cycles,
        converged_fraction=converged,
    )


def iterations_to_accuracy(
    results: Sequence[FactorizationResult],
    *,
    target_accuracy: float = 0.99,
) -> Optional[float]:
    """Iterations after which ``target_accuracy`` of trials are correct.

    Table II's "Number of Iterations" column: for each trial we know the
    sweep at which the decode first became (and stayed) correct; the batch
    reaches the target accuracy at the ``target_accuracy`` quantile of that
    distribution.  Returns ``None`` ("Fail") when fewer than the target
    fraction of trials ever became correct.
    """
    if not results:
        return None
    if not 0.0 < target_accuracy <= 1.0:
        raise ConfigurationError(
            f"target_accuracy must be in (0, 1], got {target_accuracy}"
        )
    first_correct: List[float] = []
    for result in results:
        if result.correct and result.first_correct_iteration is not None:
            first_correct.append(float(result.first_correct_iteration))
        else:
            first_correct.append(np.inf)
    ordered = np.sort(np.array(first_correct))
    # Index of the trial that brings the batch to the target accuracy.
    needed = int(np.ceil(target_accuracy * len(ordered))) - 1
    needed = min(max(needed, 0), len(ordered) - 1)
    value = ordered[needed]
    if not np.isfinite(value):
        return None
    return float(value)


def operational_capacity(
    sweep: Dict[int, BatchStatistics],
    *,
    target_accuracy: float = 0.99,
) -> int:
    """Largest search-space size whose batch meets ``target_accuracy``.

    ``sweep`` maps problem size (``M^F``) to its statistics.  Returns 0 when
    no size meets the target.
    """
    capacity = 0
    for size in sorted(sweep):
        stats = sweep[size]
        if stats.accuracy >= target_accuracy:
            capacity = max(capacity, size)
    return capacity


def accuracy_curve(
    results: Sequence[FactorizationResult],
    max_iterations: int,
) -> np.ndarray:
    """Accuracy as a function of iteration budget (for Fig. 6a/6b curves).

    Entry ``i`` is the fraction of trials whose decode was correct by
    iteration ``i + 1``.
    """
    if max_iterations <= 0:
        raise ConfigurationError(
            f"max_iterations must be positive, got {max_iterations}"
        )
    curve = np.zeros(max_iterations, dtype=float)
    if not results:
        return curve
    for result in results:
        if result.correct and result.first_correct_iteration is not None:
            start = min(result.first_correct_iteration, max_iterations) - 1
            curve[start:] += 1.0
    return curve / len(results)
