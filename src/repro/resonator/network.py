"""The resonator network: state-space factorization of product vectors.

Implements the update equations of Sec. II-B.  For each factor ``f`` the
network (1) *unbinds* the other estimates from the product vector,
(2) computes the *similarity* of the unbound vector against the codebook,
(3) *projects* the similarity back to vector space and (4) applies the
activation ``g``.  Estimates are updated in sequence within a sweep
(asynchronous update), matching the tier-pipelined hardware dataflow where
each factor's MVMs execute one after another (Fig. 3, steps I-IV).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.resonator.activations import Activation, PhaseActivation, SignActivation
from repro.resonator.backends import ExactBackend, MVMBackend, PhasorBackend
from repro.resonator.convergence import ConvergenceMonitor, Outcome, state_digest
from repro.resonator.profiler import ResonatorProfiler
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_vector
from repro.vsa import fhrr
from repro.vsa.codebook import CodebookSet
from repro.vsa.ops import DEFAULT_DTYPE, sign_with_tiebreak


def initial_factor_estimate(
    codebook, init: str, rng: np.random.Generator
) -> np.ndarray:
    """One factor's initial state: superposition (or random) per codebook.

    The single source of the init recipe shared by the sequential network,
    the batched network, and the service's seeded replay
    (:func:`repro.resonator.replay.seeded_initial_estimates`) - their
    bit-identical-trajectory guarantees require the three call sites to
    stay in lockstep.
    """
    if codebook.algebra == "fhrr":
        if init == "random":
            return fhrr.random_phasor(codebook.dim, rng=rng)
        # Superposition: phase-preserving normalization of the item sum
        # (deterministic - phasors have no zero-sum ties to break).
        return fhrr.spectral_normalize(codebook.matrix.sum(axis=1))
    if init == "random":
        return (
            2 * rng.integers(0, 2, size=codebook.dim, dtype=np.int8) - 1
        ).astype(DEFAULT_DTYPE)
    sums = codebook.matrix.astype(np.int32).sum(axis=1)
    return sign_with_tiebreak(sums, rng=rng)


@dataclass(frozen=True)
class FactorizationProblem:
    """A product vector together with the codebooks that generated it.

    ``true_indices`` is optional: perception workloads hand the factorizer a
    *noisy* product vector whose ground truth lives outside the codebooks.
    """

    codebooks: CodebookSet
    product: np.ndarray
    true_indices: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        product = np.asarray(self.product)
        if product.shape != (self.codebooks.dim,):
            raise DimensionError(
                f"product shape {product.shape} does not match codebook dim "
                f"({self.codebooks.dim},)"
            )
        check_vector("product", product, algebra=self.codebooks.algebra)
        if self.true_indices is not None:
            if len(self.true_indices) != self.codebooks.num_factors:
                raise ConfigurationError(
                    f"{len(self.true_indices)} true indices for "
                    f"{self.codebooks.num_factors} factors"
                )
            for codebook, index in zip(self.codebooks, self.true_indices):
                if not 0 <= index < codebook.size:
                    raise ConfigurationError(
                        f"true index {index} out of range for codebook "
                        f"{codebook.name!r} (size {codebook.size})"
                    )

    @classmethod
    def random(
        cls,
        dim: int,
        num_factors: int,
        codebook_size: int,
        *,
        rng: RandomState = None,
        algebra: str = "bipolar",
    ) -> "FactorizationProblem":
        """Random codebooks and a random ground-truth composition.

        This is the Table II workload generator: ``F = num_factors``
        attributes, each with ``M = codebook_size`` code vectors.
        """
        generator = as_rng(rng)
        codebooks = CodebookSet.random_uniform(
            dim, num_factors, codebook_size, rng=generator, algebra=algebra
        )
        true_indices = tuple(
            int(generator.integers(0, codebook_size)) for _ in range(num_factors)
        )
        product = codebooks.compose(true_indices)
        return cls(codebooks=codebooks, product=product, true_indices=true_indices)

    @classmethod
    def from_indices(
        cls, codebooks: CodebookSet, indices: Sequence[int]
    ) -> "FactorizationProblem":
        """Problem whose product is the composition of ``indices``."""
        return cls(
            codebooks=codebooks,
            product=codebooks.compose(indices),
            true_indices=tuple(int(i) for i in indices),
        )

    @property
    def search_space(self) -> int:
        return self.codebooks.search_space


@dataclass
class FactorizationResult:
    """Everything a factorization run reports."""

    #: Decoded factor indices (argmax similarity per factor at termination).
    indices: Tuple[int, ...]
    #: Terminal status (converged / limit cycle / budget exhausted).
    outcome: Outcome
    #: Number of full sweeps executed.
    iterations: int
    #: True if the decoded composition reproduces the input product exactly.
    product_match: bool
    #: True if decoded indices equal the problem's ground truth (when known).
    correct: Optional[bool]
    #: Iteration at which the decoded indices first became (and stayed)
    #: correct; ``None`` if they never did or no ground truth is available.
    first_correct_iteration: Optional[int]
    #: Detected cycle period for LIMIT_CYCLE outcomes.
    cycle_period: Optional[int] = None
    #: Wall-clock seconds spent inside :meth:`ResonatorNetwork.factorize`.
    elapsed_seconds: float = 0.0
    #: Per-sweep cosine similarity of each estimate to the eventual decode
    #: (only recorded when ``record_trace=True``).
    trace: Optional[List[np.ndarray]] = None

    @property
    def converged(self) -> bool:
        return self.outcome is Outcome.CONVERGED

    @property
    def solved(self) -> bool:
        """Solution quality: decoded factors recompose the product.

        For exact problems this coincides with ``correct``; for noisy
        (perception) products, ``correct`` is the metric that matters.
        """
        return self.product_match


class ResonatorNetwork:
    """Iterative factorizer over a :class:`~repro.vsa.codebook.CodebookSet`.

    Parameters
    ----------
    codebooks:
        The per-factor codebooks (the matrices programmed into the RRAM
        tiers in hardware).
    backend:
        MVM implementation; defaults to the exact software oracle
        (= the paper's "Baseline" configuration).
    activation:
        State non-linearity ``g``; defaults to deterministic sign.
    max_iterations:
        Sweep budget per :meth:`factorize` call.
    detect_cycles:
        Stop (and report LIMIT_CYCLE) when a state repeats.  Enabled by
        default only when both backend and activation are deterministic,
        since a stochastic run may legitimately revisit states.
    init:
        ``"superposition"`` (bundle of all code vectors - the standard
        resonator initialization) or ``"random"``.
    rng:
        Random source for initialization and zero-sum tie-breaks.
    """

    def __init__(
        self,
        codebooks: CodebookSet,
        *,
        backend: Optional[MVMBackend] = None,
        activation: Optional[Activation] = None,
        max_iterations: int = 1000,
        detect_cycles: Optional[bool] = None,
        cycle_window: Optional[int] = 512,
        init: str = "superposition",
        rng: RandomState = None,
    ) -> None:
        if init not in ("superposition", "random"):
            raise ConfigurationError(
                f"init must be 'superposition' or 'random', got {init!r}"
            )
        self.codebooks = codebooks
        complex_algebra = codebooks.algebra == "fhrr"
        if backend is None:
            backend = PhasorBackend() if complex_algebra else ExactBackend()
        if complex_algebra and not backend.supports_complex:
            raise ConfigurationError(
                f"backend {backend!r} does not support complex (FHRR) "
                "codebooks; use PhasorBackend or another backend with "
                "supports_complex=True"
            )
        self.backend = backend
        if activation is None:
            activation = (
                PhaseActivation() if complex_algebra else SignActivation("positive")
            )
        self.activation = activation
        self.max_iterations = int(max_iterations)
        if self.max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {max_iterations}"
            )
        deterministic = self.backend.deterministic and self.activation.deterministic
        self.detect_cycles = (
            deterministic if detect_cycles is None else bool(detect_cycles)
        )
        self.cycle_window = cycle_window
        self.init = init
        self._rng = as_rng(rng)
        self.profiler: Optional[ResonatorProfiler] = None

    # -- initialization --------------------------------------------------------

    def initial_estimates(self) -> List[np.ndarray]:
        """Initial state: superposition of each codebook (or random)."""
        return [
            initial_factor_estimate(codebook, self.init, self._rng)
            for codebook in self.codebooks
        ]

    # -- decoding ----------------------------------------------------------------

    def decode(
        self, product: np.ndarray, estimates: Sequence[np.ndarray]
    ) -> Tuple[int, ...]:
        """Read out factor indices: cleanup each estimate against its codebook.

        Decoding runs on the *exact* similarity (a final clean read) - in
        hardware this is the last similarity pass whose argmax the digital
        tier computes; noise at this point would only flip near-ties, and
        the hardware can afford a slower, averaged read for the final
        answer.
        """
        indices = []
        for codebook, estimate in zip(self.codebooks, estimates):
            sims = codebook.similarities(estimate)
            indices.append(int(np.argmax(sims)))
        return tuple(indices)

    # -- main loop ------------------------------------------------------------------

    def factorize(
        self,
        product: np.ndarray,
        *,
        max_iterations: Optional[int] = None,
        initial_estimates: Optional[Sequence[np.ndarray]] = None,
        true_indices: Optional[Sequence[int]] = None,
        record_trace: bool = False,
        check_correct_every: int = 1,
        stable_decode_window: Optional[int] = None,
    ) -> FactorizationResult:
        """Run the resonator until convergence, cycle, or budget exhaustion.

        Termination differs between deterministic and stochastic
        configurations:

        * **deterministic** - a repeated state is a fixed point (stop as
          CONVERGED) and a revisited state is a limit cycle (stop as
          LIMIT_CYCLE; the trajectory can never recover);
        * **stochastic** - repeated states prove nothing (the H3DFact
          escape mechanism relies on passing *through* repeats), so the run
          stops only when the decoded factors exactly recompose the product
          (a cheap XNOR + popcount check in tier-1) or when the decode has
          been stable for ``stable_decode_window`` sweeps (used for noisy
          perception products, which never recompose exactly).

        Parameters
        ----------
        product:
            Bipolar product vector ``s`` to factorize.
        max_iterations:
            Optional per-call override of the sweep budget.
        initial_estimates:
            Optional warm-start state (defaults to :meth:`initial_estimates`).
        true_indices:
            Ground truth for ``first_correct_iteration`` bookkeeping.
        record_trace:
            Store per-sweep decoded indices (costly; for figures only).
        check_correct_every:
            Decode cadence (sweeps) for the ground-truth / solved checks;
            decoding costs one extra similarity MVM per factor, so capacity
            sweeps may relax it.
        stable_decode_window:
            For stochastic runs: stop once the decode is unchanged for this
            many consecutive checks (``None`` disables the early exit).
        """
        product = np.asarray(product)
        if product.shape != (self.codebooks.dim,):
            raise DimensionError(
                f"product shape {product.shape} does not match codebook dim "
                f"({self.codebooks.dim},)"
            )
        budget = self.max_iterations if max_iterations is None else int(max_iterations)
        stochastic = not (
            self.backend.deterministic and self.activation.deterministic
        )
        monitor = ConvergenceMonitor(
            max_iterations=budget,
            detect_cycles=self.detect_cycles and not stochastic,
            cycle_window=self.cycle_window,
        )
        self.backend.begin_trial()

        complex_algebra = self.codebooks.algebra == "fhrr"
        state_dtype = fhrr.COMPLEX_DTYPE if complex_algebra else DEFAULT_DTYPE
        if initial_estimates is None:
            estimates = self.initial_estimates()
        else:
            estimates = [np.asarray(e).astype(state_dtype) for e in initial_estimates]
            if len(estimates) != self.codebooks.num_factors:
                raise DimensionError(
                    f"{len(estimates)} initial estimates for "
                    f"{self.codebooks.num_factors} factors"
                )

        truth = tuple(true_indices) if true_indices is not None else None
        product_cast = product.astype(
            fhrr.COMPLEX_DTYPE if complex_algebra else np.float32
        )
        profiler = self.profiler
        trace: Optional[List[np.ndarray]] = [] if record_trace else None
        first_correct: Optional[int] = None
        start = time.perf_counter()
        previous_digest = state_digest(estimates)
        outcome = Outcome.MAX_ITERATIONS
        cadence = max(check_correct_every, 1)
        previous_decode: Optional[Tuple[int, ...]] = None
        stable_checks = 0
        iterations_run = 0

        for iteration in range(budget):
            self._sweep(product_cast, estimates, profiler)
            iterations_run = iteration + 1
            check_now = (
                iteration % cadence == 0
                or trace is not None
                or iteration + 1 >= budget
            )
            decoded: Optional[Tuple[int, ...]] = None
            if check_now:
                decoded = self.decode(product, estimates)
                if trace is not None:
                    trace.append(np.asarray(decoded))
                if truth is not None and first_correct is None and decoded == truth:
                    first_correct = iteration + 1
            if stochastic:
                if decoded is not None:
                    recomposed = self.codebooks.compose(decoded)
                    if np.array_equal(recomposed, product):
                        outcome = Outcome.CONVERGED
                        break
                    if stable_decode_window is not None:
                        if decoded == previous_decode:
                            stable_checks += 1
                            if stable_checks + 1 >= stable_decode_window:
                                outcome = Outcome.CONVERGED
                                break
                        else:
                            stable_checks = 0
                        previous_decode = decoded
                if iteration + 1 >= budget:
                    outcome = Outcome.MAX_ITERATIONS
            else:
                if complex_algebra and decoded is not None:
                    # A deterministic phasor trajectory refines phases
                    # indefinitely and never repeats bit-for-bit, so the
                    # digest fixed-point test below cannot fire; the exact
                    # recompose check is the complex convergence criterion
                    # (compose() is the same call sequence that built the
                    # product, so equality is bitwise for solved trials).
                    recomposed = self.codebooks.compose(decoded)
                    if np.array_equal(recomposed, product):
                        outcome = Outcome.CONVERGED
                        monitor.iterations_run = iteration + 1
                        break
                outcome = monitor.update(estimates, previous_digest, iteration)
                previous_digest = state_digest(estimates)
                if outcome in (Outcome.CONVERGED, Outcome.LIMIT_CYCLE):
                    break
        monitor.iterations_run = max(monitor.iterations_run, iterations_run)
        elapsed = time.perf_counter() - start

        indices = self.decode(product, estimates)
        recomposed = self.codebooks.compose(indices)
        product_match = bool(np.array_equal(recomposed, product))
        correct = None if truth is None else (indices == truth)
        if correct:
            if first_correct is None:
                first_correct = monitor.iterations_run
        else:
            first_correct = None
        return FactorizationResult(
            indices=indices,
            outcome=outcome if outcome is not Outcome.RUNNING else Outcome.MAX_ITERATIONS,
            iterations=monitor.iterations_run,
            product_match=product_match,
            correct=correct,
            first_correct_iteration=first_correct,
            cycle_period=monitor.cycle_period,
            elapsed_seconds=elapsed,
            trace=trace,
        )

    def _sweep(
        self,
        product_cast: np.ndarray,
        estimates: List[np.ndarray],
        profiler: Optional[ResonatorProfiler],
    ) -> None:
        """One full asynchronous sweep updating every factor estimate."""
        num_factors = self.codebooks.num_factors
        complex_algebra = self.codebooks.algebra == "fhrr"
        dim = product_cast.size
        if complex_algebra:
            unbind_cost = fhrr.unbind_flops(dim, num_factors)
            activation_cost = fhrr.phase_activation_flops(dim)
        else:
            unbind_cost = dim * (num_factors - 1)
            activation_cost = dim
        for f in range(num_factors):
            codebook = self.codebooks[f]
            # Step I: unbind all other estimates from the product.
            if profiler is not None:
                with profiler.step(
                    "unbind",
                    elements=dim * num_factors,
                    flops=unbind_cost,
                ):
                    unbound = self._unbind(product_cast, estimates, f)
            else:
                unbound = self._unbind(product_cast, estimates, f)
            # Step II: similarity MVM (RRAM tier-3 in hardware).
            if profiler is not None:
                with profiler.step(
                    "similarity",
                    elements=codebook.dim * codebook.size,
                    flops=self.backend.similarity_flops(codebook),
                ):
                    sims = self.backend.similarity(codebook, unbound)
            else:
                sims = self.backend.similarity(codebook, unbound)
            # Step III/IV: projection MVM (RRAM tier-2) + activation.
            if profiler is not None:
                with profiler.step(
                    "projection",
                    elements=codebook.dim * codebook.size,
                    flops=self.backend.project_flops(codebook),
                ):
                    projected = self.backend.project(codebook, sims)
                with profiler.step(
                    "activation", elements=codebook.dim, flops=activation_cost
                ):
                    estimates[f] = self.activation(projected)
            else:
                projected = self.backend.project(codebook, sims)
                estimates[f] = self.activation(projected)

    @staticmethod
    def _unbind(
        product_cast: np.ndarray, estimates: Sequence[np.ndarray], skip: int
    ) -> np.ndarray:
        """Unbind every estimate but ``skip`` from the product.

        Bipolar: element-wise multiply in float32 (exact - all values are
        -1/+1).  FHRR: circular correlation via the shared
        :func:`repro.vsa.fhrr.resonator_unbind` kernel, which the batched
        engine calls too so both engines take bit-identical steps.
        """
        if np.issubdtype(product_cast.dtype, np.complexfloating):
            return fhrr.resonator_unbind(product_cast, estimates, skip)
        unbound = product_cast.copy()
        for g, estimate in enumerate(estimates):
            if g != skip:
                unbound *= estimate
        return unbound
