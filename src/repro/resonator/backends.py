"""MVM backends: how the resonator's two matrix products are computed.

The resonator needs, per factor and per iteration:

* ``similarity(codebook, query)``  -> ``a = X^T u``  (step II of Fig. 3)
* ``project(codebook, weights)``   -> ``y = X a``    (step IV of Fig. 3)

Backends let the same algorithm run on an exact software oracle, on additive
Gaussian-noise models, on quantizing (ADC) models, on the aggregate
statistical CIM model (:class:`repro.core.cim_backend.CIMBackend`), or on
the full tiled crossbar simulation
(:class:`repro.core.crossbar_backend.CIMBatchedBackend`).  Table II's
"Baseline" column is the rectified deterministic configuration; the "H3D"
column runs the full crossbar backend, whose behaviour is bracketed in
tests by the intermediate models here (see the "Fidelity spectrum" section
of the README and ``docs/ARCHITECTURE.md``).

Batched execution
-----------------
Every backend additionally exposes ``similarity_batch`` / ``project_batch``,
operating on a stacked ``(trials, dim)`` query matrix (respectively a
``(trials, size)`` weight matrix) and returning the per-trial results
stacked the same way.  This is the software analogue of the paper's
Sec. IV-A batch operation: tier-1's SRAM buffers let the hardware stream a
whole batch of queries through one programmed array, and in software the
same structure turns ``trials`` interpreter-bound mat-vecs into a single
BLAS mat-mat call.

``codebooks`` may be either

* a single :class:`~repro.vsa.codebook.Codebook` - all trials query the
  same programmed array (the ``share_codebooks`` hardware situation), or
* a sequence of per-trial codebooks of identical shape - each trial owns
  its own array; the exact backend stacks them into a ``(T, D, M)`` tensor
  and uses batched matmul.

The base-class default falls back to a per-trial loop, so custom backends
stay correct without writing vectorized code; :class:`ExactBackend` and the
noise / quantizing backends override it with true vectorized
implementations.  For bipolar codebooks and integer-valued inputs all
float32 sums stay below 2**24, so the vectorized results are *bit-exact*
equal to the per-trial loop for deterministic backends (asserted by
``tests/test_backend_batch_equivalence.py``).

Backends also report the exact flop cost of their MVMs
(:meth:`MVMBackend.similarity_flops` / :meth:`MVMBackend.project_flops`),
which the networks feed to the deterministic op-count profiler
(:mod:`repro.resonator.profiler`) - the basis of Fig. 1c's breakdown.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive
from repro.vsa.codebook import Codebook

#: A shared codebook, or one codebook per trial (all of identical shape).
CodebookBatch = Union[Codebook, Sequence[Codebook]]


def codebooks_per_trial(codebooks: CodebookBatch, trials: int) -> List[Codebook]:
    """Expand ``codebooks`` to one :class:`Codebook` per trial.

    A single codebook is shared by every trial; a sequence must have one
    entry per trial and all entries must agree on ``(dim, size)`` so the
    batch can be expressed as stacked matrix products.
    """
    if isinstance(codebooks, Codebook):
        return [codebooks] * trials
    books = list(codebooks)
    if len(books) != trials:
        raise DimensionError(
            f"{len(books)} codebooks provided for {trials} trials"
        )
    shapes = {(book.dim, book.size) for book in books}
    if len(shapes) != 1:
        raise DimensionError(
            f"per-trial codebooks must share (dim, size); got {sorted(shapes)}"
        )
    return books


def batch_geometry(codebooks: CodebookBatch) -> Tuple[int, int]:
    """``(dim, size)`` of a codebook batch (shared or per-trial)."""
    if isinstance(codebooks, Codebook):
        return codebooks.dim, codebooks.size
    books = list(codebooks)
    if not books:
        raise DimensionError("empty codebook batch")
    return books[0].dim, books[0].size


class MVMBackend(ABC):
    """Computes the resonator's similarity and projection MVMs."""

    #: True if repeated calls with identical inputs return identical outputs.
    deterministic: bool = True

    #: True if the backend accepts complex (FHRR) codebooks and queries.
    #: The float32 fast paths of the bipolar backends silently destroy
    #: imaginary parts, so the networks refuse to route complex states
    #: through a backend that does not raise this flag.
    supports_complex: bool = False

    @abstractmethod
    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        """Return ``X^T query`` (length ``codebook.size``), possibly noisy."""

    @abstractmethod
    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        """Return ``X weights`` (length ``codebook.dim``), possibly noisy."""

    def begin_trial(self) -> None:
        """Hook called once per factorization trial (e.g. re-program arrays)."""

    # -- per-trial noise identity (default: no-op) -------------------------
    #
    # Stochastic backends that want packing-independent noise override
    # these: the replay layer binds one stream per request seed, and the
    # batched network declares which global trial each stacked row of the
    # next batch calls belongs to.  Deterministic backends ignore both.

    def bind_trials(self, seeds: Sequence[int]) -> None:
        """Associate per-trial noise streams with the given request seeds."""

    def select_trials(self, rows: np.ndarray) -> None:
        """Declare the global trial index of each row in upcoming batches."""

    # -- batched execution (default: per-trial loop) -----------------------

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        """Stacked ``X^T query`` for a ``(trials, dim)`` query matrix.

        Returns a ``(trials, size)`` array.  The default implementation
        loops over trials; vectorizing subclasses must match it exactly
        (deterministic backends) or statistically (noisy backends).
        """
        queries = np.asarray(queries)
        books = codebooks_per_trial(codebooks, len(queries))
        return np.stack(
            [self.similarity(book, query) for book, query in zip(books, queries)]
        )

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        """Stacked ``X weights`` for a ``(trials, size)`` weight matrix.

        Returns a ``(trials, dim)`` array; see :meth:`similarity_batch`.
        """
        weights = np.asarray(weights)
        books = codebooks_per_trial(codebooks, len(weights))
        return np.stack(
            [self.project(book, weight) for book, weight in zip(books, weights)]
        )

    # -- deterministic cost model (consumed by the profiler) ----------------

    def similarity_flops(self, codebooks: CodebookBatch) -> int:
        """Exact flops of one similarity MVM per trial (2 per MAC)."""
        dim, size = batch_geometry(codebooks)
        return 2 * dim * size

    def project_flops(self, codebooks: CodebookBatch) -> int:
        """Exact flops of one projection MVM per trial (2 per MAC)."""
        dim, size = batch_geometry(codebooks)
        return 2 * dim * size


class _StackCache:
    """Process-wide cache of float32 ``(T, D, M)`` codebook tensors.

    A batched resonator run touches the same per-trial codebook subset from
    several :class:`ExactBackend` instances (the compute backend's inner
    oracle and the network's decoder), so the cache is shared globally:
    each ``(T, D, M)`` tensor is built once per active-set compaction
    instead of once per backend.  Entries hold strong references to their
    codebooks, which pins the ``id``-based key for the entry's lifetime;
    the cache is LRU-bounded so stacks of retired trial subsets (or
    finished experiments) are dropped.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        self._stacks: Dict[
            Tuple[int, ...], Tuple[List[Codebook], np.ndarray]
        ] = {}

    def get(self, books: Sequence[Codebook]) -> np.ndarray:
        books = list(books)
        key = tuple(id(book) for book in books)
        entry = self._stacks.get(key)
        if entry is None:
            stack = np.stack([book.matrix.astype(np.float32) for book in books])
            while len(self._stacks) >= self.max_entries:
                self._stacks.pop(next(iter(self._stacks)))
            self._stacks[key] = (books, stack)
            return stack
        # Refresh LRU position.
        self._stacks[key] = self._stacks.pop(key)
        return entry[1]


_STACK_CACHE = _StackCache()


class _MatrixCache:
    """Caches float32 views of codebook matrices keyed by object identity.

    The resonator calls the backend thousands of times with the same
    codebooks; converting int8 -> float32 once keeps each MVM on the BLAS
    fast path.  ``get_stack`` additionally serves the ``(T, D, M)`` tensor
    of a per-trial codebook batch (from the process-wide
    :class:`_StackCache`) for batched matmul.
    """

    def __init__(self) -> None:
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def get(self, codebook: Codebook) -> Tuple[np.ndarray, np.ndarray]:
        key = id(codebook)
        entry = self._cache.get(key)
        if entry is None:
            matrix = codebook.matrix.astype(np.float32)
            entry = (matrix, matrix.T.copy())
            self._cache[key] = entry
        return entry

    def get_stack(self, books: Sequence[Codebook]) -> np.ndarray:
        return _STACK_CACHE.get(books)


class ExactBackend(MVMBackend):
    """Bit-exact software MVMs - the deterministic baseline resonator."""

    deterministic = True

    def __init__(self) -> None:
        self._cache = _MatrixCache()

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        _, transposed = self._cache.get(codebook)
        return transposed @ np.asarray(query, dtype=np.float32)

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        matrix, _ = self._cache.get(codebook)
        return matrix @ np.asarray(weights, dtype=np.float32)

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float32)
        if isinstance(codebooks, Codebook):
            matrix, _ = self._cache.get(codebooks)
            return queries @ matrix
        stack = self._cache.get_stack(codebooks_per_trial(codebooks, len(queries)))
        return np.matmul(queries[:, None, :], stack)[:, 0, :]

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        weights = np.asarray(weights, dtype=np.float32)
        if isinstance(codebooks, Codebook):
            _, transposed = self._cache.get(codebooks)
            return weights @ transposed
        stack = self._cache.get_stack(codebooks_per_trial(codebooks, len(weights)))
        return np.matmul(stack, weights[:, :, None])[:, :, 0]

    def matrix32(self, codebook: Codebook) -> np.ndarray:
        """Cached float32 view of ``codebook.matrix`` (``(dim, size)``)."""
        matrix, _ = self._cache.get(codebook)
        return matrix

    def stack32(self, books: Sequence[Codebook]) -> np.ndarray:
        """Cached float32 ``(trials, dim, size)`` tensor of per-trial books."""
        return self._cache.get_stack(list(books))

    def __repr__(self) -> str:
        return "ExactBackend()"


class PhasorBackend(MVMBackend):
    """Exact complex MVMs for the FHRR (phasor) resonator.

    * ``similarity`` - ``Re(X^H u)``: the real part of the Hermitian inner
      product of the unbound estimate with every item phasor (step II).
    * ``project``    - ``X a`` with *real* similarity weights against the
      complex item matrix (step IV).

    The batched variants deliberately inherit the base class's per-trial
    loop: running each stacked row through the *same* numpy call sequence
    as the sequential engine is what makes batched/sequential FHRR runs
    bit-identical (``tests/test_phasor_engine_parity.py``), the complex
    analogue of the float32 exactness argument for bipolar backends.

    Flop accounting uses 8 real flops per complex-complex MAC (similarity)
    and 4 per complex-real MAC (projection), so profiler totals remain
    exact and machine-independent.
    """

    deterministic = True
    supports_complex = True

    def __init__(self) -> None:
        # Cache the conjugate transpose per codebook: the resonator calls
        # similarity() thousands of times against the same matrix.
        self._conj_t: Dict[int, Tuple[Codebook, np.ndarray]] = {}

    def _conjugate_transpose(self, codebook: Codebook) -> np.ndarray:
        key = id(codebook)
        entry = self._conj_t.get(key)
        if entry is None:
            entry = (codebook, np.ascontiguousarray(codebook.matrix.conj().T))
            self._conj_t[key] = entry
        return entry[1]

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.complex128)
        return np.real(self._conjugate_transpose(codebook) @ query)

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        weights = np.asarray(weights, dtype=np.float64)
        return codebook.matrix @ weights

    def similarity_flops(self, codebooks: CodebookBatch) -> int:
        """8 real flops per complex-complex MAC of ``Re(X^H u)``."""
        dim, size = batch_geometry(codebooks)
        return 8 * dim * size

    def project_flops(self, codebooks: CodebookBatch) -> int:
        """4 real flops per complex-real MAC of ``X a``."""
        dim, size = batch_geometry(codebooks)
        return 4 * dim * size

    def __repr__(self) -> str:
        return "PhasorBackend()"


class NoisySimilarityBackend(MVMBackend):
    """Exact MVMs plus additive Gaussian noise on the similarity read-out.

    ``sigma`` is expressed relative to ``sqrt(dim)``, the standard deviation
    of a random-vector similarity, so ``sigma=1.0`` injects noise comparable
    to the intrinsic cross-talk floor.  This is the minimal model of the
    "stochastic similarity vector with all the PVT variations aggregated"
    of Sec. III-C.
    """

    deterministic = False

    def __init__(
        self,
        sigma: float = 1.0,
        *,
        noise_on_projection: bool = False,
        projection_sigma: Optional[float] = None,
        rng: RandomState = None,
    ) -> None:
        check_positive("sigma", sigma, allow_zero=True)
        self.sigma = sigma
        self.noise_on_projection = noise_on_projection
        self.projection_sigma = (
            sigma if projection_sigma is None else projection_sigma
        )
        self._rng = as_rng(rng)
        self._exact = ExactBackend()

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        clean = self._exact.similarity(codebook, query)
        if self.sigma == 0:
            return clean
        scale = self.sigma * np.sqrt(codebook.dim)
        return clean + self._rng.normal(0.0, scale, size=clean.shape).astype(
            np.float32
        )

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        clean = self._exact.project(codebook, weights)
        if not self.noise_on_projection or self.projection_sigma == 0:
            return clean
        scale = self.projection_sigma * np.sqrt(codebook.size)
        return clean + self._rng.normal(0.0, scale, size=clean.shape).astype(
            np.float32
        )

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        clean = self._exact.similarity_batch(codebooks, queries)
        if self.sigma == 0:
            return clean
        dim, _ = batch_geometry(codebooks)
        scale = self.sigma * np.sqrt(dim)
        return clean + self._rng.normal(0.0, scale, size=clean.shape).astype(
            np.float32
        )

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        clean = self._exact.project_batch(codebooks, weights)
        if not self.noise_on_projection or self.projection_sigma == 0:
            return clean
        _, size = batch_geometry(codebooks)
        scale = self.projection_sigma * np.sqrt(size)
        return clean + self._rng.normal(0.0, scale, size=clean.shape).astype(
            np.float32
        )

    def __repr__(self) -> str:
        return f"NoisySimilarityBackend(sigma={self.sigma})"


class QuantizedSimilarityBackend(MVMBackend):
    """Wraps another backend and quantizes similarities through an ADC model.

    The ADC object must expose ``convert(values, full_scale)`` returning the
    reconstructed (de-quantized) values; :class:`repro.cim.adc.SARADC`
    satisfies this.  ``full_scale`` defaults to the codebook dimension, the
    largest possible similarity magnitude.  The ADC transfer is elementwise,
    so the batched path simply converts the stacked inner similarities.
    """

    def __init__(
        self,
        adc,
        *,
        inner: Optional[MVMBackend] = None,
        full_scale: Optional[float] = None,
    ) -> None:
        if not hasattr(adc, "convert"):
            raise ConfigurationError(
                "adc must provide a convert(values, full_scale) method"
            )
        self.adc = adc
        self.inner = inner if inner is not None else ExactBackend()
        self.full_scale = full_scale
        self.deterministic = (
            self.inner.deterministic and getattr(adc, "deterministic", True)
        )

    def _scale(self, dim: int) -> float:
        return self.full_scale if self.full_scale is not None else dim

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        raw = self.inner.similarity(codebook, query)
        return self.adc.convert(raw, full_scale=self._scale(codebook.dim))

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        return self.inner.project(codebook, weights)

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        raw = self.inner.similarity_batch(codebooks, queries)
        dim, _ = batch_geometry(codebooks)
        return self.adc.convert(raw, full_scale=self._scale(dim))

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        return self.inner.project_batch(codebooks, weights)

    def begin_trial(self) -> None:
        self.inner.begin_trial()

    def bind_trials(self, seeds: Sequence[int]) -> None:
        self.inner.bind_trials(seeds)

    def select_trials(self, rows: np.ndarray) -> None:
        self.inner.select_trials(rows)

    def __repr__(self) -> str:
        return f"QuantizedSimilarityBackend(adc={self.adc!r}, inner={self.inner!r})"
