"""MVM backends: how the resonator's two matrix products are computed.

The resonator needs, per factor and per iteration:

* ``similarity(codebook, query)``  -> ``a = X^T u``  (step II of Fig. 3)
* ``project(codebook, weights)``   -> ``y = X a``    (step IV of Fig. 3)

Backends let the same algorithm run on an exact software oracle, on additive
Gaussian-noise models, on quantizing (ADC) models, or on the full RRAM
crossbar simulation (:class:`repro.core.cim_backend.CIMBackend`).  Table II's
"Baseline" column is :class:`ExactBackend`; the "H3D" column is the crossbar
backend, whose behaviour is bracketed in tests by the two intermediate
models here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive
from repro.vsa.codebook import Codebook


class MVMBackend(ABC):
    """Computes the resonator's similarity and projection MVMs."""

    #: True if repeated calls with identical inputs return identical outputs.
    deterministic: bool = True

    @abstractmethod
    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        """Return ``X^T query`` (length ``codebook.size``), possibly noisy."""

    @abstractmethod
    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        """Return ``X weights`` (length ``codebook.dim``), possibly noisy."""

    def begin_trial(self) -> None:
        """Hook called once per factorization trial (e.g. re-program arrays)."""


class _MatrixCache:
    """Caches float32 views of codebook matrices keyed by object identity.

    The resonator calls the backend thousands of times with the same
    codebooks; converting int8 -> float32 once keeps each MVM on the BLAS
    fast path.
    """

    def __init__(self) -> None:
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def get(self, codebook: Codebook) -> Tuple[np.ndarray, np.ndarray]:
        key = id(codebook)
        entry = self._cache.get(key)
        if entry is None:
            matrix = codebook.matrix.astype(np.float32)
            entry = (matrix, matrix.T.copy())
            self._cache[key] = entry
        return entry


class ExactBackend(MVMBackend):
    """Bit-exact software MVMs - the deterministic baseline resonator."""

    deterministic = True

    def __init__(self) -> None:
        self._cache = _MatrixCache()

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        _, transposed = self._cache.get(codebook)
        return transposed @ np.asarray(query, dtype=np.float32)

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        matrix, _ = self._cache.get(codebook)
        return matrix @ np.asarray(weights, dtype=np.float32)

    def __repr__(self) -> str:
        return "ExactBackend()"


class NoisySimilarityBackend(MVMBackend):
    """Exact MVMs plus additive Gaussian noise on the similarity read-out.

    ``sigma`` is expressed relative to ``sqrt(dim)``, the standard deviation
    of a random-vector similarity, so ``sigma=1.0`` injects noise comparable
    to the intrinsic cross-talk floor.  This is the minimal model of the
    "stochastic similarity vector with all the PVT variations aggregated"
    of Sec. III-C.
    """

    deterministic = False

    def __init__(
        self,
        sigma: float = 1.0,
        *,
        noise_on_projection: bool = False,
        projection_sigma: Optional[float] = None,
        rng: RandomState = None,
    ) -> None:
        check_positive("sigma", sigma, allow_zero=True)
        self.sigma = sigma
        self.noise_on_projection = noise_on_projection
        self.projection_sigma = (
            sigma if projection_sigma is None else projection_sigma
        )
        self._rng = as_rng(rng)
        self._exact = ExactBackend()

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        clean = self._exact.similarity(codebook, query)
        if self.sigma == 0:
            return clean
        scale = self.sigma * np.sqrt(codebook.dim)
        return clean + self._rng.normal(0.0, scale, size=clean.shape).astype(
            np.float32
        )

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        clean = self._exact.project(codebook, weights)
        if not self.noise_on_projection or self.projection_sigma == 0:
            return clean
        scale = self.projection_sigma * np.sqrt(codebook.size)
        return clean + self._rng.normal(0.0, scale, size=clean.shape).astype(
            np.float32
        )

    def __repr__(self) -> str:
        return f"NoisySimilarityBackend(sigma={self.sigma})"


class QuantizedSimilarityBackend(MVMBackend):
    """Wraps another backend and quantizes similarities through an ADC model.

    The ADC object must expose ``convert(values, full_scale)`` returning the
    reconstructed (de-quantized) values; :class:`repro.cim.adc.SARADC`
    satisfies this.  ``full_scale`` defaults to the codebook dimension, the
    largest possible similarity magnitude.
    """

    def __init__(
        self,
        adc,
        *,
        inner: Optional[MVMBackend] = None,
        full_scale: Optional[float] = None,
    ) -> None:
        if not hasattr(adc, "convert"):
            raise ConfigurationError(
                "adc must provide a convert(values, full_scale) method"
            )
        self.adc = adc
        self.inner = inner if inner is not None else ExactBackend()
        self.full_scale = full_scale
        self.deterministic = (
            self.inner.deterministic and getattr(adc, "deterministic", True)
        )

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        raw = self.inner.similarity(codebook, query)
        scale = self.full_scale if self.full_scale is not None else codebook.dim
        return self.adc.convert(raw, full_scale=scale)

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        return self.inner.project(codebook, weights)

    def begin_trial(self) -> None:
        self.inner.begin_trial()

    def __repr__(self) -> str:
        return f"QuantizedSimilarityBackend(adc={self.adc!r}, inner={self.inner!r})"
