"""Batch factorization driver.

Runs many independent trials of one problem configuration and aggregates
them - the inner loop of every accuracy experiment (Table II, Fig. 6).
Hardware-wise this corresponds to the batch operation that tier-1's SRAM
buffering enables (Sec. IV-A: "greater-than-one factorization batch size").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.resonator.metrics import BatchStatistics, summarize
from repro.resonator.network import (
    FactorizationProblem,
    FactorizationResult,
    ResonatorNetwork,
)
from repro.utils.rng import RandomState, as_rng

#: Builds a fresh network for a problem; lets each trial own its noise state.
NetworkFactory = Callable[[FactorizationProblem], ResonatorNetwork]


@dataclass
class BatchResult:
    """Results plus summary statistics for a batch of trials."""

    results: List[FactorizationResult]
    statistics: BatchStatistics

    @property
    def accuracy(self) -> float:
        return self.statistics.accuracy

    @property
    def mean_iterations(self) -> float:
        return self.statistics.mean_iterations


def factorize_batch(
    network_factory: NetworkFactory,
    *,
    dim: int,
    num_factors: int,
    codebook_size: int,
    trials: int,
    max_iterations: Optional[int] = None,
    target_accuracy: float = 0.99,
    rng: RandomState = None,
    share_codebooks: bool = False,
    check_correct_every: int = 1,
) -> BatchResult:
    """Run ``trials`` independent factorizations of random problems.

    Parameters
    ----------
    network_factory:
        Called once per trial with the generated problem; returns the
        configured :class:`ResonatorNetwork` (baseline, noisy, CIM, ...).
    share_codebooks:
        When True all trials reuse one codebook set with fresh random
        ground-truth indices - the hardware situation where arrays are
        programmed once and many queries stream through.
    """
    generator = as_rng(rng)
    results: List[FactorizationResult] = []
    shared_problem: Optional[FactorizationProblem] = None
    for _ in range(trials):
        if share_codebooks and shared_problem is not None:
            indices = tuple(
                int(generator.integers(0, codebook_size)) for _ in range(num_factors)
            )
            problem = FactorizationProblem.from_indices(
                shared_problem.codebooks, indices
            )
        else:
            problem = FactorizationProblem.random(
                dim, num_factors, codebook_size, rng=generator
            )
            if share_codebooks:
                shared_problem = problem
        network = network_factory(problem)
        result = network.factorize(
            problem.product,
            max_iterations=max_iterations,
            true_indices=problem.true_indices,
            check_correct_every=check_correct_every,
        )
        results.append(result)
    return BatchResult(
        results=results,
        statistics=summarize(results, target_accuracy=target_accuracy),
    )
