"""Batch factorization driver.

Runs many independent trials of one problem configuration and aggregates
them - the inner loop of every accuracy experiment (Table II, Fig. 6).
Hardware-wise this corresponds to the batch operation that tier-1's SRAM
buffering enables (Sec. IV-A: "greater-than-one factorization batch size").

Execution engines
-----------------
Two engines produce the same per-trial :class:`FactorizationResult` records:

* ``"batched"`` (the default) - all trials advance together through
  :class:`~repro.resonator.batched.BatchedResonatorNetwork`: one stacked
  MVM per step per sweep instead of one mat-vec per trial, with per-trial
  convergence masking.  Deterministic configurations take bit-identical
  steps to the sequential engine; stochastic ones draw their noise in a
  different order, so individual trials differ while the batch statistics
  match.
* ``"sequential"`` - the historical per-trial Python loop; one fresh
  network per trial via ``network_factory``.

Problem generation consumes the ``rng`` stream identically under both
engines, so the generated problems (codebooks and ground-truth indices)
are the same for a given seed regardless of engine.  Select the engine per
call (``engine=...``) or process-wide via the ``H3DFACT_ENGINE``
environment variable (see :func:`engine_from_environment`).

In batched mode, ``network_factory`` is invoked once on the first problem
to obtain a *template* network whose backend, activation, budget and
termination settings are shared by the whole batch (the hardware
situation: one configured stack, many queries).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.resonator.batched import BatchedResonatorNetwork, CodebookSetBatch
from repro.resonator.metrics import BatchStatistics, summarize
from repro.resonator.network import (
    FactorizationProblem,
    FactorizationResult,
    ResonatorNetwork,
)
from repro.utils.rng import RandomState, as_rng

#: Builds a fresh network for a problem; lets each trial own its noise state.
NetworkFactory = Callable[[FactorizationProblem], ResonatorNetwork]

#: Recognised execution engines.
ENGINES = ("batched", "sequential")


def engine_from_environment(default: str = "batched") -> str:
    """Resolve the batch execution engine from ``H3DFACT_ENGINE``.

    Accepts ``"batched"`` or ``"sequential"``; unset or empty falls back to
    ``default``.  Lets benchmark and CI runs pit the two engines against
    each other without touching call sites.
    """
    value = os.environ.get("H3DFACT_ENGINE", "").strip().lower()
    if not value:
        return default
    if value not in ENGINES:
        raise ConfigurationError(
            f"H3DFACT_ENGINE must be one of {ENGINES}, got {value!r}"
        )
    return value


def batched_network_for(
    network_factory: NetworkFactory,
    problems: Sequence[FactorizationProblem],
) -> BatchedResonatorNetwork:
    """Batched network for a same-geometry problem list.

    Builds the template on the first problem (one configured stack, many
    queries) and detects the shared-codebook situation by object identity:
    if every problem references one :class:`~repro.vsa.codebook.CodebookSet`
    instance, the batch runs in shared-mode GEMM, otherwise each trial
    stacks its own set.  Single source of this rule for the shared-stream
    driver (:func:`factorize_problems`) and the service's seeded replay
    (:func:`repro.resonator.replay.run_group`).
    """
    template = network_factory(problems[0])
    first_set = problems[0].codebooks
    if all(problem.codebooks is first_set for problem in problems):
        codebooks: "CodebookSetBatch" = first_set
    else:
        codebooks = [problem.codebooks for problem in problems]
    return BatchedResonatorNetwork.from_network(template, codebooks)


@dataclass
class BatchResult:
    """Results plus summary statistics for a batch of trials."""

    results: List[FactorizationResult]
    statistics: BatchStatistics

    @property
    def accuracy(self) -> float:
        return self.statistics.accuracy

    @property
    def mean_iterations(self) -> float:
        return self.statistics.mean_iterations


def factorize_problems(
    network_factory: NetworkFactory,
    problems: Sequence[FactorizationProblem],
    *,
    max_iterations: Optional[int] = None,
    target_accuracy: float = 0.99,
    check_correct_every: int = 1,
    engine: Optional[str] = None,
) -> BatchResult:
    """Factorize pre-generated ``problems`` and aggregate the results.

    All problems must share ``(dim, num_factors, sizes)`` for the batched
    engine; when they additionally share one
    :class:`~repro.vsa.codebook.CodebookSet` object, the batch runs in
    shared-codebook mode (one programmed array, many queries).
    """
    if not problems:
        raise ConfigurationError("factorize_problems() needs at least one problem")
    if engine is None:
        engine = engine_from_environment()
    if engine not in ENGINES:
        raise ConfigurationError(f"engine must be one of {ENGINES}, got {engine!r}")

    if engine == "sequential":
        results: List[FactorizationResult] = []
        for problem in problems:
            network = network_factory(problem)
            results.append(
                network.factorize(
                    problem.product,
                    max_iterations=max_iterations,
                    true_indices=problem.true_indices,
                    check_correct_every=check_correct_every,
                )
            )
        return BatchResult(
            results=results,
            statistics=summarize(results, target_accuracy=target_accuracy),
        )

    network = batched_network_for(network_factory, problems)
    products = np.stack([problem.product for problem in problems])
    results = network.factorize(
        products,
        max_iterations=max_iterations,
        true_indices=[problem.true_indices for problem in problems],
        check_correct_every=check_correct_every,
    )
    return BatchResult(
        results=results,
        statistics=summarize(results, target_accuracy=target_accuracy),
    )


def generate_problems(
    *,
    dim: int,
    num_factors: int,
    codebook_size: int,
    trials: int,
    rng: RandomState = None,
    share_codebooks: bool = False,
    algebra: str = "bipolar",
) -> List[FactorizationProblem]:
    """Random problems for one (D, F, M) configuration.

    Consumes the ``rng`` stream in the same per-trial order as the
    historical sequential driver, so seeds keep generating identical
    workloads.  With ``share_codebooks`` all trials reuse one codebook set
    with fresh random ground-truth indices - the hardware situation where
    arrays are programmed once and many queries stream through.
    ``algebra`` selects bipolar (default) or FHRR problem generation.
    """
    generator = as_rng(rng)
    problems: List[FactorizationProblem] = []
    shared: Optional[FactorizationProblem] = None
    for _ in range(trials):
        if share_codebooks and shared is not None:
            indices = tuple(
                int(generator.integers(0, codebook_size)) for _ in range(num_factors)
            )
            problem = FactorizationProblem.from_indices(shared.codebooks, indices)
        else:
            problem = FactorizationProblem.random(
                dim, num_factors, codebook_size, rng=generator, algebra=algebra
            )
            if share_codebooks:
                shared = problem
        problems.append(problem)
    return problems


def factorize_batch(
    network_factory: NetworkFactory,
    *,
    dim: int,
    num_factors: int,
    codebook_size: int,
    trials: int,
    max_iterations: Optional[int] = None,
    target_accuracy: float = 0.99,
    rng: RandomState = None,
    share_codebooks: bool = False,
    check_correct_every: int = 1,
    engine: Optional[str] = None,
    algebra: str = "bipolar",
) -> BatchResult:
    """Run ``trials`` independent factorizations of random problems.

    Parameters
    ----------
    network_factory:
        Builds the configured :class:`ResonatorNetwork` (baseline, noisy,
        CIM, ...).  The sequential engine calls it once per trial; the
        batched engine calls it once, on the first problem, as a template.
    share_codebooks:
        When True all trials reuse one codebook set with fresh random
        ground-truth indices - the hardware situation where arrays are
        programmed once and many queries stream through.
    engine:
        ``"batched"``, ``"sequential"``, or ``None`` to consult
        :func:`engine_from_environment`.
    algebra:
        ``"bipolar"`` (default) or ``"fhrr"`` problem generation.
    """
    problems = generate_problems(
        dim=dim,
        num_factors=num_factors,
        codebook_size=codebook_size,
        trials=trials,
        rng=rng,
        share_codebooks=share_codebooks,
        algebra=algebra,
    )
    return factorize_problems(
        network_factory,
        problems,
        max_iterations=max_iterations,
        target_accuracy=target_accuracy,
        check_correct_every=check_correct_every,
        engine=engine,
    )
