"""Seeded-replay batch execution and geometry-grouped planning.

This is the resonator-layer machinery behind the factorization service
(:mod:`repro.service`) and :meth:`repro.core.engine.H3DFact.factorize_batch`.
It depends only on resonator primitives, so lower layers can use it
without importing the serving stack.

One same-geometry batch executes in one of two modes (:func:`run_group`):

* **shared-stream** (any trial without a ``seed``) - exactly the batch
  drivers' historical recipe: :func:`~repro.resonator.batch.factorize_problems`
  builds one template network whose random stream initializes every trial
  in submission order.  Bit-identical to the experiment drivers, but the
  results depend on how the batch was packed.
* **seeded replay** (every trial carries a ``seed``) - each trial's
  initial state is derived from *its own* seed with the same recipe as
  :meth:`~repro.resonator.network.ResonatorNetwork.initial_estimates`,
  then the whole batch advances through the stacked
  :class:`~repro.resonator.batched.BatchedResonatorNetwork`.  For
  deterministic configurations (exact/rectified backends, deterministic
  activation) the trajectory of a trial depends only on its initial state,
  its product and its codebooks - *not* on which batch it rode in - so a
  fixed-seed request stream yields bit-identical
  :class:`~repro.resonator.network.FactorizationResult`\\ s regardless of
  arrival order or batch packing (PR 1's batched/sequential parity
  guarantee).  Stochastic backends with *per-trial noise streams*
  (:meth:`~repro.resonator.backends.MVMBackend.bind_trials`, implemented
  by the crossbar backend
  :class:`~repro.core.crossbar_backend.CIMBatchedBackend`) extend the same
  guarantee to noisy runs: each trial's noise derives from its own request
  seed, so seeded stochastic trials are also bit-identical across engines
  and packings.  Stochastic backends *without* trial streams still run
  correctly under seeded replay, but their noise is drawn batch-wide, so
  only their statistics are packing-independent.

The planner (:func:`run_problems_grouped`) partitions an arbitrary
problem list into same-geometry groups (first-appearance order,
submission order within a group), so a heterogeneous workload still runs
each compatible subset as one stacked batch instead of falling all the
way back to the per-trial loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.resonator.batch import (
    ENGINES,
    NetworkFactory,
    batched_network_for,
    engine_from_environment,
    factorize_problems,
)
from repro.resonator.network import (
    FactorizationProblem,
    FactorizationResult,
    initial_factor_estimate,
)
from repro.utils.rng import as_rng
from repro.vsa.codebook import CodebookSet

#: Batchability key: hypervector dimension, per-factor codebook sizes, and
#: algebra - bipolar and FHRR trials can never share a stacked batch (their
#: state dtypes and MVM kernels differ).
GeometryKey = Tuple[int, Tuple[int, ...], str]


def geometry_key(codebooks: CodebookSet) -> GeometryKey:
    """The (dim, sizes, algebra) signature that decides batch compatibility."""
    return codebooks.dim, codebooks.sizes, codebooks.algebra


def seeded_initial_estimates(
    codebooks: CodebookSet, seed: int, *, init: str = "superposition"
) -> List[np.ndarray]:
    """Initial per-factor state derived from one request's own seed.

    Mirrors :meth:`ResonatorNetwork.initial_estimates` (superposition with
    seeded tie-breaks, or seeded random vectors) but draws from a generator
    owned by the request, which is what makes a seeded trial's trajectory
    independent of its batch-mates.
    """
    if init not in ("superposition", "random"):
        raise ConfigurationError(
            f"init must be 'superposition' or 'random', got {init!r}"
        )
    rng = as_rng(seed)
    return [
        initial_factor_estimate(codebook, init, rng) for codebook in codebooks
    ]


def run_group(
    network_factory: NetworkFactory,
    problems: Sequence[FactorizationProblem],
    *,
    seeds: Optional[Sequence[Optional[int]]] = None,
    max_iterations: Optional[int] = None,
    check_correct_every: int = 1,
    engine: Optional[str] = None,
) -> List[FactorizationResult]:
    """Execute one same-geometry batch, one result per problem.

    ``seeds`` selects the mode: when present and fully populated, each
    trial is seeded-replay initialized from its own entry; otherwise the
    batch runs in shared-stream mode via :func:`factorize_problems`.
    """
    if not problems:
        raise ConfigurationError("run_group() needs at least one problem")
    if seeds is not None and len(seeds) != len(problems):
        raise ConfigurationError(
            f"{len(seeds)} seeds for {len(problems)} problems"
        )
    if engine is None:
        engine = engine_from_environment()
    if engine not in ENGINES:
        raise ConfigurationError(f"engine must be one of {ENGINES}, got {engine!r}")
    fully_seeded = seeds is not None and all(s is not None for s in seeds)
    if seeds is not None and not fully_seeded and any(s is not None for s in seeds):
        raise ConfigurationError(
            "a group's seeds must be all set or all None; partial seeding "
            "would silently lose the replay guarantee for the seeded trials"
        )

    if not fully_seeded:
        return factorize_problems(
            network_factory,
            problems,
            max_iterations=max_iterations,
            check_correct_every=check_correct_every,
            engine=engine,
        ).results

    if engine == "sequential":
        results: List[FactorizationResult] = []
        for problem, seed in zip(problems, seeds):
            network = network_factory(problem)
            # Per-trial-stream backends draw this trial's noise from its
            # own request seed - the same stream the batched engine binds
            # for this trial, which is what makes seeded stochastic
            # backends (the crossbar backend) bit-identical across
            # engines.  No-op for backends without trial identity.
            network.backend.bind_trials([seed])
            results.append(
                network.factorize(
                    problem.product,
                    max_iterations=max_iterations,
                    initial_estimates=seeded_initial_estimates(
                        problem.codebooks, seed, init=network.init
                    ),
                    true_indices=problem.true_indices,
                    check_correct_every=check_correct_every,
                )
            )
        return results

    network = batched_network_for(network_factory, problems)
    network.backend.bind_trials(list(seeds))
    per_trial = [
        seeded_initial_estimates(problem.codebooks, seed, init=network.init)
        for problem, seed in zip(problems, seeds)
    ]
    stacked = [
        np.stack([estimates[f] for estimates in per_trial])
        for f in range(network.num_factors)
    ]
    products = np.stack([problem.product for problem in problems])
    return network.factorize(
        products,
        max_iterations=max_iterations,
        initial_estimates=stacked,
        true_indices=[problem.true_indices for problem in problems],
        check_correct_every=check_correct_every,
    )


def group_by_geometry(
    problems: Sequence[FactorizationProblem],
) -> List[List[int]]:
    """Partition problem indices into same-geometry groups.

    Groups appear in first-appearance order and preserve submission order
    internally, so planning is deterministic for a given problem list.
    """
    groups: Dict[GeometryKey, List[int]] = {}
    for index, problem in enumerate(problems):
        groups.setdefault(geometry_key(problem.codebooks), []).append(index)
    return list(groups.values())


def run_problems_grouped(
    network_factory: NetworkFactory,
    problems: Sequence[FactorizationProblem],
    *,
    seeds: Optional[Sequence[Optional[int]]] = None,
    max_iterations: Optional[int] = None,
    check_correct_every: int = 1,
    engine: Optional[str] = None,
) -> List[FactorizationResult]:
    """Execute ``problems`` batched per geometry group, in input order.

    The sequential engine ignores geometry entirely, so under
    ``engine="sequential"`` (or ``H3DFACT_ENGINE=sequential``) the whole
    list runs as one per-trial loop in submission order - the historical
    heterogeneous-batch behaviour, preserved exactly.
    """
    if not problems:
        raise ConfigurationError(
            "run_problems_grouped() needs at least one problem"
        )
    if seeds is not None and len(seeds) != len(problems):
        raise ConfigurationError(
            f"{len(seeds)} seeds for {len(problems)} problems"
        )
    if engine is None:
        engine = engine_from_environment()
    if engine == "sequential":
        return run_group(
            network_factory,
            problems,
            seeds=seeds,
            max_iterations=max_iterations,
            check_correct_every=check_correct_every,
            engine=engine,
        )
    results: List[Optional[FactorizationResult]] = [None] * len(problems)
    for indices in group_by_geometry(problems):
        group_results = run_group(
            network_factory,
            [problems[i] for i in indices],
            seeds=None if seeds is None else [seeds[i] for i in indices],
            max_iterations=max_iterations,
            check_correct_every=check_correct_every,
            engine=engine,
        )
        for index, result in zip(indices, group_results):
            results[index] = result
    return results  # type: ignore[return-value]
