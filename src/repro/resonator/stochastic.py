"""Stochastic resonator configurations: the H3DFact similarity read-out.

The H3DFact similarity path (Sec. III/IV) differs from the software baseline
in four physically-motivated ways, applied in this order to ``a = X^T u``:

1. **Read-out noise** - programming variability, read noise and PVT effects
   aggregate into Gaussian noise on each column current (Sec. III-C,
   "stochastic similarity vector with all the PVT variations aggregated").
2. **Rectification** - the current-sensing front end reports the positive
   part of the differential column current; negative similarities carry no
   current past the sense threshold.
3. **VTGT threshold** - the adjustable target sensing voltage zeroes
   sub-threshold similarities.  The paper calibrates VTGT per problem
   ("we adjust the threshold value accordingly", Sec. V-D);
   :class:`ThresholdPolicy` reproduces that calibration by targeting a
   constant expected number of supra-threshold codebook entries.
4. **SAR ADC quantization** - the 4-bit converter digitizes the
   supra-threshold current range; its coarse steps add quantization dither
   (the Fig. 6a convergence-speedup mechanism).

The combination turns the resonator update into a *sparse stochastic search
in superposition*: each iteration a handful of candidate code vectors pass
the threshold, noise varies which ones, and the true combination - once
touched - locks because its similarity (≈ D) towers over the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.stats import norm

from repro.errors import ConfigurationError
from repro.resonator.backends import (
    CodebookBatch,
    ExactBackend,
    MVMBackend,
    batch_geometry,
)
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive
from repro.vsa.codebook import Codebook


@dataclass(frozen=True)
class ThresholdPolicy:
    """Chooses the VTGT threshold for a given codebook.

    ``target_pass_count`` is the expected number of codebook entries whose
    *crosstalk* (noise-floor) similarity exceeds the threshold.  Keeping
    this constant across codebook sizes is what the paper's adjustable VTGT
    achieves: small codebooks get a low threshold (so the search never
    starves on an all-zero similarity vector), large codebooks get a high
    one (so the superposition stays sparse).

    Crosstalk similarities are approximately ``N(0, sqrt(D))``; with read
    noise of ``sigma * sqrt(D)`` added, the effective scale grows to
    ``sqrt(D * (1 + sigma^2))``.  The threshold is the upper-tail quantile
    of that distribution at probability ``target_pass_count / M``.
    """

    target_pass_count: float = 4.0
    #: Fixed threshold in units of sqrt(dim); overrides the adaptive rule.
    fixed_zscore: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive("target_pass_count", self.target_pass_count)

    def threshold(self, dim: int, codebook_size: int, noise_sigma: float) -> float:
        """Absolute threshold on the (noisy, rectified) similarity value."""
        effective_scale = np.sqrt(dim * (1.0 + noise_sigma**2))
        if self.fixed_zscore is not None:
            return float(self.fixed_zscore * effective_scale)
        tail = min(0.5, self.target_pass_count / max(codebook_size, 1))
        return float(norm.isf(tail) * effective_scale)


class StochasticThresholdBackend(MVMBackend):
    """Algorithm-level model of the H3DFact similarity read-out.

    This backend reproduces the *statistics* of the full RRAM crossbar
    simulation (:mod:`repro.cim`) at a fraction of the cost: one Gaussian
    sample per similarity output instead of one per device.  The crossbar
    tests validate that both produce matching error distributions.

    Parameters
    ----------
    noise_sigma:
        Read-out noise scale relative to ``sqrt(dim)``; 0 disables noise
        (leaving only rectification + threshold + quantization).
    policy:
        VTGT threshold calibration; ``None`` disables thresholding.
    adc:
        Optional ADC model with a ``convert(values, full_scale)`` method
        applied to the supra-threshold similarities.
    adc_full_scale_zscore:
        ADC full scale in units of ``sqrt(dim)``.  The converter's range is
        matched to the *working range* of supra-threshold similarities
        during search (a few crosstalk sigmas), not to the maximum possible
        similarity ``D``: the locked-in signal may clip at full scale
        without harm, while spreading the 16 codes of a 4-bit converter
        over ``[0, D]`` would crush the graded weights the dynamics need.
    rectify:
        Apply the positive-part nonlinearity of the sensing front end.
    projection_noise_sigma:
        Optional Gaussian noise on the projection MVM output (tier-2 RRAM),
        relative to ``sqrt(codebook_size)``.
    """

    deterministic = False

    def __init__(
        self,
        *,
        noise_sigma: float = 0.5,
        policy: Optional[ThresholdPolicy] = ThresholdPolicy(),
        adc=None,
        adc_full_scale_zscore: float = 8.0,
        rectify: bool = True,
        projection_noise_sigma: float = 0.0,
        rng: RandomState = None,
    ) -> None:
        check_positive("noise_sigma", noise_sigma, allow_zero=True)
        check_positive(
            "adc_full_scale_zscore", adc_full_scale_zscore, allow_zero=False
        )
        check_positive(
            "projection_noise_sigma", projection_noise_sigma, allow_zero=True
        )
        self.noise_sigma = noise_sigma
        self.policy = policy
        self.adc = adc
        self.adc_full_scale_zscore = adc_full_scale_zscore
        self.rectify = rectify
        self.projection_noise_sigma = projection_noise_sigma
        self._rng = as_rng(rng)
        self._exact = ExactBackend()
        self.deterministic = noise_sigma == 0 and projection_noise_sigma == 0 and (
            adc is None or getattr(adc, "deterministic", True)
        )

    # -- the similarity chain ---------------------------------------------
    # The batch methods are the single authoritative implementation of the
    # read-out chain; the scalar methods run a one-row batch (the seeded
    # noise stream is unchanged: Generator.normal draws identical values
    # for size=(M,) and size=(1, M)).

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        return self.similarity_batch(codebook, np.asarray(query)[None])[0]

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        return self.project_batch(codebook, np.asarray(weights)[None])[0]

    # -- batched execution (one noise draw per output, whole batch) --------

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        values = self._exact.similarity_batch(codebooks, queries)
        dim, size = batch_geometry(codebooks)
        sqrt_dim = np.sqrt(dim)
        if self.noise_sigma > 0:
            values = values + self._rng.normal(
                0.0, self.noise_sigma * sqrt_dim, size=values.shape
            ).astype(np.float32)
        if self.rectify:
            values = np.maximum(values, 0.0)
        if self.policy is not None:
            threshold = self.policy.threshold(dim, size, self.noise_sigma)
            values = np.where(values >= threshold, values, 0.0)
        if self.adc is not None:
            full_scale = self.adc_full_scale_zscore * sqrt_dim
            values = self.adc.convert(values, full_scale=full_scale)
        return values

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        values = self._exact.project_batch(codebooks, weights)
        if self.projection_noise_sigma > 0:
            _, size = batch_geometry(codebooks)
            scale = self.projection_noise_sigma * np.sqrt(size)
            values = values + self._rng.normal(
                0.0, scale, size=values.shape
            ).astype(np.float32)
        return values

    def __repr__(self) -> str:
        return (
            f"StochasticThresholdBackend(noise_sigma={self.noise_sigma}, "
            f"policy={self.policy!r}, adc={self.adc!r})"
        )


class RectifiedBackend(MVMBackend):
    """Deterministic rectified-similarity backend (the Table II baseline).

    The baseline resonator network [9] evaluated by the paper shares the
    current-sensing front end (and hence the positive-part nonlinearity)
    with the stochastic design but has neither read-out noise nor a
    threshold: it is the deterministic limit of the similarity chain.
    Rectification substantially raises the deterministic capacity compared
    with the signed ``X X^T`` update, which is why it is the fair baseline.
    """

    deterministic = True

    def __init__(self) -> None:
        self._exact = ExactBackend()

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        return np.maximum(self._exact.similarity(codebook, query), 0.0)

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        return self._exact.project(codebook, weights)

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        return np.maximum(self._exact.similarity_batch(codebooks, queries), 0.0)

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        return self._exact.project_batch(codebooks, weights)

    def __repr__(self) -> str:
        return "RectifiedBackend()"
