"""Activation functions ``g(.)`` for the resonator state update.

The paper's state-space equations (Sec. II-B) apply ``g`` to the projection
output ``X a``.  The standard choice is the sign function, keeping the state
bipolar; ties (exact zeros) must be resolved, and *how* they are resolved is
part of the determinism story:

* deterministic tie-break (+1): the baseline resonator is then a
  deterministic dynamical system that can enter limit cycles (Fig. 2b);
* random tie-break: a minimal stochastic perturbation, still far weaker
  than the RRAM read-noise H3DFact exploits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RandomState, as_rng
from repro.vsa.ops import DEFAULT_DTYPE


class Activation(ABC):
    """Maps a real-valued projection output to the next resonator state."""

    #: True if repeated calls with identical input produce identical output.
    deterministic: bool = True

    @abstractmethod
    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Apply the activation element-wise."""


class SignActivation(Activation):
    """Sign threshold keeping the state in ``{-1, +1}``.

    Parameters
    ----------
    tie_break:
        ``"positive"`` maps zeros to +1 (fully deterministic, the baseline
        configuration); ``"random"`` resolves each zero with a coin flip
        (models an analog comparator at threshold).
    rng:
        Random source for ``tie_break="random"``.
    """

    def __init__(
        self,
        tie_break: str = "positive",
        *,
        rng: RandomState = None,
    ) -> None:
        if tie_break not in ("positive", "negative", "random"):
            raise ConfigurationError(
                f"tie_break must be positive/negative/random, got {tie_break!r}"
            )
        self.tie_break = tie_break
        self.deterministic = tie_break != "random"
        self._rng = as_rng(rng)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        result = np.sign(values).astype(DEFAULT_DTYPE)
        zeros = result == 0
        if np.any(zeros):
            if self.tie_break == "positive":
                result[zeros] = 1
            elif self.tie_break == "negative":
                result[zeros] = -1
            else:
                flips = self._rng.integers(0, 2, size=int(zeros.sum()), dtype=np.int8)
                result[zeros] = (2 * flips - 1).astype(DEFAULT_DTYPE)
        return result

    def __repr__(self) -> str:
        return f"SignActivation(tie_break={self.tie_break!r})"


class PhaseActivation(Activation):
    """Spectral phase normalization - the FHRR resonator activation.

    The phasor resonator's analogue of the sign threshold: the projection
    output ``X a`` (a complex vector with arbitrary spectral magnitudes)
    is renormalized to unit modulus in the frequency domain, keeping the
    state on the unitary-phasor manifold while preserving every phase.
    Fully deterministic - phases never tie the way signs do at zero - so
    deterministic phasor runs replay bit-identically.
    """

    deterministic = True

    def __call__(self, values: np.ndarray) -> np.ndarray:
        from repro.vsa.fhrr import spectral_normalize

        return spectral_normalize(values)

    def __repr__(self) -> str:
        return "PhaseActivation()"


class IdentityActivation(Activation):
    """Pass-through activation (real-valued resonator states).

    Used for analysis only: the hardware always re-binarizes (step IV is
    1-bit), but real-valued states expose the underlying dynamics in tests.
    """

    deterministic = True

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    def __repr__(self) -> str:
        return "IdentityActivation()"


def make_activation(name: str, *, rng: RandomState = None) -> Activation:
    """Factory: ``"sign"``, ``"sign-random"``, ``"phase"`` or ``"identity"``."""
    if name == "sign":
        return SignActivation("positive")
    if name == "sign-random":
        return SignActivation("random", rng=rng)
    if name == "phase":
        return PhaseActivation()
    if name == "identity":
        return IdentityActivation()
    raise ConfigurationError(
        f"unknown activation {name!r}; expected sign/sign-random/phase/identity"
    )
