"""Vectorized batched resonator: all trials advance as stacked arrays.

:class:`BatchedResonatorNetwork` runs ``T`` independent factorization
trials simultaneously.  Each factor's estimate is a ``(T, dim)`` array and
each of the two MVMs per factor per sweep becomes one stacked matrix
product (`similarity_batch` / `project_batch` on the backend), so the
Python interpreter is invoked once per step per sweep instead of once per
step per sweep *per trial*.  This is the software analogue of the paper's
Sec. IV-A batch operation, where tier-1's SRAM buffers stream a whole
batch of queries through the programmed RRAM arrays.

Semantics match :class:`~repro.resonator.network.ResonatorNetwork` trial
by trial:

* factors update asynchronously within a sweep (factor ``f`` sees factor
  ``f-1``'s fresh estimate), exactly like the sequential network;
* deterministic configurations stop per trial on fixed points and limit
  cycles via the same digest machinery
  (:mod:`repro.resonator.convergence`);
* stochastic configurations stop per trial on the solved check (decoded
  factors recompose the product) or the stable-decode window.

Because bipolar MVMs are exact in float32 (all partial sums stay below
``2**24``), a deterministic trial takes *bit-identical* steps in the
batched and sequential networks: same trajectory, same convergence sweep,
same decoded factors.  ``tests/test_batched_resonator.py`` pins this.

**Convergence masking.**  Finished trials are masked out: their estimates
freeze and they stop contributing to decode checks and op counts.  The
compute set is compacted lazily (only once the active trials fall to half
of the current set) so the stacked codebook tensors are rebuilt at most
``log2(T)`` times per run instead of at every convergence event.

**Codebooks.**  The batch may share one :class:`~repro.vsa.codebook.CodebookSet`
(one programmed array per factor, many queries - the ``share_codebooks``
situation) or give each trial its own set of identical geometry, in which
case the exact backend stacks them into ``(T, dim, M)`` tensors and uses
batched matmul.

**Profiling.**  Attach a :class:`~repro.resonator.profiler.ResonatorProfiler`
via ``profiler``; each vectorized step records op/flop counts scaled by the
number of active trials, so batched and sequential runs of the same
trajectories report identical deterministic op totals.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.resonator.activations import Activation, PhaseActivation, SignActivation
from repro.resonator.backends import (
    CodebookBatch,
    ExactBackend,
    MVMBackend,
    PhasorBackend,
)
from repro.resonator.convergence import CycleDetector, Outcome, state_digest
from repro.resonator.network import (
    FactorizationResult,
    ResonatorNetwork,
    initial_factor_estimate,
)
from repro.resonator.profiler import ResonatorProfiler
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_vector
from repro.vsa import fhrr
from repro.vsa.codebook import CodebookSet
from repro.vsa.ops import DEFAULT_DTYPE

#: One shared codebook set, or one per trial (identical geometry).
CodebookSetBatch = Union[CodebookSet, Sequence[CodebookSet]]


class BatchedResonatorNetwork:
    """Factorizes a batch of product vectors with stacked-array updates.

    Parameters mirror :class:`~repro.resonator.network.ResonatorNetwork`;
    ``codebooks`` may be a single :class:`~repro.vsa.codebook.CodebookSet`
    shared by every trial or a sequence with one set per trial.
    """

    def __init__(
        self,
        codebooks: CodebookSetBatch,
        *,
        backend: Optional[MVMBackend] = None,
        activation: Optional[Activation] = None,
        max_iterations: int = 1000,
        detect_cycles: Optional[bool] = None,
        cycle_window: Optional[int] = 512,
        init: str = "superposition",
        rng: RandomState = None,
    ) -> None:
        if init not in ("superposition", "random"):
            raise ConfigurationError(
                f"init must be 'superposition' or 'random', got {init!r}"
            )
        if isinstance(codebooks, CodebookSet):
            self.shared = True
            self.codebook_sets: List[CodebookSet] = [codebooks]
        else:
            sets = list(codebooks)
            if not sets:
                raise ConfigurationError("at least one codebook set required")
            geometries = {(s.dim, s.sizes, s.algebra) for s in sets}
            if len(geometries) != 1:
                raise DimensionError(
                    "per-trial codebook sets must share (dim, sizes, algebra); "
                    f"got {sorted(geometries)}"
                )
            self.shared = len(sets) == 1
            self.codebook_sets = sets
        complex_algebra = self.codebook_sets[0].algebra == "fhrr"
        if backend is None:
            backend = PhasorBackend() if complex_algebra else ExactBackend()
        if complex_algebra and not backend.supports_complex:
            raise ConfigurationError(
                f"backend {backend!r} does not support complex (FHRR) "
                "codebooks; use PhasorBackend or another backend with "
                "supports_complex=True"
            )
        self.backend = backend
        if activation is None:
            activation = (
                PhaseActivation() if complex_algebra else SignActivation("positive")
            )
        self.activation = activation
        self.max_iterations = int(max_iterations)
        if self.max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {max_iterations}"
            )
        deterministic = self.backend.deterministic and self.activation.deterministic
        self.detect_cycles = (
            deterministic if detect_cycles is None else bool(detect_cycles)
        )
        self.cycle_window = cycle_window
        self.init = init
        self._rng = as_rng(rng)
        self.profiler: Optional[ResonatorProfiler] = None
        #: Exact clean-read MVMs for decoding (the final averaged read the
        #: digital tier can afford; see ResonatorNetwork.decode).
        self._decoder = ExactBackend()

    @classmethod
    def from_network(
        cls, network: ResonatorNetwork, codebooks: CodebookSetBatch
    ) -> "BatchedResonatorNetwork":
        """Batched twin of a configured sequential network.

        Copies backend, activation, iteration budget, termination settings,
        random stream and profiler; ``codebooks`` replaces the sequential
        network's single codebook set with the batch's set(s).
        """
        batched = cls(
            codebooks,
            backend=network.backend,
            activation=network.activation,
            max_iterations=network.max_iterations,
            detect_cycles=network.detect_cycles,
            cycle_window=network.cycle_window,
            init=network.init,
            rng=network._rng,
        )
        batched.profiler = network.profiler
        return batched

    # -- geometry -----------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.codebook_sets[0].dim

    @property
    def num_factors(self) -> int:
        return self.codebook_sets[0].num_factors

    @property
    def algebra(self) -> str:
        return self.codebook_sets[0].algebra

    def _factor_batch(self, factor: int, trial_rows: np.ndarray) -> CodebookBatch:
        """Backend ``codebooks`` argument for one factor over ``trial_rows``."""
        if self.shared:
            return self.codebook_sets[0][factor]
        return [self.codebook_sets[t][factor] for t in trial_rows]

    def _set_for(self, trial: int) -> CodebookSet:
        return self.codebook_sets[0] if self.shared else self.codebook_sets[trial]

    # -- initialization -----------------------------------------------------

    def initial_estimates(self, trials: int) -> List[np.ndarray]:
        """Per-factor ``(trials, dim)`` initial states.

        Each trial gets its own superposition (or random) initialization
        with its own tie-break draws, in trial-major order - the same
        per-trial recipe as :meth:`ResonatorNetwork.initial_estimates`.
        """
        dtype = fhrr.COMPLEX_DTYPE if self.algebra == "fhrr" else DEFAULT_DTYPE
        estimates = [
            np.empty((trials, self.dim), dtype=dtype)
            for _ in range(self.num_factors)
        ]
        for trial in range(trials):
            codebooks = self._set_for(trial)
            for f, codebook in enumerate(codebooks):
                estimates[f][trial] = initial_factor_estimate(
                    codebook, self.init, self._rng
                )
        return estimates

    # -- decoding -----------------------------------------------------------

    def _decode_rows(
        self, estimates: List[np.ndarray], rows: np.ndarray
    ) -> np.ndarray:
        """Decoded factor indices, shape ``(len(rows), num_factors)``.

        Runs on the exact similarity (a clean final read), matching
        :meth:`ResonatorNetwork.decode` bit for bit: bipolar similarities
        are integer-valued and exact in float32, and ``argmax`` breaks ties
        identically.  The complex (FHRR) path loops per row through
        ``Codebook.similarities`` - the very call the sequential decode
        makes - so the argmax inputs are bitwise identical by construction.
        """
        decoded = np.empty((len(rows), self.num_factors), dtype=np.int64)
        if self.algebra == "fhrr":
            for pos, t in enumerate(rows):
                codebooks = self._set_for(int(t))
                for f, codebook in enumerate(codebooks):
                    sims = codebook.similarities(estimates[f][t])
                    decoded[pos, f] = int(np.argmax(sims))
            return decoded
        for f in range(self.num_factors):
            books = self._factor_batch(f, rows)
            sims = self._decoder.similarity_batch(books, estimates[f][rows])
            decoded[:, f] = np.argmax(sims, axis=1)
        return decoded

    def _recompose_rows(self, decoded: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Products of the decoded item vectors, shape ``(len(rows), dim)``."""
        if self.algebra == "fhrr":
            # Per-row compose() keeps the FFT call sequence identical to
            # the sequential solved check, so recompose equality agrees
            # bitwise between engines.
            product = np.empty((len(rows), self.dim), dtype=fhrr.COMPLEX_DTYPE)
            for pos, t in enumerate(rows):
                product[pos] = self._set_for(int(t)).compose(
                    [int(i) for i in decoded[pos]]
                )
            return product
        product = np.ones((len(rows), self.dim), dtype=np.float32)
        for f in range(self.num_factors):
            books = self._factor_batch(f, rows)
            if self.shared:
                matrix = self._decoder.matrix32(books)
                chosen = matrix[:, decoded[:, f]].T
            else:
                stack = self._decoder.stack32(books)
                chosen = np.take_along_axis(
                    stack, decoded[:, f][:, None, None], axis=2
                )[:, :, 0]
            product *= chosen
        return product

    # -- main loop ----------------------------------------------------------

    def factorize(
        self,
        products: np.ndarray,
        *,
        max_iterations: Optional[int] = None,
        initial_estimates: Optional[Sequence[np.ndarray]] = None,
        true_indices: Optional[Sequence[Optional[Sequence[int]]]] = None,
        check_correct_every: int = 1,
        stable_decode_window: Optional[int] = None,
    ) -> List[FactorizationResult]:
        """Factorize ``products`` (shape ``(trials, dim)``), one result each.

        Parameters match :meth:`ResonatorNetwork.factorize` with the batch
        axis prepended: ``initial_estimates`` is one ``(trials, dim)`` array
        per factor, ``true_indices`` one index tuple (or ``None``) per
        trial.  Termination is evaluated per trial; finished trials are
        masked out and the rest keep sweeping.
        """
        products = np.asarray(products)
        if products.ndim != 2 or products.shape[1] != self.dim:
            raise DimensionError(
                f"products shape {products.shape} does not match "
                f"(trials, {self.dim})"
            )
        check_vector("products", products, algebra=self.algebra)
        trials = products.shape[0]
        if not self.shared and trials != len(self.codebook_sets):
            raise DimensionError(
                f"{trials} products for {len(self.codebook_sets)} "
                "per-trial codebook sets"
            )
        budget = self.max_iterations if max_iterations is None else int(max_iterations)
        if budget <= 0:
            raise ConfigurationError(f"max_iterations must be positive, got {budget}")
        stochastic = not (
            self.backend.deterministic and self.activation.deterministic
        )
        self.backend.begin_trial()

        complex_algebra = self.algebra == "fhrr"
        state_dtype = fhrr.COMPLEX_DTYPE if complex_algebra else DEFAULT_DTYPE
        if initial_estimates is None:
            estimates = self.initial_estimates(trials)
        else:
            estimates = [
                np.asarray(e).astype(state_dtype) for e in initial_estimates
            ]
            if len(estimates) != self.num_factors:
                raise DimensionError(
                    f"{len(estimates)} initial estimates for "
                    f"{self.num_factors} factors"
                )
            for e in estimates:
                if e.shape != (trials, self.dim):
                    raise DimensionError(
                        f"initial estimate shape {e.shape} does not match "
                        f"({trials}, {self.dim})"
                    )

        truths: List[Optional[Tuple[int, ...]]]
        if true_indices is None:
            truths = [None] * trials
        else:
            if len(true_indices) != trials:
                raise DimensionError(
                    f"{len(true_indices)} true-index tuples for {trials} trials"
                )
            truths = [
                None if t is None else tuple(int(i) for i in t)
                for t in true_indices
            ]

        products_cast = products.astype(
            fhrr.COMPLEX_DTYPE if complex_algebra else np.float32
        )
        profiler = self.profiler
        cadence = max(check_correct_every, 1)
        start = time.perf_counter()

        active = np.ones(trials, dtype=bool)
        compute_idx = np.arange(trials)
        iterations = np.zeros(trials, dtype=np.int64)
        outcomes: List[Outcome] = [Outcome.MAX_ITERATIONS] * trials
        cycle_periods: List[Optional[int]] = [None] * trials
        first_correct: List[Optional[int]] = [None] * trials
        previous_digest: List[bytes] = [
            state_digest([estimates[f][t] for f in range(self.num_factors)])
            for t in range(trials)
        ]
        detect = self.detect_cycles and not stochastic
        detectors: List[Optional[CycleDetector]] = [
            CycleDetector(window=self.cycle_window) if detect else None
            for _ in range(trials)
        ]
        previous_decode: List[Optional[Tuple[int, ...]]] = [None] * trials
        stable_checks = np.zeros(trials, dtype=np.int64)

        for iteration in range(budget):
            rows = compute_idx[active[compute_idx]]
            if rows.size == 0:
                break
            self._sweep(products_cast, estimates, compute_idx, active, profiler)
            iterations[rows] = iteration + 1
            check_now = iteration % cadence == 0 or iteration + 1 >= budget
            decoded: Optional[np.ndarray] = None
            if check_now:
                # Decode the whole compute set (its stacked tensors are
                # cache-stable between compactions), then keep active rows.
                mask = active[compute_idx]
                decoded_all = self._decode_rows(estimates, compute_idx)
                decoded = decoded_all[mask]
                for pos, t in enumerate(rows):
                    truth = truths[t]
                    if (
                        truth is not None
                        and first_correct[t] is None
                        and tuple(decoded[pos]) == truth
                    ):
                        first_correct[t] = iteration + 1
            if stochastic:
                if decoded is not None:
                    recomposed = self._recompose_rows(decoded_all, compute_idx)[
                        active[compute_idx]
                    ]
                    solved = np.all(
                        recomposed == products_cast[rows], axis=1
                    )
                    for pos, t in enumerate(rows):
                        if solved[pos]:
                            outcomes[t] = Outcome.CONVERGED
                            active[t] = False
                            continue
                        if stable_decode_window is not None:
                            this_decode = tuple(decoded[pos])
                            if this_decode == previous_decode[t]:
                                stable_checks[t] += 1
                                if stable_checks[t] + 1 >= stable_decode_window:
                                    outcomes[t] = Outcome.CONVERGED
                                    active[t] = False
                            else:
                                stable_checks[t] = 0
                            previous_decode[t] = this_decode
            else:
                solved_rows: set = set()
                if complex_algebra and decoded is not None:
                    # Mirror of the sequential deterministic solved check
                    # (see ResonatorNetwork.factorize): a phasor trajectory
                    # never repeats bitwise, so exact recomposition - via
                    # the same per-row compose() call - is the complex
                    # convergence criterion, evaluated before the digest
                    # tests in both engines.
                    recomposed = self._recompose_rows(decoded_all, compute_idx)[
                        active[compute_idx]
                    ]
                    solved = np.all(recomposed == products_cast[rows], axis=1)
                    for pos, t in enumerate(rows):
                        if solved[pos]:
                            outcomes[t] = Outcome.CONVERGED
                            active[t] = False
                            solved_rows.add(int(t))
                for t in rows:
                    if int(t) in solved_rows:
                        continue
                    digest = state_digest(
                        [estimates[f][t] for f in range(self.num_factors)]
                    )
                    if digest == previous_digest[t]:
                        outcomes[t] = Outcome.CONVERGED
                        active[t] = False
                        continue
                    detector = detectors[t]
                    if detector is not None:
                        period = detector.observe_digest(digest, iteration)
                        if period is not None and period > 1:
                            outcomes[t] = Outcome.LIMIT_CYCLE
                            cycle_periods[t] = period
                            active[t] = False
                            continue
                    previous_digest[t] = digest
            remaining = int(active.sum())
            if remaining == 0:
                break
            if remaining <= compute_idx.size // 2:
                compute_idx = np.nonzero(active)[0]

        elapsed = time.perf_counter() - start

        all_rows = np.arange(trials)
        decoded = self._decode_rows(estimates, all_rows)
        recomposed = self._recompose_rows(decoded, all_rows)
        matches = np.all(recomposed == products_cast, axis=1)
        results: List[FactorizationResult] = []
        for t in range(trials):
            indices = tuple(int(i) for i in decoded[t])
            truth = truths[t]
            correct = None if truth is None else (indices == truth)
            first = first_correct[t]
            if correct:
                if first is None:
                    first = int(iterations[t])
            else:
                first = None
            results.append(
                FactorizationResult(
                    indices=indices,
                    outcome=outcomes[t],
                    iterations=int(iterations[t]),
                    product_match=bool(matches[t]),
                    correct=correct,
                    first_correct_iteration=first,
                    cycle_period=cycle_periods[t],
                    elapsed_seconds=elapsed / trials,
                )
            )
        return results

    # -- one vectorized sweep ----------------------------------------------

    def _sweep(
        self,
        products_cast: np.ndarray,
        estimates: List[np.ndarray],
        compute_idx: np.ndarray,
        active: np.ndarray,
        profiler: Optional[ResonatorProfiler],
    ) -> None:
        """One asynchronous sweep over the compute set.

        All compute-set rows run through the stacked MVMs (keeping the
        codebook tensors cache-stable between compactions), but only rows
        still active are written back, so finished trials stay frozen.
        Profiler counts are scaled by the *active* row count - the work the
        sequential network would have done for the same trajectories.
        """
        num_factors = self.num_factors
        write_mask = active[compute_idx]
        write_rows = compute_idx[write_mask]
        n_active = int(write_mask.sum())
        dim = self.dim
        # Tell per-trial-stream backends which global trial each stacked
        # row belongs to (no-op for backends without trial identity).
        self.backend.select_trials(compute_idx)
        if self.algebra == "fhrr":
            self._sweep_complex(
                products_cast, estimates, write_rows, n_active, profiler
            )
            return
        for f in range(num_factors):
            books = self._factor_batch(f, compute_idx)
            tick = time.perf_counter() if profiler is not None else 0.0
            # Advanced indexing already yields a fresh array, safe to
            # mutate in place below.
            unbound = products_cast[compute_idx]
            for g in range(num_factors):
                if g != f:
                    unbound *= estimates[g][compute_idx]
            if profiler is not None:
                tock = time.perf_counter()
                profiler.record(
                    "unbind",
                    elements=dim * num_factors * n_active,
                    flops=dim * (num_factors - 1) * n_active,
                    seconds=tock - tick,
                    calls=n_active,
                )
                tick = tock
            sims = self.backend.similarity_batch(books, unbound)
            if profiler is not None:
                tock = time.perf_counter()
                size = sims.shape[1]
                profiler.record(
                    "similarity",
                    elements=dim * size * n_active,
                    flops=self.backend.similarity_flops(books) * n_active,
                    seconds=tock - tick,
                    calls=n_active,
                )
                tick = tock
            projected = self.backend.project_batch(books, sims)
            if profiler is not None:
                tock = time.perf_counter()
                size = sims.shape[1]
                profiler.record(
                    "projection",
                    elements=dim * size * n_active,
                    flops=self.backend.project_flops(books) * n_active,
                    seconds=tock - tick,
                    calls=n_active,
                )
                tick = tock
            updated = self.activation(projected)
            if profiler is not None:
                tock = time.perf_counter()
                profiler.record(
                    "activation",
                    elements=dim * n_active,
                    flops=dim * n_active,
                    seconds=tock - tick,
                    calls=n_active,
                )
            estimates[f][write_rows] = updated[write_mask]

    def _sweep_complex(
        self,
        products_cast: np.ndarray,
        estimates: List[np.ndarray],
        write_rows: np.ndarray,
        n_active: int,
        profiler: Optional[ResonatorProfiler],
    ) -> None:
        """One asynchronous sweep of the FHRR (phasor) state, per trial.

        Deliberately loops per active row through the *same* kernels the
        sequential network calls - :func:`repro.vsa.fhrr.resonator_unbind`,
        ``backend.similarity`` / ``backend.project``, and the activation -
        so a deterministic phasor trial takes bit-identical steps in both
        engines (the complex analogue of the bipolar float32-exactness
        argument).  Rows are independent, so the row-major inner loop
        changes nothing relative to the sequential factor-major order
        within each trial.

        Profiler records use the same exact cost formulas per trial as
        :meth:`ResonatorNetwork._sweep`, scaled by ``n_active``.
        """
        num_factors = self.num_factors
        dim = self.dim
        unbind_cost = fhrr.unbind_flops(dim, num_factors)
        activation_cost = fhrr.phase_activation_flops(dim)
        for f in range(num_factors):
            size = self._set_for(int(write_rows[0]))[f].size if n_active else 0
            tick = time.perf_counter() if profiler is not None else 0.0
            unbound_rows = {}
            for t in write_rows:
                unbound_rows[int(t)] = fhrr.resonator_unbind(
                    products_cast[t],
                    [estimates[g][t] for g in range(num_factors)],
                    f,
                )
            if profiler is not None:
                tock = time.perf_counter()
                profiler.record(
                    "unbind",
                    elements=dim * num_factors * n_active,
                    flops=unbind_cost * n_active,
                    seconds=tock - tick,
                    calls=n_active,
                )
                tick = tock
            sims_rows = {}
            for t in write_rows:
                codebook = self._set_for(int(t))[f]
                sims_rows[int(t)] = self.backend.similarity(
                    codebook, unbound_rows[int(t)]
                )
            if profiler is not None:
                tock = time.perf_counter()
                profiler.record(
                    "similarity",
                    elements=dim * size * n_active,
                    flops=(
                        self.backend.similarity_flops(
                            self._set_for(int(write_rows[0]))[f]
                        )
                        * n_active
                        if n_active
                        else 0
                    ),
                    seconds=tock - tick,
                    calls=n_active,
                )
                tick = tock
            projected_rows = {}
            for t in write_rows:
                codebook = self._set_for(int(t))[f]
                projected_rows[int(t)] = self.backend.project(
                    codebook, sims_rows[int(t)]
                )
            if profiler is not None:
                tock = time.perf_counter()
                profiler.record(
                    "projection",
                    elements=dim * size * n_active,
                    flops=(
                        self.backend.project_flops(
                            self._set_for(int(write_rows[0]))[f]
                        )
                        * n_active
                        if n_active
                        else 0
                    ),
                    seconds=tock - tick,
                    calls=n_active,
                )
                tick = tock
            for t in write_rows:
                estimates[f][t] = self.activation(projected_rows[int(t)])
            if profiler is not None:
                tock = time.perf_counter()
                profiler.record(
                    "activation",
                    elements=dim * n_active,
                    flops=activation_cost * n_active,
                    seconds=tock - tick,
                    calls=n_active,
                )

    def __repr__(self) -> str:
        mode = "shared" if self.shared else f"{len(self.codebook_sets)} sets"
        return (
            f"BatchedResonatorNetwork({mode}, backend={self.backend!r}, "
            f"activation={self.activation!r})"
        )
