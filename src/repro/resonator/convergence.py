"""Convergence and limit-cycle instrumentation for resonator runs.

The deterministic resonator is a discrete dynamical system on a finite state
space, so every trajectory either reaches a fixed point or enters a limit
cycle (Fig. 2b).  :class:`CycleDetector` hashes visited states to detect
revisits exactly; :class:`ConvergenceMonitor` combines fixed-point detection,
cycle detection and an iteration budget into a single verdict.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


class Outcome(enum.Enum):
    """Terminal status of a factorization run."""

    #: Reached a fixed point (state identical across consecutive sweeps).
    CONVERGED = "converged"
    #: Revisited a previously seen state with period > 1.
    LIMIT_CYCLE = "limit_cycle"
    #: Iteration budget exhausted without a fixed point or detected cycle.
    MAX_ITERATIONS = "max_iterations"
    #: Run still in progress (only visible mid-run).
    RUNNING = "running"


def state_digest(estimates: Sequence[np.ndarray]) -> bytes:
    """Collision-resistant digest of a resonator state.

    Bipolar estimates are packed to bits first so the digest cost stays low
    even at D = 2048.  Complex phasor estimates (the FHRR resonator) have
    no 1-bit canonical form - the ``> 0`` comparison is not even defined on
    complex dtypes - so their raw bytes are hashed instead; blake2b keeps
    the digest short and fast either way.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for estimate in estimates:
        values = np.asarray(estimate)
        if np.issubdtype(values.dtype, np.complexfloating):
            hasher.update(np.ascontiguousarray(values).tobytes())
        else:
            hasher.update(np.packbits(values > 0).tobytes())
    return hasher.digest()


class CycleDetector:
    """Exact limit-cycle detection via a visited-state hash map.

    ``window`` bounds memory: only the most recent ``window`` states are
    remembered (the paper's limit cycles are short - a handful of states -
    so a small window detects them while keeping long stochastic runs cheap).
    ``window=None`` remembers everything.
    """

    def __init__(self, window: Optional[int] = 512) -> None:
        self.window = window
        self._seen: Dict[bytes, int] = {}
        self._order: List[bytes] = []

    def reset(self) -> None:
        self._seen.clear()
        self._order.clear()

    def observe(self, estimates: Sequence[np.ndarray], iteration: int) -> Optional[int]:
        """Record the state; return the cycle period if this is a revisit."""
        return self.observe_digest(state_digest(estimates), iteration)

    def observe_digest(self, digest: bytes, iteration: int) -> Optional[int]:
        """Like :meth:`observe` for a pre-computed :func:`state_digest`.

        The batched resonator digests each trial's state once per sweep and
        feeds the digest to both the fixed-point check and its per-trial
        cycle detector, so the hashing cost is not paid twice.
        """
        previous = self._seen.get(digest)
        if previous is not None:
            return iteration - previous
        self._seen[digest] = iteration
        self._order.append(digest)
        if self.window is not None and len(self._order) > self.window:
            oldest = self._order.pop(0)
            self._seen.pop(oldest, None)
        return None

    @property
    def states_tracked(self) -> int:
        return len(self._seen)


@dataclass
class ConvergenceMonitor:
    """Aggregates the three stopping conditions of a resonator run.

    Parameters
    ----------
    max_iterations:
        Hard budget on the number of full sweeps.
    detect_cycles:
        Whether to run the :class:`CycleDetector`.  Only meaningful for
        deterministic configurations: with read-out noise a revisited state
        does not imply a trapped trajectory, so the resonator must be allowed
        to pass through repeats (this *is* the H3DFact escape mechanism).
    cycle_window:
        History window forwarded to :class:`CycleDetector`.
    """

    max_iterations: int = 1000
    detect_cycles: bool = True
    cycle_window: Optional[int] = 512
    _detector: CycleDetector = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        self._detector = CycleDetector(window=self.cycle_window)
        self.reset()

    def reset(self) -> None:
        self._detector.reset()
        self.outcome = Outcome.RUNNING
        self.cycle_period: Optional[int] = None
        self.iterations_run = 0

    def update(
        self,
        estimates: Sequence[np.ndarray],
        previous_digest: Optional[bytes],
        iteration: int,
    ) -> Outcome:
        """Feed one completed sweep; returns the (possibly terminal) outcome."""
        self.iterations_run = iteration + 1
        digest = state_digest(estimates)
        if previous_digest is not None and digest == previous_digest:
            self.outcome = Outcome.CONVERGED
            return self.outcome
        if self.detect_cycles:
            period = self._detector.observe(estimates, iteration)
            if period is not None and period > 1:
                self.outcome = Outcome.LIMIT_CYCLE
                self.cycle_period = period
                return self.outcome
        if iteration + 1 >= self.max_iterations:
            self.outcome = Outcome.MAX_ITERATIONS
            return self.outcome
        self.outcome = Outcome.RUNNING
        return self.outcome
