"""Op-level profiling of resonator runs (reproduces Fig. 1c).

The paper motivates CIM by showing that the similarity and projection MVMs
account for ~80 % of factorization compute.  Historically the breakdown was
measured with wall-clock timers, which made the Fig. 1c test flaky: Python
interpreter jitter easily swamps a sub-millisecond sweep.  The profiler
therefore accounts for three quantities per step type:

* ``calls``    - number of step invocations;
* ``elements`` - processed elements (MACs for the MVM steps), the coarse
  op count the original profiler reported;
* ``flops``    - exact floating-point operation counts (2 flops per MAC
  for the MVMs, one multiply per unbind element, one compare per
  activation element), reported by the backends themselves via
  :meth:`~repro.resonator.backends.MVMBackend.similarity_flops` /
  :meth:`~repro.resonator.backends.MVMBackend.project_flops`;
* ``seconds``  - wall-clock, kept only as a sanity signal.

Fig. 1c's headline ``mvm_time_fraction`` is the *flop-weighted* fraction:
it is fully deterministic (identical on every run and machine) and tracks
the paper's "fraction of compute" story far better than noisy timers.
Wall-clock numbers remain available through :meth:`time_fractions` and are
never asserted on by tests.

Both :class:`~repro.resonator.network.ResonatorNetwork` and
:class:`~repro.resonator.batched.BatchedResonatorNetwork` feed the same
profiler; attach one via the network's ``profiler`` attribute.  The batched
network records each vectorized step once per sweep with counts scaled by
the number of still-active trials, so sequential and batched runs of the
same trajectories produce identical op and flop totals.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

#: Step names emitted by :class:`~repro.resonator.network.ResonatorNetwork`.
STEP_NAMES: Tuple[str, ...] = ("unbind", "similarity", "projection", "activation")

#: Steps that are matrix-vector multiplies (the CIM-accelerated kernels).
MVM_STEPS: Tuple[str, ...] = ("similarity", "projection")


@dataclass
class StepTiming:
    """Accumulated cost of one step type."""

    calls: int = 0
    seconds: float = 0.0
    elements: int = 0
    flops: int = 0

    def add(
        self, seconds: float, elements: int, flops: int = 0, calls: int = 1
    ) -> None:
        self.calls += calls
        self.seconds += seconds
        self.elements += elements
        self.flops += flops


@dataclass
class OpCounts:
    """Arithmetic work per step type, in processed elements (MACs for MVMs)."""

    counts: Dict[str, int] = field(default_factory=dict)

    def fraction(self, steps: Tuple[str, ...] = MVM_STEPS) -> float:
        total = sum(self.counts.values())
        if total == 0:
            return 0.0
        return sum(self.counts.get(s, 0) for s in steps) / total


class ResonatorProfiler:
    """Collects per-step flop counts, op counts and timing across runs."""

    def __init__(self) -> None:
        self.steps: Dict[str, StepTiming] = {name: StepTiming() for name in STEP_NAMES}

    def reset(self) -> None:
        for timing in self.steps.values():
            timing.calls = 0
            timing.seconds = 0.0
            timing.elements = 0
            timing.flops = 0

    def record(
        self,
        name: str,
        *,
        elements: int = 0,
        flops: int = 0,
        seconds: float = 0.0,
        calls: int = 1,
    ) -> None:
        """Directly account one (possibly batched) step invocation."""
        timing = self.steps.setdefault(name, StepTiming())
        timing.add(seconds, elements, flops, calls)

    @contextmanager
    def step(
        self, name: str, *, elements: int = 0, flops: int = 0
    ) -> Iterator[None]:
        """Context manager timing one step invocation."""
        timing = self.steps.setdefault(name, StepTiming())
        start = time.perf_counter()
        try:
            yield
        finally:
            timing.add(time.perf_counter() - start, elements, flops)

    # -- reporting ----------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.steps.values())

    @property
    def total_flops(self) -> int:
        return sum(t.flops for t in self.steps.values())

    def time_fractions(self) -> Dict[str, float]:
        """Wall-clock fraction per step (noisy; never asserted on)."""
        total = self.total_seconds
        if total == 0:
            return {name: 0.0 for name in self.steps}
        return {name: t.seconds / total for name, t in self.steps.items()}

    def flop_fractions(self) -> Dict[str, float]:
        """Deterministic flop-weighted fraction per step (sums to 1)."""
        total = self.total_flops
        if total == 0:
            return {name: 0.0 for name in self.steps}
        return {name: t.flops / total for name, t in self.steps.items()}

    def op_counts(self) -> OpCounts:
        return OpCounts({name: t.elements for name, t in self.steps.items()})

    def mvm_time_fraction(self) -> float:
        """Fraction of wall time spent in similarity+projection MVMs."""
        fractions = self.time_fractions()
        return sum(fractions.get(s, 0.0) for s in MVM_STEPS)

    def mvm_flop_fraction(self) -> float:
        """Deterministic fraction of flops in similarity+projection MVMs."""
        fractions = self.flop_fractions()
        return sum(fractions.get(s, 0.0) for s in MVM_STEPS)

    def mvm_op_fraction(self) -> float:
        """Fraction of arithmetic work in similarity+projection MVMs."""
        return self.op_counts().fraction(MVM_STEPS)

    def report(self) -> str:
        """Multi-line human-readable breakdown."""
        lines = [
            f"{'step':<12}{'calls':>8}{'time [s]':>12}{'flops':>14}"
            f"{'flop %':>9}{'elements':>14}"
        ]
        fractions = self.flop_fractions()
        for name, timing in self.steps.items():
            lines.append(
                f"{name:<12}{timing.calls:>8}{timing.seconds:>12.4f}"
                f"{timing.flops:>14}{100 * fractions[name]:>8.1f}%"
                f"{timing.elements:>14}"
            )
        lines.append(
            f"MVM share: {100 * self.mvm_flop_fraction():.1f}% of flops, "
            f"{100 * self.mvm_op_fraction():.1f}% of ops, "
            f"{100 * self.mvm_time_fraction():.1f}% of wall time"
        )
        return "\n".join(lines)
