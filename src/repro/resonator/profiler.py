"""Op-level profiling of resonator runs (reproduces Fig. 1c).

The paper motivates CIM by showing that the similarity and projection MVMs
account for ~80 % of factorization compute time.  The profiler measures both
wall-clock time and arithmetic work (element/MAC counts) per step type, so
the breakdown can be reported either way - op counts are deterministic and
used by tests, wall time is what Fig. 1c plots.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

#: Step names emitted by :class:`~repro.resonator.network.ResonatorNetwork`.
STEP_NAMES: Tuple[str, ...] = ("unbind", "similarity", "projection", "activation")

#: Steps that are matrix-vector multiplies (the CIM-accelerated kernels).
MVM_STEPS: Tuple[str, ...] = ("similarity", "projection")


@dataclass
class StepTiming:
    """Accumulated cost of one step type."""

    calls: int = 0
    seconds: float = 0.0
    elements: int = 0

    def add(self, seconds: float, elements: int) -> None:
        self.calls += 1
        self.seconds += seconds
        self.elements += elements


@dataclass
class OpCounts:
    """Arithmetic work per step type, in processed elements (MACs for MVMs)."""

    counts: Dict[str, int] = field(default_factory=dict)

    def fraction(self, steps: Tuple[str, ...] = MVM_STEPS) -> float:
        total = sum(self.counts.values())
        if total == 0:
            return 0.0
        return sum(self.counts.get(s, 0) for s in steps) / total


class ResonatorProfiler:
    """Collects per-step timing and op counts across factorization runs."""

    def __init__(self) -> None:
        self.steps: Dict[str, StepTiming] = {name: StepTiming() for name in STEP_NAMES}

    def reset(self) -> None:
        for timing in self.steps.values():
            timing.calls = 0
            timing.seconds = 0.0
            timing.elements = 0

    @contextmanager
    def step(self, name: str, *, elements: int = 0) -> Iterator[None]:
        """Context manager timing one step invocation."""
        timing = self.steps.setdefault(name, StepTiming())
        start = time.perf_counter()
        try:
            yield
        finally:
            timing.add(time.perf_counter() - start, elements)

    # -- reporting ----------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.steps.values())

    def time_fractions(self) -> Dict[str, float]:
        """Wall-clock fraction per step (sums to 1 when any time recorded)."""
        total = self.total_seconds
        if total == 0:
            return {name: 0.0 for name in self.steps}
        return {name: t.seconds / total for name, t in self.steps.items()}

    def op_counts(self) -> OpCounts:
        return OpCounts({name: t.elements for name, t in self.steps.items()})

    def mvm_time_fraction(self) -> float:
        """Fraction of wall time spent in similarity+projection MVMs."""
        fractions = self.time_fractions()
        return sum(fractions.get(s, 0.0) for s in MVM_STEPS)

    def mvm_op_fraction(self) -> float:
        """Fraction of arithmetic work in similarity+projection MVMs."""
        return self.op_counts().fraction(MVM_STEPS)

    def report(self) -> str:
        """Multi-line human-readable breakdown."""
        lines = [f"{'step':<12}{'calls':>8}{'time [s]':>12}{'time %':>9}{'elements':>14}"]
        fractions = self.time_fractions()
        for name, timing in self.steps.items():
            lines.append(
                f"{name:<12}{timing.calls:>8}{timing.seconds:>12.4f}"
                f"{100 * fractions[name]:>8.1f}%{timing.elements:>14}"
            )
        lines.append(
            f"MVM share: {100 * self.mvm_time_fraction():.1f}% of time, "
            f"{100 * self.mvm_op_fraction():.1f}% of ops"
        )
        return "\n".join(lines)
