"""Workload mapping: factorization steps onto stack tiers.

Fig. 3 partitions one resonator update into four steps:

=====  ============================  =================  ==========
step   operation                     H3D tier           signal
=====  ============================  =================  ==========
I      unbinding (XNOR)              tier-1 digital     1-bit dig.
II     similarity MVM                tier-3 RRAM        analog I
III    ADC + buffering               tier-1 digital     4-bit dig.
IV     projection MVM + sign         tier-2 RRAM        1-bit dig.
=====  ============================  =================  ==========

A :class:`WorkloadMapping` assigns each step to a tier and validates the
assignment against the tier capabilities (MVMs need CIM tiers, digital
steps need the digital tier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.arch.tier import Tier, TierKind
from repro.errors import MappingError

#: The four dataflow steps of Fig. 3, in execution order.
STEP_NAMES: Tuple[str, ...] = ("unbind", "similarity", "convert", "projection")

#: Which tier kinds may execute each step.
_ALLOWED_KINDS = {
    "unbind": (TierKind.DIGITAL,),
    "similarity": (TierKind.RRAM_CIM, TierKind.SRAM_CIM),
    "convert": (TierKind.DIGITAL,),
    "projection": (TierKind.RRAM_CIM, TierKind.SRAM_CIM),
}


@dataclass(frozen=True)
class WorkloadMapping:
    """Assignment of factorization steps to named tiers."""

    assignment: Dict[str, str]
    tiers: Dict[str, Tier]

    def __post_init__(self) -> None:
        missing = set(STEP_NAMES) - set(self.assignment)
        if missing:
            raise MappingError(f"mapping misses steps: {sorted(missing)}")
        unknown = set(self.assignment) - set(STEP_NAMES)
        if unknown:
            raise MappingError(f"mapping has unknown steps: {sorted(unknown)}")
        for step, tier_name in self.assignment.items():
            if tier_name not in self.tiers:
                raise MappingError(
                    f"step {step!r} mapped to unknown tier {tier_name!r}"
                )
            tier = self.tiers[tier_name]
            if tier.kind not in _ALLOWED_KINDS[step]:
                raise MappingError(
                    f"step {step!r} cannot run on tier {tier_name!r} of kind "
                    f"{tier.kind.value}"
                )

    @classmethod
    def h3dfact(cls, tiers: Dict[str, Tier]) -> "WorkloadMapping":
        """The paper's canonical 3-tier mapping."""
        return cls(
            assignment={
                "unbind": "tier1",
                "similarity": "tier3",
                "convert": "tier1",
                "projection": "tier2",
            },
            tiers=tiers,
        )

    @classmethod
    def monolithic(cls, tiers: Dict[str, Tier], cim_tier: str,
                   digital_tier: str) -> "WorkloadMapping":
        """2D mapping: one CIM region + one digital region on a single die."""
        return cls(
            assignment={
                "unbind": digital_tier,
                "similarity": cim_tier,
                "convert": digital_tier,
                "projection": cim_tier,
            },
            tiers=tiers,
        )

    def tier_for(self, step: str) -> Tier:
        if step not in self.assignment:
            raise MappingError(f"unknown step {step!r}")
        return self.tiers[self.assignment[step]]

    @property
    def rram_steps(self) -> List[str]:
        """Steps that execute on RRAM tiers (drive tier activation)."""
        return [
            step
            for step in STEP_NAMES
            if self.tiers[self.assignment[step]].kind is TierKind.RRAM_CIM
        ]

    def uses_distinct_rram_tiers(self) -> bool:
        """True when similarity and projection live on different RRAM tiers."""
        sim = self.assignment["similarity"]
        proj = self.assignment["projection"]
        return (
            sim != proj
            and self.tiers[sim].kind is TierKind.RRAM_CIM
            and self.tiers[proj].kind is TierKind.RRAM_CIM
        )
