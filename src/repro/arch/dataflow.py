"""Cycle-level dataflow simulation of the factorization pipeline.

Simulates one resonator sweep (steps I-IV of Fig. 3 for every factor) over
a batch, honouring:

* the single-active-RRAM-tier constraint - similarity (tier-3) and
  projection (tier-2) MVMs cannot overlap, and switching tiers costs
  level-shifter cycles;
* SRAM buffering (Sec. IV-A) - tier-1 buffers ADC outputs so a whole
  batch of similarity results can be produced before the stack switches to
  the projection tier, instead of thrashing the tiers per batch element;
* per-step latencies from the array geometry (row phases x ADC cycles).

The simulator returns an :class:`IterationTiming` whose cycle counts feed
the throughput model and whose buffer/activation statistics are asserted in
tests (the batch-size > 1 motivation of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.arch.mapping import WorkloadMapping
from repro.arch.stack import H3DStack
from repro.arch.tier import TierKind
from repro.cim.sram.buffer import SRAMBuffer
from repro.errors import ConfigurationError, MappingError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StepLatency:
    """Cycle cost of each pipeline step for one factor of one element."""

    unbind: int = 1
    similarity: int = 69
    convert: int = 2
    projection: int = 69

    def __post_init__(self) -> None:
        for name in ("unbind", "similarity", "convert", "projection"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} latency must be positive")

    @classmethod
    def from_geometry(
        cls,
        *,
        rows: int = 256,
        parallel_rows: int = 32,
        adc_cycles: int = 8,
        pipeline_overhead: int = 5,
        input_bits: int = 1,
    ) -> "StepLatency":
        """Derive the MVM interval from array geometry.

        ``ceil(rows / parallel_rows)`` row phases, each taking one ADC
        conversion slot, plus fixed pipeline overhead; multi-bit inputs
        (the 4-bit projection operands) run bit-serially.
        """
        phases = int(np.ceil(rows / parallel_rows))
        mvm = phases * adc_cycles + pipeline_overhead
        return cls(
            unbind=1,
            similarity=mvm,
            convert=2,
            projection=mvm * input_bits,
        )


@dataclass
class IterationTiming:
    """Result of simulating one sweep over a batch."""

    total_cycles: int
    tier_switches: int
    buffer_peak: int
    cycles_per_step: Dict[str, int]
    batch: int
    factors: int

    @property
    def cycles_per_element(self) -> float:
        return self.total_cycles / self.batch if self.batch else 0.0


class DataflowSimulator:
    """Schedules one resonator sweep on a stack under a mapping."""

    def __init__(
        self,
        stack: H3DStack,
        mapping: WorkloadMapping,
        *,
        latency: StepLatency = StepLatency(),
        buffer_capacity: Optional[int] = None,
    ) -> None:
        self.stack = stack
        self.mapping = mapping
        self.latency = latency
        self.buffer_capacity = buffer_capacity

    def simulate_sweep(self, *, batch: int = 1, factors: int = 4) -> IterationTiming:
        """Simulate steps I-IV for ``factors`` factors over ``batch`` inputs.

        Strategy (the paper's batching rationale): for each factor, run
        *all* batch elements' unbind + similarity first (tier-3 stays
        active), buffering ADC words in SRAM; then switch once to tier-2
        and drain the buffer through projection.  Without the buffer the
        stack would have to switch tiers twice per batch element.
        """
        check_positive("batch", batch)
        check_positive("factors", factors)
        buffer_needed = batch  # one similarity word per element per factor
        capacity = (
            self.buffer_capacity if self.buffer_capacity is not None else buffer_needed
        )
        if capacity < buffer_needed:
            raise MappingError(
                f"SRAM buffer of {capacity} entries cannot hold a batch of "
                f"{buffer_needed} similarity words; increase buffer capacity "
                "or reduce batch size"
            )
        buffer = SRAMBuffer(capacity, entry_bits=4 * 256)

        cycles = 0
        per_step: Dict[str, int] = {name: 0 for name in ("unbind", "similarity", "convert", "projection", "switch")}
        controller = self.stack.controller
        distinct_tiers = self.mapping.uses_distinct_rram_tiers()

        for _ in range(factors):
            # Phase A: unbind + similarity for the whole batch on tier-3.
            sim_tier = self.mapping.assignment["similarity"]
            if controller is not None and self.mapping.tier_for(
                "similarity"
            ).kind is TierKind.RRAM_CIM:
                switch = self.stack.activate_rram(sim_tier)
                cycles += switch
                per_step["switch"] += switch
            for element in range(batch):
                cycles += self.latency.unbind
                per_step["unbind"] += self.latency.unbind
                cycles += self.latency.similarity
                per_step["similarity"] += self.latency.similarity
                cycles += self.latency.convert
                per_step["convert"] += self.latency.convert
                buffer.push(element, np.empty(0))
            # Phase B: drain buffer through projection on tier-2.
            proj_tier = self.mapping.assignment["projection"]
            if controller is not None and self.mapping.tier_for(
                "projection"
            ).kind is TierKind.RRAM_CIM:
                switch = self.stack.activate_rram(proj_tier)
                cycles += switch
                per_step["switch"] += switch
            while not buffer.empty:
                buffer.pop()
                cycles += self.latency.projection
                per_step["projection"] += self.latency.projection
            if controller is not None:
                controller.assert_invariant()

        switches = controller.switches if controller is not None else 0
        return IterationTiming(
            total_cycles=cycles,
            tier_switches=switches,
            buffer_peak=buffer.peak_occupancy,
            cycles_per_step=per_step,
            batch=batch,
            factors=factors,
        )

    def naive_sweep_cycles(self, *, batch: int = 1, factors: int = 4) -> int:
        """Cycle count WITHOUT SRAM buffering (tier switch per element).

        Used by the ablation benchmark to quantify the buffering benefit.
        """
        check_positive("batch", batch)
        check_positive("factors", factors)
        switch_cost = (
            self.stack.controller.switch_cycles
            if self.stack.controller is not None
            and self.mapping.uses_distinct_rram_tiers()
            else 0
        )
        per_element = (
            self.latency.unbind
            + self.latency.similarity
            + self.latency.convert
            + self.latency.projection
            + 2 * switch_cost
        )
        return per_element * batch * factors
