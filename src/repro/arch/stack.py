"""The 3D stack: tiers + interconnect + activation control."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.controller import ActivationController
from repro.arch.interconnect import (
    HybridBondSpec,
    InterconnectBudget,
    TSVSpec,
    tsv_count_for_array,
)
from repro.arch.mapping import WorkloadMapping
from repro.arch.tier import Tier, TierKind
from repro.errors import ConfigurationError, MappingError


class H3DStack:
    """A vertically integrated stack of tiers.

    Responsible for the structural bookkeeping the PPA model needs:
    per-tier resources, TSV/bond counts, and the activation controller
    shared by the RRAM tiers.

    Parameters
    ----------
    tiers:
        Tiers ordered bottom (tier-1) to top.
    tsv / bond:
        Interconnect geometry (Table I defaults).
    planar:
        When True the "tiers" are regions of a single 2D die (the Table III
        baseline designs): no vertical interconnect exists and ``is_3d`` is
        False, but mapping/activation semantics are unchanged.
    """

    def __init__(
        self,
        tiers: Sequence[Tier],
        *,
        tsv: TSVSpec = TSVSpec(),
        bond: HybridBondSpec = HybridBondSpec(),
        planar: bool = False,
    ) -> None:
        self.planar = planar
        if not tiers:
            raise ConfigurationError("stack requires at least one tier")
        names = [tier.name for tier in tiers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tier names: {names}")
        self.tiers: Dict[str, Tier] = {tier.name: tier for tier in tiers}
        self.order: List[str] = names
        self.tsv_spec = tsv
        self.bond_spec = bond
        rram_names = [t.name for t in tiers if t.kind is TierKind.RRAM_CIM]
        self.controller: Optional[ActivationController] = (
            ActivationController(rram_names) if rram_names else None
        )

    # -- structure -------------------------------------------------------------

    @property
    def num_tiers(self) -> int:
        return len(self.order)

    @property
    def is_3d(self) -> bool:
        return self.num_tiers > 1 and not self.planar

    @property
    def rram_tiers(self) -> List[Tier]:
        return [t for t in self.tiers.values() if t.kind is TierKind.RRAM_CIM]

    def tier(self, name: str) -> Tier:
        if name not in self.tiers:
            raise MappingError(f"unknown tier {name!r}; have {self.order}")
        return self.tiers[name]

    # -- interconnect ------------------------------------------------------------

    def tsv_count(self) -> int:
        """Total TSVs: each RRAM array connects its WL/BL/SL off-tier.

        2D designs have no vertical interconnect; a 3D stack pays the
        Sec. IV-B per-array count for every array on every RRAM tier
        (tiers share the peripheral *circuits*, but each tier's lines
        still need their own vertical connections to reach them).
        """
        if not self.is_3d:
            return 0
        total = 0
        for tier in self.rram_tiers:
            total += tier.arrays * tsv_count_for_array(
                tier.array_rows, tier.array_cols
            )
        return total

    def bond_count(self) -> int:
        """Hybrid bond pads: one per TSV landing on the face-to-face edge."""
        if not self.is_3d:
            return 0
        # One F2F interface in the 3-tier mix of F2F/F2B (Sec. IV-C); its
        # signal count matches one tier's worth of TSVs.
        per_tier = self.tsv_count() // max(len(self.rram_tiers), 1)
        return per_tier

    def interconnect(self) -> InterconnectBudget:
        return InterconnectBudget(
            tsv_count=self.tsv_count(),
            bond_count=self.bond_count(),
            tsv=self.tsv_spec,
            bond=self.bond_spec,
        )

    # -- activation -----------------------------------------------------------------

    def activate_rram(self, tier_name: str) -> int:
        """Activate one RRAM tier (cycle cost returned); enforces invariant."""
        if self.controller is None:
            raise MappingError("stack has no RRAM tiers to activate")
        cycles = self.controller.activate(tier_name)
        self.controller.assert_invariant()
        return cycles

    @property
    def active_rram_tier(self) -> Optional[str]:
        return self.controller.active_tier if self.controller else None

    def __repr__(self) -> str:
        layers = ", ".join(
            f"{name}({self.tiers[name].node_nm}nm {self.tiers[name].kind.value})"
            for name in self.order
        )
        return f"H3DStack([{layers}])"
