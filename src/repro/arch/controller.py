"""Tier activation control: WL level shifters and power gating.

Because tier-2 and tier-3 share one set of peripherals through common
vertical interconnects, only one RRAM tier may drive the shared bit/source
lines at a time (Sec. IV-A).  Activation is implemented by powering the
wordline level shifters of exactly one RRAM tier; the other tier's cells
must contribute no column current (full shutdown).  The controller enforces
this invariant and tracks switching activity for the energy model.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, MappingError


class PowerState(enum.Enum):
    """Power modes of an RRAM tier (Sec. III-A power-off modes)."""

    ACTIVE = "active"
    STANDBY = "standby"  # powered, WL shifters off
    SHUTDOWN = "shutdown"  # fully power-gated


class ActivationController:
    """Ensures the single-active-RRAM-tier invariant.

    Parameters
    ----------
    rram_tiers:
        Names of the RRAM tiers sharing peripherals (e.g. ``["tier2",
        "tier3"]``).
    switch_cycles:
        Clock cycles consumed by a tier switch (level-shifter enable +
        settling); consumed by the dataflow simulator.
    """

    def __init__(self, rram_tiers: Sequence[str], *, switch_cycles: int = 2) -> None:
        if not rram_tiers:
            raise ConfigurationError("controller needs at least one RRAM tier")
        if len(set(rram_tiers)) != len(rram_tiers):
            raise ConfigurationError(f"duplicate tier names: {rram_tiers}")
        if switch_cycles < 0:
            raise ConfigurationError(
                f"switch_cycles must be non-negative, got {switch_cycles}"
            )
        self.rram_tiers = list(rram_tiers)
        self.switch_cycles = switch_cycles
        self._states: Dict[str, PowerState] = {
            name: PowerState.STANDBY for name in self.rram_tiers
        }
        self.switches = 0
        self.history: List[Optional[str]] = []

    # -- queries ---------------------------------------------------------------

    @property
    def active_tier(self) -> Optional[str]:
        for name, state in self._states.items():
            if state is PowerState.ACTIVE:
                return name
        return None

    def state(self, tier: str) -> PowerState:
        self._check_tier(tier)
        return self._states[tier]

    # -- commands ----------------------------------------------------------------

    def activate(self, tier: str) -> int:
        """Activate ``tier``; deactivates any other active tier first.

        Returns the cycle cost of the operation (0 when already active).
        """
        self._check_tier(tier)
        current = self.active_tier
        if current == tier:
            return 0
        if current is not None:
            self._states[current] = PowerState.STANDBY
        self._states[tier] = PowerState.ACTIVE
        self.switches += 1
        self.history.append(tier)
        return self.switch_cycles

    def deactivate_all(self) -> None:
        for name in self.rram_tiers:
            if self._states[name] is PowerState.ACTIVE:
                self._states[name] = PowerState.STANDBY
        self.history.append(None)

    def shutdown(self, tier: str) -> None:
        """Fully power-gate ``tier`` (it cannot be active)."""
        self._check_tier(tier)
        self._states[tier] = PowerState.SHUTDOWN

    def wake(self, tier: str) -> None:
        self._check_tier(tier)
        if self._states[tier] is PowerState.SHUTDOWN:
            self._states[tier] = PowerState.STANDBY

    def assert_invariant(self) -> None:
        """Raise if more than one RRAM tier is active."""
        active = [
            name
            for name, state in self._states.items()
            if state is PowerState.ACTIVE
        ]
        if len(active) > 1:
            raise MappingError(
                f"single-active-tier invariant violated: {active} all active"
            )

    def _check_tier(self, tier: str) -> None:
        if tier not in self._states:
            raise MappingError(
                f"unknown RRAM tier {tier!r}; known: {self.rram_tiers}"
            )
