"""Prebuilt designs: the three iso-capacity configurations of Table III.

All three designs share compute resources - eight 256 x 256 CIM arrays plus
identical digital support - so the comparison isolates the integration
style (Sec. V-B "We maintain identical computing resources and parameters
across all these designs"):

* **SRAM-2D** - everything on one 16 nm die; MVMs in deterministic SRAM
  CIM; no ADCs (digital accumulation), no TSVs.
* **Hybrid-2D** - one 40 nm die combining RRAM CIM arrays with digital
  logic; RRAM forces the whole die onto the legacy node.
* **H3D** - the paper's 3-tier stack: 2 x 40 nm RRAM tiers (4 arrays
  each) over a 16 nm digital tier; 1024 shared column ADCs; 5120 TSVs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.mapping import WorkloadMapping
from repro.arch.stack import H3DStack
from repro.arch.tier import Tier, TierKind, digital_tier, rram_tier
from repro.errors import ConfigurationError


class DesignStyle(enum.Enum):
    SRAM_2D = "sram-2d"
    HYBRID_2D = "hybrid-2d"
    H3D = "h3d"


@dataclass(frozen=True)
class Design:
    """A complete hardware configuration for the PPA model.

    Attributes mirror the "Hardware Resource" columns of Table III.
    """

    name: str
    style: DesignStyle
    stack: H3DStack
    mapping: WorkloadMapping
    adc_bits: int
    adc_count: int
    #: Batch size the SRAM buffer is provisioned for.
    batch_size: int = 100
    #: Human-readable operation styles (Table III columns).
    unbinding_operation: str = "SRAM Digital"
    mvm_operation: str = "RRAM CIM"

    def __post_init__(self) -> None:
        if self.adc_bits < 0 or self.adc_count < 0:
            raise ConfigurationError("ADC resources must be non-negative")
        if self.batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {self.batch_size}"
            )

    # -- resource roll-ups (Table III bookkeeping) ---------------------------

    @property
    def tsv_count(self) -> int:
        return self.stack.tsv_count()

    @property
    def total_arrays(self) -> int:
        return sum(
            t.arrays
            for t in self.stack.tiers.values()
            if t.kind in (TierKind.RRAM_CIM, TierKind.SRAM_CIM)
        )

    @property
    def array_rows(self) -> int:
        for tier in self.stack.tiers.values():
            if tier.arrays:
                return tier.array_rows
        return 0

    @property
    def array_cols(self) -> int:
        for tier in self.stack.tiers.values():
            if tier.arrays:
                return tier.array_cols
        return 0

    @property
    def total_cells(self) -> int:
        return sum(t.cells for t in self.stack.tiers.values())

    @property
    def technology_summary(self) -> Dict[str, Optional[int]]:
        """Node assignment per role (the three Technology columns)."""
        rram_nodes = {
            t.node_nm for t in self.stack.tiers.values() if t.kind is TierKind.RRAM_CIM
        }
        digital_nodes = {
            t.node_nm for t in self.stack.tiers.values() if t.kind is TierKind.DIGITAL
        }
        return {
            "rram_nm": rram_nodes.pop() if rram_nodes else None,
            "rram_peripheral_nm": digital_nodes.copy().pop() if digital_nodes else None,
            "digital_nm": digital_nodes.pop() if digital_nodes else None,
        }


#: Shared design parameters (Sec. IV-A: d = 256, f = 4).
ARRAY_ROWS = 256
ARRAY_COLS = 256
ARRAYS_PER_TIER = 4
RRAM_TIERS = 2


def h3d_design(
    *,
    adc_bits: int = 4,
    arrays_per_tier: int = ARRAYS_PER_TIER,
    rows: int = ARRAY_ROWS,
    cols: int = ARRAY_COLS,
    batch_size: int = 100,
) -> Design:
    """The paper's 3-tier heterogeneous design (Table III row 3)."""
    tiers = [
        digital_tier("tier1", "unbinding, ADC, SRAM, control", node_nm=16),
        rram_tier("tier2", "projection", arrays=arrays_per_tier, rows=rows, cols=cols),
        rram_tier("tier3", "similarity", arrays=arrays_per_tier, rows=rows, cols=cols),
    ]
    stack = H3DStack(tiers)
    mapping = WorkloadMapping.h3dfact({t.name: t for t in tiers})
    return Design(
        name="3-Tier H3D",
        style=DesignStyle.H3D,
        stack=stack,
        mapping=mapping,
        adc_bits=adc_bits,
        adc_count=arrays_per_tier * cols,  # shared between the RRAM tiers
        batch_size=batch_size,
        unbinding_operation="SRAM Digital",
        mvm_operation="RRAM CIM",
    )


def hybrid_2d_design(
    *,
    adc_bits: int = 4,
    arrays: int = ARRAYS_PER_TIER * RRAM_TIERS,
    rows: int = ARRAY_ROWS,
    cols: int = ARRAY_COLS,
    batch_size: int = 100,
) -> Design:
    """Monolithic 40 nm RRAM/SRAM hybrid (Table III row 2).

    All modules share the 40 nm node because the RRAM process anchors the
    die; iso-capacity means the same eight arrays in one plane.
    """
    regions = [
        Tier(
            name="cim",
            kind=TierKind.RRAM_CIM,
            node_nm=40,
            role="similarity + projection",
            arrays=arrays,
            array_rows=rows,
            array_cols=cols,
        ),
        Tier(name="digital", kind=TierKind.DIGITAL, node_nm=40, role="unbinding, ADC, SRAM"),
    ]
    stack = H3DStack(regions, planar=True)
    mapping = WorkloadMapping.monolithic(
        {t.name: t for t in regions}, cim_tier="cim", digital_tier="digital"
    )
    return Design(
        name="Hybrid 2D",
        style=DesignStyle.HYBRID_2D,
        stack=stack,
        mapping=mapping,
        adc_bits=adc_bits,
        adc_count=ARRAYS_PER_TIER * cols,  # MUX-shared sensing (Sec. III-B)
        batch_size=batch_size,
        unbinding_operation="SRAM Digital",
        mvm_operation="RRAM CIM",
    )


def sram_2d_design(
    *,
    arrays: int = ARRAYS_PER_TIER * RRAM_TIERS,
    rows: int = ARRAY_ROWS,
    cols: int = ARRAY_COLS,
    batch_size: int = 100,
) -> Design:
    """Fully digital 16 nm SRAM design (Table III row 1).

    MVMs run in SRAM CIM with digital accumulation (-1's counters), so the
    design needs no ADCs and is fully deterministic - which is also why its
    factorization accuracy is the lowest of the three (no stochasticity to
    break limit cycles).
    """
    regions = [
        Tier(
            name="cim",
            kind=TierKind.SRAM_CIM,
            node_nm=16,
            role="similarity + projection",
            arrays=arrays,
            array_rows=rows,
            array_cols=cols,
        ),
        Tier(name="digital", kind=TierKind.DIGITAL, node_nm=16, role="unbinding, SRAM"),
    ]
    stack = H3DStack(regions, planar=True)
    mapping = WorkloadMapping.monolithic(
        {t.name: t for t in regions}, cim_tier="cim", digital_tier="digital"
    )
    return Design(
        name="SRAM 2D",
        style=DesignStyle.SRAM_2D,
        stack=stack,
        mapping=mapping,
        adc_bits=0,
        adc_count=0,
        batch_size=batch_size,
        unbinding_operation="SRAM Digital",
        mvm_operation="SRAM CIM",
    )
