"""Tier descriptors for the 3D stack.

H3DFact's stack (Fig. 3): tier-3 (top) and tier-2 are 40 nm RRAM CIM dies;
tier-1 (bottom) is a 16 nm digital die holding the RRAM peripherals, SRAM
and logic.  A :class:`Tier` records what lives on a die and in which
technology; the PPA and thermal models consume these descriptors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError


class TierKind(enum.Enum):
    """What kind of compute a tier carries."""

    RRAM_CIM = "rram_cim"
    DIGITAL = "digital"
    SRAM_CIM = "sram_cim"


#: Technology nodes used by the paper's designs (nm).
SUPPORTED_NODES = (40, 16)


@dataclass(frozen=True)
class Tier:
    """One die in the stack.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"tier3"``.
    kind:
        Compute style of the die.
    node_nm:
        Technology node; RRAM requires the legacy 40 nm node (programming
        voltages), digital scales to 16 nm.
    role:
        Which factorization kernel the tier executes (Fig. 3 left).
    arrays / array_rows / array_cols:
        CIM array resources on this tier (0 for purely digital tiers).
    """

    name: str
    kind: TierKind
    node_nm: int
    role: str
    arrays: int = 0
    array_rows: int = 0
    array_cols: int = 0

    def __post_init__(self) -> None:
        if self.node_nm not in SUPPORTED_NODES:
            raise ConfigurationError(
                f"node_nm must be one of {SUPPORTED_NODES}, got {self.node_nm}"
            )
        if self.kind in (TierKind.RRAM_CIM, TierKind.SRAM_CIM):
            if self.arrays <= 0 or self.array_rows <= 0 or self.array_cols <= 0:
                raise ConfigurationError(
                    f"CIM tier {self.name!r} needs positive array geometry, got "
                    f"{self.arrays}x({self.array_rows}x{self.array_cols})"
                )
        if self.kind is TierKind.RRAM_CIM and self.node_nm != 40:
            raise ConfigurationError(
                "RRAM tiers must use the legacy 40 nm node (programming "
                f"voltage support); got {self.node_nm} nm for {self.name!r}"
            )

    @property
    def cells(self) -> int:
        """Total memory cells on the tier."""
        return self.arrays * self.array_rows * self.array_cols

    @property
    def is_rram(self) -> bool:
        return self.kind is TierKind.RRAM_CIM


def rram_tier(name: str, role: str, *, arrays: int = 4, rows: int = 256,
              cols: int = 256) -> Tier:
    """Convenience constructor for a 40 nm RRAM CIM tier."""
    return Tier(
        name=name,
        kind=TierKind.RRAM_CIM,
        node_nm=40,
        role=role,
        arrays=arrays,
        array_rows=rows,
        array_cols=cols,
    )


def digital_tier(name: str, role: str, *, node_nm: int = 16) -> Tier:
    """Convenience constructor for the digital peripheral/SRAM tier."""
    return Tier(name=name, kind=TierKind.DIGITAL, node_nm=node_nm, role=role)
