"""Tier-to-tier interconnect model: TSVs and hybrid bonding.

Geometry follows Table I of the paper (in line with H3DAtten and AMD
3D V-Cache).  The model provides:

* the per-array TSV count rule of Sec. IV-B - an ``X x Y`` RRAM array
  needs ``X`` wordline + ``Y`` bitline + ``Y/2`` sourceline TSVs (source
  lines are shared per column pair);
* electrical parasitics (coaxial TSV capacitance, via resistance) that
  feed the timing model's frequency penalty;
* area overheads (keep-out at the TSV pitch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.units import um
from repro.utils.validation import check_positive

#: Vacuum permittivity (F/m) and SiO2 relative permittivity.
_EPSILON_0 = 8.854e-12
_EPSILON_SIO2 = 3.9
#: Copper resistivity (ohm m).
_RHO_CU = 1.7e-8


@dataclass(frozen=True)
class TSVSpec:
    """Through-silicon via geometry (Table I defaults)."""

    diameter_um: float = 2.0
    pitch_um: float = 4.0
    oxide_thickness_nm: float = 100.0
    height_um: float = 10.0

    def __post_init__(self) -> None:
        check_positive("diameter_um", self.diameter_um)
        check_positive("pitch_um", self.pitch_um)
        check_positive("oxide_thickness_nm", self.oxide_thickness_nm)
        check_positive("height_um", self.height_um)
        if self.pitch_um < self.diameter_um:
            raise ConfigurationError(
                f"TSV pitch ({self.pitch_um} um) must be at least the "
                f"diameter ({self.diameter_um} um)"
            )

    @property
    def capacitance(self) -> float:
        """Coaxial oxide capacitance of one TSV in farads.

        ``C = eps * 2 pi h / ln((r + t_ox) / r)`` for a cylindrical
        conductor of radius ``r`` and oxide thickness ``t_ox``.
        """
        radius = um(self.diameter_um) / 2.0
        t_ox = self.oxide_thickness_nm * 1e-9
        return (
            _EPSILON_0
            * _EPSILON_SIO2
            * 2.0
            * np.pi
            * um(self.height_um)
            / np.log((radius + t_ox) / radius)
        )

    @property
    def resistance(self) -> float:
        """DC resistance of the copper via in ohms."""
        radius = um(self.diameter_um) / 2.0
        return _RHO_CU * um(self.height_um) / (np.pi * radius**2)

    @property
    def keepout_area(self) -> float:
        """Silicon area consumed per TSV (pitch-squared keep-out), m^2."""
        return um(self.pitch_um) ** 2


@dataclass(frozen=True)
class HybridBondSpec:
    """Face-to-face hybrid bonding geometry (Table I defaults)."""

    pitch_um: float = 10.0
    thickness_um: float = 3.0

    def __post_init__(self) -> None:
        check_positive("pitch_um", self.pitch_um)
        check_positive("thickness_um", self.thickness_um)

    @property
    def capacitance(self) -> float:
        """Parallel-plate estimate of one bond pad's capacitance (F).

        Pad radius ~ pitch/4; dielectric thickness = bond thickness.
        Hybrid bonds are much less capacitive than TSVs, which is why the
        frequency penalty is dominated by the TSV legs.
        """
        pad_radius = um(self.pitch_um) / 4.0
        area = np.pi * pad_radius**2
        return _EPSILON_0 * _EPSILON_SIO2 * area / um(self.thickness_um)

    @property
    def keepout_area(self) -> float:
        return um(self.pitch_um) ** 2


def tsv_count_for_array(rows: int, cols: int) -> int:
    """TSVs connecting one RRAM array to its off-tier peripherals.

    Sec. IV-B: ``X`` wordlines + ``Y`` bitlines + ``Y/2`` sourcelines.
    """
    if rows <= 0 or cols <= 0:
        raise ConfigurationError(
            f"array dimensions must be positive, got {rows}x{cols}"
        )
    return rows + cols + cols // 2


@dataclass(frozen=True)
class InterconnectBudget:
    """Total vertical-interconnect resources of a design."""

    tsv_count: int
    bond_count: int
    tsv: TSVSpec = TSVSpec()
    bond: HybridBondSpec = HybridBondSpec()

    def __post_init__(self) -> None:
        if self.tsv_count < 0 or self.bond_count < 0:
            raise ConfigurationError(
                "interconnect counts must be non-negative, got "
                f"{self.tsv_count} TSVs / {self.bond_count} bonds"
            )

    @property
    def total_tsv_area(self) -> float:
        """Keep-out silicon area of all TSVs (m^2)."""
        return self.tsv_count * self.tsv.keepout_area

    @property
    def total_capacitance(self) -> float:
        """Aggregate vertical-interconnect capacitance (F)."""
        return (
            self.tsv_count * self.tsv.capacitance
            + self.bond_count * self.bond.capacitance
        )

    @property
    def per_signal_capacitance(self) -> float:
        """Capacitance loading one signal path (one TSV + one bond), F."""
        return self.tsv.capacitance + self.bond.capacitance
