"""H3DFact architecture: tiers, interconnects, mapping, dataflow, designs."""

from repro.arch.controller import ActivationController, PowerState
from repro.arch.designs import (
    Design,
    DesignStyle,
    h3d_design,
    hybrid_2d_design,
    sram_2d_design,
)
from repro.arch.interconnect import (
    HybridBondSpec,
    InterconnectBudget,
    TSVSpec,
    tsv_count_for_array,
)
from repro.arch.mapping import STEP_NAMES, WorkloadMapping
from repro.arch.stack import H3DStack
from repro.arch.tier import Tier, TierKind
from repro.arch.dataflow import DataflowSimulator, IterationTiming

__all__ = [
    "ActivationController",
    "PowerState",
    "Design",
    "DesignStyle",
    "h3d_design",
    "hybrid_2d_design",
    "sram_2d_design",
    "HybridBondSpec",
    "InterconnectBudget",
    "TSVSpec",
    "tsv_count_for_array",
    "STEP_NAMES",
    "WorkloadMapping",
    "H3DStack",
    "Tier",
    "TierKind",
    "DataflowSimulator",
    "IterationTiming",
]
