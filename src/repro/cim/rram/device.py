"""Statistical model of a 40 nm HfOx RRAM cell.

Captures the device-level behaviour that matters to the factorizer:

* two programmable states (LRS ``g_on`` / HRS ``g_off``) whose *programmed*
  conductance varies lognormally from cell to cell (cycle-to-cycle and
  device-to-device variation aggregated);
* per-read Gaussian current noise (thermal + RTN + sensing PVT);
* rare stuck-at faults (forming failures, worn cells);
* retention drift accelerated above ~100 C (the paper's thermal analysis,
  Fig. 5, checks tier temperatures stay far below that).

Nominal conductances follow the 40 nm macro of Spetalnick et al.
(ISSCC 2022 [25]); variability magnitudes follow Yu et al.'s HfOx
switching-variation model [27].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class RRAMDeviceModel:
    """Parameters of one RRAM technology corner.

    Attributes
    ----------
    g_on / g_off:
        Low/high-resistance-state conductances in Siemens.  The defaults
        (40 uS / 2.5 uS) give an ON/OFF ratio of 16, in line with 40 nm
        HfOx arrays after write-verify.
    sigma_program:
        Lognormal sigma of programmed conductance (relative).
    sigma_read:
        Relative RMS of per-read current noise.
    p_stuck_on / p_stuck_off:
        Probability that a cell is stuck at LRS/HRS regardless of
        programming.
    retention_temp_c:
        Temperature above which retention degrades (HfOx: ~100 C [33]).
    """

    g_on: float = 40e-6
    g_off: float = 2.5e-6
    sigma_program: float = 0.08
    sigma_read: float = 0.03
    p_stuck_on: float = 0.0005
    p_stuck_off: float = 0.001
    retention_temp_c: float = 100.0

    def __post_init__(self) -> None:
        check_positive("g_on", self.g_on)
        check_positive("g_off", self.g_off)
        if self.g_on <= self.g_off:
            raise ConfigurationError(
                f"g_on ({self.g_on}) must exceed g_off ({self.g_off})"
            )
        check_positive("sigma_program", self.sigma_program, allow_zero=True)
        check_positive("sigma_read", self.sigma_read, allow_zero=True)
        check_probability("p_stuck_on", self.p_stuck_on)
        check_probability("p_stuck_off", self.p_stuck_off)

    # -- derived figures -------------------------------------------------------

    @property
    def on_off_ratio(self) -> float:
        """Dimensionless LRS/HRS ratio ``g_on / g_off`` (~16 at 40 nm)."""
        return self.g_on / self.g_off

    @property
    def delta_g(self) -> float:
        """Conductance difference encoding one bipolar unit, in siemens
        (37.5 uS for the default 40 uS / 2.5 uS corner)."""
        return self.g_on - self.g_off

    # -- sampling ----------------------------------------------------------------

    def program(
        self, targets: np.ndarray, rng: RandomState = None
    ) -> np.ndarray:
        """Sample programmed conductances in siemens for target states.

        ``targets`` holds desired conductances (``g_on`` or ``g_off``);
        the result applies lognormal programming variability (relative
        sigma ``sigma_program``, Yu et al.'s HfOx switching-variation
        model [27]) and stuck-at faults.
        """
        generator = as_rng(rng)
        targets = np.asarray(targets, dtype=np.float64)
        if self.sigma_program > 0:
            spread = generator.lognormal(
                mean=0.0, sigma=self.sigma_program, size=targets.shape
            )
        else:
            spread = 1.0
        programmed = targets * spread
        if self.p_stuck_on > 0 or self.p_stuck_off > 0:
            roll = generator.random(size=targets.shape)
            programmed = np.where(roll < self.p_stuck_on, self.g_on, programmed)
            programmed = np.where(
                (roll >= self.p_stuck_on)
                & (roll < self.p_stuck_on + self.p_stuck_off),
                self.g_off,
                programmed,
            )
        return programmed

    def read_noise(
        self, conductances: np.ndarray, rng: RandomState = None
    ) -> np.ndarray:
        """One read's noisy conductances in siemens:
        ``g * (1 + N(0, sigma_read))`` per cell (thermal + RTN + PVT)."""
        if self.sigma_read == 0:
            return np.asarray(conductances, dtype=np.float64)
        generator = as_rng(rng)
        conductances = np.asarray(conductances, dtype=np.float64)
        noise = generator.normal(0.0, self.sigma_read, size=conductances.shape)
        return conductances * (1.0 + noise)

    def retention_ok(self, temperature_c: float) -> bool:
        """True when the operating temperature preserves retention."""
        return temperature_c < self.retention_temp_c
