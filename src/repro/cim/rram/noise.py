"""Noise parameter sets for the similarity read-out.

The fast statistical backends inject one Gaussian per similarity output
instead of one per device; :class:`NoiseParameters` is the bridge - it
aggregates device/circuit noise sources into the per-output sigma (in
"z-units" of ``sqrt(dim)``, the natural crosstalk scale of bipolar
similarities) and carries the named presets used by the experiments:

* :meth:`NoiseParameters.ideal` - noiseless (the deterministic baseline).
* :meth:`NoiseParameters.default` - derived from the 40 nm device corner
  (programming + read variation only).
* :meth:`NoiseParameters.testchip` - calibrated against the fabricated
  40 nm RRAM testchip read-out measurements the paper reports (Sec. V-D):
  it adds the offset/IR-drop/PVT residues that device statistics alone
  miss, and reproduces Fig. 6b (>96 % one-shot accuracy, 99 % at ~25
  iterations on the perception workload).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cim.rram.device import RRAMDeviceModel
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NoiseParameters:
    """Aggregate similarity-level noise model.

    Attributes
    ----------
    sigma_z:
        RMS of additive Gaussian noise on each similarity output, in units
        of ``sqrt(dim)``.
    offset_z:
        RMS of a static per-column offset (frozen per trial), same units.
    name:
        Preset label for reports.
    """

    sigma_z: float = 0.5
    offset_z: float = 0.0
    name: str = "custom"

    def __post_init__(self) -> None:
        check_positive("sigma_z", self.sigma_z, allow_zero=True)
        check_positive("offset_z", self.offset_z, allow_zero=True)

    # -- presets -----------------------------------------------------------------

    @classmethod
    def ideal(cls) -> "NoiseParameters":
        """No stochasticity: the deterministic (SRAM digital) read-out."""
        return cls(sigma_z=0.0, offset_z=0.0, name="ideal")

    @classmethod
    def default(cls, device: RRAMDeviceModel = RRAMDeviceModel()) -> "NoiseParameters":
        """Device-statistics-only noise for the given corner.

        Uses the closed-form column-error sigma of
        :meth:`CrossbarArray.expected_error_sigma
        <repro.cim.rram.crossbar.CrossbarArray.expected_error_sigma>`,
        which is independent of the array partitioning: stacking ``k``
        arrays of ``rows`` rows to reach ``dim = k * rows`` scales the
        error by ``sqrt(k)``, exactly preserving the per-``sqrt(dim)``
        normalization.
        """
        sigma_sq = (device.g_on**2 + device.g_off**2) * (
            device.sigma_program**2 + device.sigma_read**2
        )
        sigma_per_row = np.sqrt(sigma_sq) / device.delta_g
        return cls(sigma_z=float(sigma_per_row), offset_z=0.0, name="device")

    @classmethod
    def testchip(cls) -> "NoiseParameters":
        """Calibrated to the 40 nm RRAM testchip read-out (Sec. V-D).

        The measured read-out spread exceeds pure device statistics because
        it also carries sense-amp offsets, IR drop along the bit lines and
        supply/temperature variation.  ``sigma_z = 0.5`` with a small
        static column offset reproduces the paper's Fig. 6b behaviour
        (>96 % one-shot attribute accuracy, 99 % within ~25 iterations)
        and is the H3DFact design point used for Table II.
        """
        return cls(sigma_z=0.5, offset_z=0.1, name="testchip")

    # -- use -----------------------------------------------------------------------

    def similarity_sigma(self, dim: int) -> float:
        """Absolute per-output noise RMS for dimension ``dim``."""
        return self.sigma_z * float(np.sqrt(dim))

    def offset_sigma(self, dim: int) -> float:
        """Absolute per-column static offset RMS for dimension ``dim``."""
        return self.offset_z * float(np.sqrt(dim))

    @property
    def stochastic(self) -> bool:
        """True when any noise term (per-read or static offset) is active."""
        return self.sigma_z > 0 or self.offset_z > 0

    def scaled(self, factor: float) -> "NoiseParameters":
        """Preset scaled by ``factor`` (for noise-sensitivity ablations)."""
        check_positive("factor", factor, allow_zero=True)
        return NoiseParameters(
            sigma_z=self.sigma_z * factor,
            offset_z=self.offset_z * factor,
            name=f"{self.name}x{factor:g}",
        )
