"""Write / program-verify model for RRAM arrays.

RRAM writes are the expensive operation the architecture works around
(Sec. III-B: "the write operation for RRAM is notorious for its humongous
overhead", which motivates XNOR-based digital unbinding instead of
re-programming arrays every iteration).  This model quantifies that cost:
programming pulses, verify reads, energy and latency per array update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.cim.rram.device import RRAMDeviceModel
from repro.errors import ConfigurationError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ProgrammingReport:
    """Cost accounting of one array programming operation."""

    cells: int
    total_pulses: int
    verify_reads: int
    failed_cells: int
    energy_joules: float
    latency_seconds: float

    @property
    def mean_pulses_per_cell(self) -> float:
        """Average program pulses per cell (write-verify convergence cost)."""
        return self.total_pulses / self.cells if self.cells else 0.0


class ProgrammingModel:
    """Iterative program-and-verify of target conductances.

    Parameters
    ----------
    device:
        Technology corner being programmed.
    tolerance:
        Relative conductance error accepted by verify.
    max_pulses:
        Pulse budget per cell before declaring the cell failed (left at its
        last sampled value).
    set_voltage / reset_voltage:
        Programming voltages; the legacy 40 nm node exists precisely to
        support these high voltages (Sec. III-A).
    pulse_energy / pulse_seconds:
        Energy (joules; default 1e-12 J = 1 pJ) and duration of one
        programming pulse.  ``verify_energy`` is one verify read
        (default 5e-14 J = 50 fJ).
    """

    def __init__(
        self,
        device: RRAMDeviceModel,
        *,
        tolerance: float = 0.15,
        max_pulses: int = 8,
        set_voltage: float = 2.5,
        reset_voltage: float = 2.8,
        pulse_energy: float = 1e-12,
        pulse_seconds: float = 50e-9,
        verify_energy: float = 5e-14,
    ) -> None:
        check_positive("tolerance", tolerance)
        if max_pulses < 1:
            raise ConfigurationError(f"max_pulses must be >= 1, got {max_pulses}")
        check_positive("set_voltage", set_voltage)
        check_positive("reset_voltage", reset_voltage)
        check_positive("pulse_energy", pulse_energy)
        check_positive("pulse_seconds", pulse_seconds)
        check_positive("verify_energy", verify_energy)
        self.device = device
        self.tolerance = tolerance
        self.max_pulses = max_pulses
        self.set_voltage = set_voltage
        self.reset_voltage = reset_voltage
        self.pulse_energy = pulse_energy
        self.pulse_seconds = pulse_seconds
        self.verify_energy = verify_energy

    def program(
        self, targets: np.ndarray, rng: RandomState = None
    ) -> Tuple[np.ndarray, ProgrammingReport]:
        """Program ``targets``; returns achieved conductances and the cost.

        Each round re-programs only out-of-tolerance cells, mirroring
        program-verify loops in real macros.  Stuck cells never verify and
        consume the full pulse budget.
        """
        generator = as_rng(rng)
        targets = np.asarray(targets, dtype=np.float64)
        achieved = self.device.program(targets, rng=generator)
        pending = (
            np.abs(achieved - targets) / targets > self.tolerance
        )
        total_pulses = targets.size
        verify_reads = targets.size
        rounds = 1
        while pending.any() and rounds < self.max_pulses:
            repro_targets = targets[pending]
            achieved[pending] = self.device.program(repro_targets, rng=generator)
            total_pulses += int(pending.sum())
            verify_reads += int(pending.sum())
            pending = np.abs(achieved - targets) / targets > self.tolerance
            rounds += 1
        failed = int(pending.sum())
        energy = (
            total_pulses * self.pulse_energy + verify_reads * self.verify_energy
        )
        # Rounds execute sequentially; all cells of one round in parallel
        # (row-parallel programming), so latency scales with rounds.
        latency = rounds * self.pulse_seconds
        report = ProgrammingReport(
            cells=targets.size,
            total_pulses=total_pulses,
            verify_reads=verify_reads,
            failed_cells=failed,
            energy_joules=energy,
            latency_seconds=latency,
        )
        return achieved, report
