"""Batched crossbar kernels: program-once conductances + vectorized noise.

The device-granular reference (:class:`~repro.cim.rram.crossbar.CrossbarArray`)
samples one Gaussian per *cell* per read - exact, but prohibitive inside
factorization sweeps (a single Table II cell performs millions of MVMs).
This module re-expresses the same crossbar physics as stacked matrix
kernels so a whole batch of trials advances through a handful of BLAS
calls (the Langenegger-style in-memory-factorizer formulation; see
PAPERS.md):

* **Program once** - :func:`program_codebook` draws the per-cell lognormal
  programming variability and stuck-at faults of
  :meth:`RRAMDeviceModel.program <repro.cim.rram.device.RRAMDeviceModel.program>`
  for both RRAM tiers (tier-3 similarity layout and tier-2 projection
  layout) exactly once per codebook *content*, then freezes the result.
  The programming RNG is derived from the codebook's content hash, so
  re-programming an evicted codebook reproduces bit-identical conductances.
* **Write-verify grid** - programmed conductances are quantized onto an
  integer grid of ``grid_step`` siemens (``g_on / (2**grid_bits - 1)``,
  i.e. ~0.157 uS steps for the 40 uS LRS at the default 8 bits - the
  resolution a program-verify loop converges to).  Because every stored
  conductance is an *integer* number of grid steps and bipolar inputs /
  DAC codes are integers too, every crossbar MVM is a sum of exact
  float64 integers: the result is bit-identical no matter how BLAS blocks
  the matmul, which is what makes the batched engine bit-identical to the
  per-trial loop (``tests/test_crossbar_backend.py``).
* **Column-aggregated read noise** - per-read multiplicative conductance
  noise (relative RMS ``sigma_read``) enters a column current as
  ``sum_i V_i * g_ij * n_ij``; for bipolar inputs (``V_i^2`` constant)
  its variance collapses to the *programmed* per-column aggregate
  ``sigma_read^2 * sum_i (g_pos_ij^2 + g_neg_ij^2)``.
  :func:`column_read_noise_sigma` precomputes that aggregate per row-tile
  at program time, so a read costs one Gaussian per output instead of one
  per cell while matching the per-cell sampler's mean and variance
  (pinned by the noise-statistics test).
* **Batched DAC codes** - :func:`dac_codes` maps the multi-bit similarity
  words onto the integer wordline codes the projection tier applies
  bit-serially (:class:`~repro.cim.dac.WordlineDriver` semantics,
  vectorized over a whole ``(trials, size)`` weight matrix).

Everything here is deterministic given ``(content hash, device corner,
grid, program seed)``; the *per-read* stochasticity lives in the consuming
backend (:class:`repro.core.crossbar_backend.CIMBatchedBackend`), which
owns the per-trial noise streams.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cim.rram.device import RRAMDeviceModel
from repro.errors import ConfigurationError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TiledArrayGeometry:
    """Physical subarray geometry the logical matrix is tiled onto.

    Attributes
    ----------
    rows / cols:
        One subarray's wordline / bitline count; the paper's RRAM macros
        are 256 x 256 (Sec. IV-A).  A ``dim x size`` codebook occupies
        ``ceil(dim / rows)`` row tiles (each with its own sensing + ADC
        column block) and ``ceil(size / cols)`` column blocks.
    """

    rows: int = 256
    cols: int = 256

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError(
                f"array geometry must be positive, got {self.rows}x{self.cols}"
            )

    def row_slices(self, dim: int) -> List[slice]:
        """Row-tile slices covering a ``dim``-row logical matrix."""
        return [
            slice(start, min(start + self.rows, dim))
            for start in range(0, dim, self.rows)
        ]

    def num_row_tiles(self, dim: int) -> int:
        """Subarrays stacked along rows: ``ceil(dim / rows)``."""
        return (dim + self.rows - 1) // self.rows

    def num_col_blocks(self, size: int) -> int:
        """Subarrays tiled along columns: ``ceil(size / cols)``."""
        return (size + self.cols - 1) // self.cols


def conductance_rng(fingerprint: str, program_seed: int) -> np.random.Generator:
    """Programming-noise generator derived from codebook *content*.

    Seeding from ``(content hash, program_seed)`` rather than from a
    flowing stream makes programming a pure function of what is being
    programmed: every trial, engine mode, and cache re-population sees the
    same fabricated arrays - the hardware's program-once reality.
    """
    digest = hashlib.sha256(
        f"{fingerprint}:{program_seed}".encode()
    ).digest()
    entropy = int.from_bytes(digest[:16], "little")
    return np.random.default_rng(np.random.SeedSequence(entropy))


def quantize_conductances(
    conductances: np.ndarray, *, grid_step: float, max_units: int
) -> np.ndarray:
    """Snap physical conductances (siemens) onto the write-verify grid.

    Returns integer-valued float64 grid units in ``[0, max_units]``; the
    integrality is what keeps downstream matmuls exact (module docstring).
    """
    check_positive("grid_step", grid_step)
    units = np.rint(np.asarray(conductances, dtype=np.float64) / grid_step)
    return np.clip(units, 0.0, float(max_units))


def column_read_noise_sigma(
    gsq_units: np.ndarray, *, device: RRAMDeviceModel, grid_step: float
) -> np.ndarray:
    """Per-column read-noise RMS in similarity units for bipolar inputs.

    ``gsq_units`` holds ``sum_rows (g_pos^2 + g_neg^2)`` in grid-step^2
    units (per column, typically per row tile).  The returned sigma is the
    exact standard deviation of the column-current error produced by
    per-cell multiplicative read noise, expressed in similarity units
    (i.e. already divided by ``V_read * delta_g``) - the closed form of
    :meth:`CrossbarArray.expected_error_sigma
    <repro.cim.rram.crossbar.CrossbarArray.expected_error_sigma>` evaluated
    on the *actual* programmed conductances instead of nominal ones.
    """
    scale = grid_step / device.delta_g
    return device.sigma_read * np.sqrt(np.asarray(gsq_units, dtype=np.float64)) * scale


def dac_codes(
    values: np.ndarray, *, step: float, max_code: int
) -> np.ndarray:
    """Vectorized wordline DAC: similarity words -> integer input codes.

    Quantizes non-negative ``values`` to multiples of ``step`` (the
    similarity-chain LSB), clipping at ``max_code`` - the digital word the
    projection tier applies bit-serially
    (:meth:`WordlineDriver.bit_serial_phases
    <repro.cim.dac.WordlineDriver.bit_serial_phases>`).  Values produced by
    the tiled similarity chain are already exact multiples of ``step``, so
    for chain-fed weights the DAC is a lossless re-encoding; arbitrary
    inputs pay one uniform quantization.  Returns integer-valued float64
    (exact in the downstream matmul).
    """
    check_positive("step", step)
    if max_code < 1:
        raise ConfigurationError(f"max_code must be >= 1, got {max_code}")
    codes = np.rint(np.asarray(values, dtype=np.float64) / step)
    return np.clip(codes, 0.0, float(max_code))


@dataclass(frozen=True)
class ProgrammedConductances:
    """Frozen conductance realization of one codebook on both RRAM tiers.

    All conductances are stored as integer-valued float64 grid units
    (``grid_step`` siemens per unit); see the module docstring for why.

    Attributes
    ----------
    g_sim:
        ``(dim, size)`` differential conductance ``g_pos - g_neg`` of the
        tier-3 similarity arrays, grid units.
    sim_read_sigma:
        ``(num_row_tiles, size)`` per-tile per-column read-noise RMS in
        similarity units (device term; bipolar inputs).
    g_proj:
        ``(size, dim)`` differential conductance of the tier-2 projection
        arrays - programmed *independently* of ``g_sim`` (a physically
        distinct tier holds the transposed codebook).
    gsq_proj:
        ``(size, dim)`` per-cell ``g_pos^2 + g_neg^2`` of the projection
        arrays in grid-units^2, consumed by the input-dependent projection
        noise aggregate (multi-bit inputs make the column variance depend
        on the applied codes).
    grid_step:
        Siemens per grid unit.
    fingerprint:
        Content hash the programming RNG was derived from.
    """

    g_sim: np.ndarray
    sim_read_sigma: np.ndarray
    g_proj: np.ndarray
    gsq_proj: np.ndarray
    device: RRAMDeviceModel
    geometry: TiledArrayGeometry
    grid_step: float
    fingerprint: str

    @property
    def dim(self) -> int:
        """Hypervector dimension D (rows of the similarity arrays)."""
        return int(self.g_sim.shape[0])

    @property
    def size(self) -> int:
        """Codebook size M (columns of the similarity arrays)."""
        return int(self.g_sim.shape[1])

    @property
    def num_row_tiles(self) -> int:
        """Similarity-layout row tiles (one sensing + ADC block each)."""
        return int(self.sim_read_sigma.shape[0])

    @property
    def nbytes(self) -> int:
        """Resident bytes (drives the conductance cache's LRU budget)."""
        return (
            self.g_sim.nbytes
            + self.sim_read_sigma.nbytes
            + self.g_proj.nbytes
            + self.gsq_proj.nbytes
        )

    @property
    def unit_scale(self) -> float:
        """Similarity units per (grid unit x unit input):
        ``grid_step / delta_g`` - converts an integer matmul result back
        to physical similarity units."""
        return self.grid_step / self.device.delta_g


def _program_tier(
    weights: np.ndarray,
    device: RRAMDeviceModel,
    rng: np.random.Generator,
    *,
    grid_step: float,
    max_units: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Program one tier; returns ``(g_diff, g_pos^2 + g_neg^2)`` in units.

    Mirrors :meth:`CrossbarArray.program
    <repro.cim.rram.crossbar.CrossbarArray.program>`: targets are mapped to
    differential pairs, programming variability and stuck-at faults are
    drawn per cell (positive leg first, then negative - the same draw
    order as the reference), then both legs snap to the write-verify grid.
    """
    positive = weights > 0
    target_pos = np.where(positive, device.g_on, device.g_off)
    target_neg = np.where(positive, device.g_off, device.g_on)
    g_pos = quantize_conductances(
        device.program(target_pos, rng=rng), grid_step=grid_step, max_units=max_units
    )
    g_neg = quantize_conductances(
        device.program(target_neg, rng=rng), grid_step=grid_step, max_units=max_units
    )
    return g_pos - g_neg, g_pos**2 + g_neg**2


def program_codebook(
    matrix: np.ndarray,
    fingerprint: str,
    *,
    device: RRAMDeviceModel,
    geometry: TiledArrayGeometry,
    grid_bits: int = 8,
    program_seed: int = 0,
) -> ProgrammedConductances:
    """Program one codebook matrix onto both RRAM tiers (content-keyed).

    ``matrix`` is the bipolar ``(dim, size)`` codebook; ``fingerprint`` its
    content hash (:func:`repro.vsa.codebook.codebook_fingerprint`), which
    seeds the programming RNG so identical content always yields identical
    conductances.  Tier-3 (similarity) is programmed first, then tier-2
    (projection, transposed layout) - two independent physical arrays, two
    independent variability draws.
    """
    if not isinstance(grid_bits, (int, np.integer)) or not 2 <= grid_bits <= 14:
        raise ConfigurationError(f"grid_bits must be in [2, 14], got {grid_bits!r}")
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"codebook matrix must be 2-D, got {matrix.ndim}-D"
        )
    grid_step = device.g_on / float((1 << grid_bits) - 1)
    # 2x LRS headroom covers the lognormal programming tail after clipping.
    max_units = 2 * ((1 << grid_bits) - 1)
    rng = conductance_rng(fingerprint, program_seed)
    g_sim, gsq_sim = _program_tier(
        matrix, device, rng, grid_step=grid_step, max_units=max_units
    )
    g_proj, gsq_proj = _program_tier(
        matrix.T, device, rng, grid_step=grid_step, max_units=max_units
    )
    tiles = geometry.row_slices(matrix.shape[0])
    sim_read_sigma = np.stack(
        [
            column_read_noise_sigma(
                gsq_sim[rows].sum(axis=0), device=device, grid_step=grid_step
            )
            for rows in tiles
        ]
    )
    return ProgrammedConductances(
        g_sim=g_sim,
        sim_read_sigma=sim_read_sigma,
        g_proj=g_proj,
        gsq_proj=gsq_proj,
        device=device,
        geometry=geometry,
        grid_step=grid_step,
        fingerprint=fingerprint,
    )
