"""RRAM tier models: devices, programming, crossbar MVM, current sensing."""

from repro.cim.rram.device import RRAMDeviceModel
from repro.cim.rram.noise import NoiseParameters
from repro.cim.rram.programming import ProgrammingModel, ProgrammingReport
from repro.cim.rram.crossbar import CrossbarArray
from repro.cim.rram.sensing import SensingPath

__all__ = [
    "RRAMDeviceModel",
    "NoiseParameters",
    "ProgrammingModel",
    "ProgrammingReport",
    "CrossbarArray",
    "SensingPath",
]
