"""RRAM tier models: devices, programming, crossbar MVM, current sensing."""

from repro.cim.rram.batched import (
    ProgrammedConductances,
    TiledArrayGeometry,
    column_read_noise_sigma,
    conductance_rng,
    dac_codes,
    program_codebook,
    quantize_conductances,
)
from repro.cim.rram.device import RRAMDeviceModel
from repro.cim.rram.noise import NoiseParameters
from repro.cim.rram.programming import ProgrammingModel, ProgrammingReport
from repro.cim.rram.crossbar import CrossbarArray
from repro.cim.rram.sensing import SensingPath

__all__ = [
    "ProgrammedConductances",
    "TiledArrayGeometry",
    "column_read_noise_sigma",
    "conductance_rng",
    "dac_codes",
    "program_codebook",
    "quantize_conductances",
    "RRAMDeviceModel",
    "NoiseParameters",
    "ProgrammingModel",
    "ProgrammingReport",
    "CrossbarArray",
    "SensingPath",
]
