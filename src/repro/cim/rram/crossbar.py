"""Differential RRAM crossbar executing bipolar MVMs.

Each bipolar matrix entry maps to a differential conductance pair: ``+1``
as ``(g_on, g_off)``, ``-1`` as ``(g_off, g_on)``.  A bipolar input of
``+/-1`` on row ``i`` drives ``+/-V_read``; the differential column
current is then

    dI_j = V_read * (g_on - g_off) * sum_i w_ij * x_i  + noise terms,

i.e. the similarity in units of ``V_read * delta_g``.  The class simulates
this at device granularity: programming variability is drawn once per
:meth:`program` call, read noise per MVM.  It is the ground-truth model the
fast statistical backend (:class:`repro.resonator.StochasticThresholdBackend`
and :class:`repro.core.CIMBackend`) is validated against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cim.rram.device import RRAMDeviceModel
from repro.cim.rram.sensing import SensingPath
from repro.errors import ConfigurationError, DimensionError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_bipolar, check_positive


class CrossbarArray:
    """One RRAM subarray (``rows x cols`` cells, differential columns).

    Parameters
    ----------
    rows / cols:
        Array geometry; the paper's subarrays are 256 x 256.
    device:
        RRAM technology corner.
    read_voltage:
        Wordline read amplitude in volts.
    sensing:
        Optional sensing path applied by :meth:`read_similarity`.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        device: Optional[RRAMDeviceModel] = None,
        read_voltage: float = 0.1,
        sensing: Optional[SensingPath] = None,
        rng: RandomState = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(
                f"array dimensions must be positive, got {rows}x{cols}"
            )
        check_positive("read_voltage", read_voltage)
        self.rows = rows
        self.cols = cols
        self.device = device if device is not None else RRAMDeviceModel()
        self.read_voltage = read_voltage
        self.sensing = sensing
        self._rng = as_rng(rng)
        self._g_pos: Optional[np.ndarray] = None
        self._g_neg: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None

    # -- programming -------------------------------------------------------------

    @property
    def programmed(self) -> bool:
        """True once :meth:`program` has written conductances."""
        return self._g_pos is not None

    @property
    def weights(self) -> np.ndarray:
        """The programmed bipolar weight matrix (requires :meth:`program`)."""
        if self._weights is None:
            raise ConfigurationError("crossbar has not been programmed")
        return self._weights

    def program(self, weights: np.ndarray, *, rng: RandomState = None) -> None:
        """Program a bipolar weight matrix into differential pairs.

        Programming variability is sampled here and *frozen* until the next
        :meth:`program` call - matching hardware, where arrays are written
        once per workload and read millions of times.
        """
        weights = np.asarray(weights)
        if weights.shape != (self.rows, self.cols):
            raise DimensionError(
                f"weights shape {weights.shape} does not match array "
                f"({self.rows}, {self.cols})"
            )
        check_bipolar("crossbar weights", weights)
        generator = as_rng(rng) if rng is not None else self._rng
        positive = weights > 0
        target_pos = np.where(positive, self.device.g_on, self.device.g_off)
        target_neg = np.where(positive, self.device.g_off, self.device.g_on)
        self._g_pos = self.device.program(target_pos, rng=generator)
        self._g_neg = self.device.program(target_neg, rng=generator)
        self._weights = weights.copy()

    # -- compute -----------------------------------------------------------------

    def column_currents(
        self, inputs: np.ndarray, *, rng: RandomState = None
    ) -> np.ndarray:
        """Differential column currents in amperes for bipolar ``inputs``.

        One read of the module-docstring current equation
        ``dI_j = V_read * (g_on - g_off) * sum_i w_ij x_i + noise``:
        samples fresh read noise on every call - the per-read
        stochasticity that the factorizer exploits (Sec. III-C).
        """
        if not self.programmed:
            raise ConfigurationError("crossbar has not been programmed")
        inputs = np.asarray(inputs)
        if inputs.shape != (self.rows,):
            raise DimensionError(
                f"inputs shape {inputs.shape} does not match rows "
                f"({self.rows},)"
            )
        check_bipolar("crossbar inputs", inputs)
        generator = as_rng(rng) if rng is not None else self._rng
        g_pos = self.device.read_noise(self._g_pos, rng=generator)
        g_neg = self.device.read_noise(self._g_neg, rng=generator)
        voltages = inputs.astype(np.float64) * self.read_voltage
        return voltages @ (g_pos - g_neg)

    def similarity_scale(self) -> float:
        """Amperes per similarity unit: ``V_read * delta_g`` (~3.75 uA
        at 0.1 V on the 37.5 uS differential window)."""
        return self.read_voltage * self.device.delta_g

    def mvm(self, inputs: np.ndarray, *, rng: RandomState = None) -> np.ndarray:
        """Bipolar MVM in similarity units (signed, un-thresholded)."""
        currents = self.column_currents(inputs, rng=rng)
        return currents / self.similarity_scale()

    def mvm_phased(
        self,
        inputs: np.ndarray,
        *,
        parallel_rows: int = 32,
        rng: RandomState = None,
    ) -> np.ndarray:
        """Bipolar MVM executed in row phases with digital accumulation.

        Sensing headroom limits how many rows can drive a column at once
        (the 8 x 32-row phases of the 69-cycle MVM interval in the timing
        model): each phase activates ``parallel_rows`` wordlines, converts
        the partial sums, and the digital tier accumulates.  Noiseless
        phased reads equal the full-array read exactly; with noise, the
        per-phase read-noise samples are independent, so the accumulated
        error grows by ``sqrt(phases)`` relative to one full read - a cost
        already folded into the aggregate noise presets.
        """
        if not self.programmed:
            raise ConfigurationError("crossbar has not been programmed")
        if parallel_rows <= 0:
            raise ConfigurationError(
                f"parallel_rows must be positive, got {parallel_rows}"
            )
        inputs = np.asarray(inputs)
        if inputs.shape != (self.rows,):
            raise DimensionError(
                f"inputs shape {inputs.shape} does not match rows "
                f"({self.rows},)"
            )
        check_bipolar("crossbar inputs", inputs)
        generator = as_rng(rng) if rng is not None else self._rng
        accumulated = np.zeros(self.cols, dtype=np.float64)
        for start in range(0, self.rows, parallel_rows):
            stop = min(start + parallel_rows, self.rows)
            g_pos = self.device.read_noise(self._g_pos[start:stop], rng=generator)
            g_neg = self.device.read_noise(self._g_neg[start:stop], rng=generator)
            voltages = inputs[start:stop].astype(np.float64) * self.read_voltage
            accumulated += voltages @ (g_pos - g_neg)
        return accumulated / self.similarity_scale()

    def read_similarity(
        self, inputs: np.ndarray, *, rng: RandomState = None
    ) -> np.ndarray:
        """MVM through the sensing path (rectified + VTGT-thresholded).

        Returns similarity units; requires a :class:`SensingPath`.
        """
        if self.sensing is None:
            raise ConfigurationError(
                "read_similarity requires a SensingPath; use mvm() for raw reads"
            )
        currents = self.column_currents(inputs, rng=rng)
        voltages = self.sensing.sense(currents)
        return voltages / (self.sensing.r_sense * self.similarity_scale())

    # -- analysis ----------------------------------------------------------------

    def expected_error_sigma(self) -> float:
        """Predicted RMS similarity error per column for random inputs.

        Each device contributes conductance error from programming
        (relative ``sigma_p``, frozen) and read noise (relative ``sigma_r``,
        fresh per read).  For bipolar inputs the per-cell current error has
        RMS ``V * g * sigma`` with ``g in {g_on, g_off}``; summing the
        independent contributions of the ``2 * rows`` devices of a
        differential column and normalizing by ``V * delta_g`` gives

            sigma_sim = sqrt(rows * (g_on^2 + g_off^2) *
                             (sigma_p^2 + sigma_r^2)) / delta_g.

        Tests validate the simulated error against this closed form, and
        the fast statistical backend consumes it via
        :meth:`NoiseParameters.similarity_sigma
        <repro.cim.rram.noise.NoiseParameters.similarity_sigma>`.
        """
        dev = self.device
        per_pair_var = (dev.g_on**2 + dev.g_off**2) * (
            dev.sigma_program**2 + dev.sigma_read**2
        )
        return float(np.sqrt(self.rows * per_pair_var) / dev.delta_g)

    def __repr__(self) -> str:
        return (
            f"CrossbarArray({self.rows}x{self.cols}, "
            f"programmed={self.programmed})"
        )
