"""Current-sensing path: Rsense, VTGT threshold and rectification.

Fig. 2a's sensing chain: the selected column's differential current flows
through a sensing resistor (Rsense, for PVT immunity); the resulting
voltage is compared against the adjustable target voltage VTGT, and
supra-threshold values are forwarded to the SAR ADC.  Two behaviours of
this chain shape the factorization dynamics:

* only the *positive* differential current produces a supra-reference
  voltage (rectification), and
* VTGT acts as a programmable similarity threshold - the knob the paper
  adjusts for the testchip validation (Sec. V-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SensingPath:
    """Converts differential column current to a thresholded voltage.

    Attributes
    ----------
    r_sense:
        Sensing resistance in ohms.  The default (150 ohm) keeps a
        full-array differential read (up to ~1400 similarity units at
        0.1 V / 37.5 uS unit current) below the 0.8 V supply.
    v_target:
        VTGT threshold voltage; sensed voltages below it read as zero.
        :class:`repro.core.CIMBackend` retunes this per codebook through
        the adaptive threshold policy.
    v_supply:
        AVDD of the sensing path; sensed voltages clip here.
    rectify:
        Whether sub-zero differential currents are suppressed (standard
        single-ended sensing of the positive leg).
    """

    r_sense: float = 150.0
    v_target: float = 0.04
    v_supply: float = 0.8
    rectify: bool = True

    def __post_init__(self) -> None:
        check_positive("r_sense", self.r_sense)
        check_positive("v_target", self.v_target, allow_zero=True)
        check_positive("v_supply", self.v_supply)
        if self.v_target >= self.v_supply:
            raise ConfigurationError(
                f"v_target ({self.v_target}) must be below v_supply "
                f"({self.v_supply})"
            )

    def sense_voltage(self, currents: np.ndarray) -> np.ndarray:
        """Voltage across Rsense for differential column ``currents``."""
        voltages = np.asarray(currents, dtype=np.float64) * self.r_sense
        if self.rectify:
            voltages = np.maximum(voltages, 0.0)
        return np.minimum(voltages, self.v_supply)

    def apply_threshold(self, voltages: np.ndarray) -> np.ndarray:
        """Zero voltages below VTGT (the comparator gate)."""
        voltages = np.asarray(voltages, dtype=np.float64)
        return np.where(voltages >= self.v_target, voltages, 0.0)

    def sense(self, currents: np.ndarray) -> np.ndarray:
        """Full chain: current -> Rsense voltage -> VTGT gate."""
        return self.apply_threshold(self.sense_voltage(currents))

    def with_threshold(self, v_target: float) -> "SensingPath":
        """Copy of this path with a re-tuned VTGT (the paper's knob)."""
        return SensingPath(
            r_sense=self.r_sense,
            v_target=v_target,
            v_supply=self.v_supply,
            rectify=self.rectify,
        )

    def current_for_voltage(self, voltage: float) -> float:
        """Differential current that produces ``voltage`` at the sense node."""
        return voltage / self.r_sense
