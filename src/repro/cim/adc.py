"""SAR ADC model (the per-column converters on tier-1).

H3DFact assigns each RRAM column a 4-bit SAR ADC built in the 16 nm digital
tier (Sec. IV-B); Fig. 6a compares against an 8-bit design.  The model
covers the quantization transfer function, optional comparator noise and
static gain/offset calibration error, and exposes the conversion latency
and energy figures the architecture model consumes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cim.quantization import dead_zone, quantize_codes, reconstruct
from repro.errors import ConfigurationError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive


class SARADC:
    """Successive-approximation ADC over a unipolar input range.

    Parameters
    ----------
    bits:
        Resolution.  The paper's design point is 4; the comparison point in
        Fig. 6a is 8.
    comparator_noise_lsb:
        RMS comparator noise in LSBs, adding decision dither near code
        boundaries.  Real SAR comparators sit around 0.1-0.5 LSB.
    gain_error / offset_error_lsb:
        Static calibration residues ("Calibrated ADC" blocks in Fig. 4b
        null most, but not all, of these).
    sample_cycles:
        Conversion latency in clock cycles: one sampling cycle plus one
        bit-decision cycle per bit (plus margin) for a SAR loop.
    """

    def __init__(
        self,
        bits: int = 4,
        *,
        comparator_noise_lsb: float = 0.0,
        gain_error: float = 0.0,
        offset_error_lsb: float = 0.0,
        rng: RandomState = None,
    ) -> None:
        if not isinstance(bits, (int, np.integer)) or not 1 <= bits <= 16:
            raise ConfigurationError(f"bits must be in [1, 16], got {bits!r}")
        check_positive("comparator_noise_lsb", comparator_noise_lsb, allow_zero=True)
        self.bits = int(bits)
        self.comparator_noise_lsb = comparator_noise_lsb
        self.gain_error = gain_error
        self.offset_error_lsb = offset_error_lsb
        self._rng = as_rng(rng)

    # -- behaviour ------------------------------------------------------------

    @property
    def deterministic(self) -> bool:
        """True when conversion adds no comparator dither."""
        return self.comparator_noise_lsb == 0.0

    @property
    def levels(self) -> int:
        """Number of non-zero output codes, ``2**bits - 1``."""
        return (1 << self.bits) - 1

    def lsb(self, full_scale: float) -> float:
        """Input units per code step: ``full_scale / levels``."""
        check_positive("full_scale", full_scale)
        return full_scale / self.levels

    def dead_zone(self, full_scale: float) -> float:
        """Input magnitude below which the output code is 0."""
        return dead_zone(bits=self.bits, full_scale=full_scale)

    def codes(self, values: np.ndarray, *, full_scale: float) -> np.ndarray:
        """Digital output codes for analog ``values``."""
        values = np.asarray(values, dtype=np.float64)
        effective = values * (1.0 + self.gain_error)
        if self.offset_error_lsb:
            effective = effective + self.offset_error_lsb * self.lsb(full_scale)
        if self.comparator_noise_lsb > 0:
            noise = self._rng.normal(
                0.0, self.comparator_noise_lsb * self.lsb(full_scale), values.shape
            )
            effective = effective + noise
        return quantize_codes(effective, bits=self.bits, full_scale=full_scale)

    def convert(self, values: np.ndarray, *, full_scale: float) -> np.ndarray:
        """End-to-end transfer: quantize then reconstruct to physical units.

        This is the method the resonator backends call: the reconstructed
        value is what the projection tier effectively sees after the 4-bit
        digital word crosses the TSVs (Fig. 3, step III).
        """
        codes = self.codes(values, full_scale=full_scale)
        return reconstruct(codes, bits=self.bits, full_scale=full_scale)

    # -- costs (consumed by repro.hwmodel) ----------------------------------------

    @property
    def sample_cycles(self) -> int:
        """Clock cycles per conversion: sample + 1/bit + sync margin."""
        return self.bits + 2

    def __repr__(self) -> str:
        return f"SARADC(bits={self.bits})"
