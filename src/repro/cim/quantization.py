"""Uniform quantization helpers shared by the ADC and backend models."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive


def _check(bits: int, full_scale: float) -> None:
    if not isinstance(bits, (int, np.integer)) or bits < 1:
        raise ConfigurationError(f"bits must be a positive integer, got {bits!r}")
    check_positive("full_scale", float(full_scale))


def quantize_codes(
    values: np.ndarray, *, bits: int, full_scale: float
) -> np.ndarray:
    """Map non-negative ``values`` to integer codes ``0 .. 2^bits - 1``.

    Uniform mid-tread quantization over ``[0, full_scale]``; values above
    full scale clip to the top code (the converter saturates).
    """
    _check(bits, full_scale)
    levels = (1 << bits) - 1
    clipped = np.clip(np.asarray(values, dtype=np.float64), 0.0, full_scale)
    return np.round(clipped / full_scale * levels).astype(np.int64)


def reconstruct(codes: np.ndarray, *, bits: int, full_scale: float) -> np.ndarray:
    """Convert integer codes back to physical values (code * LSB)."""
    _check(bits, full_scale)
    levels = (1 << bits) - 1
    return np.asarray(codes, dtype=np.float64) * (full_scale / levels)


def uniform_quantize(
    values: np.ndarray, *, bits: int, full_scale: float
) -> np.ndarray:
    """Quantize and immediately reconstruct (the end-to-end ADC transfer)."""
    codes = quantize_codes(values, bits=bits, full_scale=full_scale)
    return reconstruct(codes, bits=bits, full_scale=full_scale)


def dead_zone(*, bits: int, full_scale: float) -> float:
    """Largest input that still quantizes to code 0 (half an LSB).

    The similarity dead zone is the sparsifying nonlinearity that makes the
    4-bit converter *help* convergence (Fig. 6a): inputs below half an LSB
    vanish from the projection entirely.
    """
    _check(bits, full_scale)
    levels = (1 << bits) - 1
    return 0.5 * full_scale / levels
