"""Wordline drivers: applying bipolar inputs to RRAM rows.

Bipolar inputs need no multi-bit DAC: a ``+1`` drives the read voltage in
the positive phase and a ``-1`` in the negated phase (two-phase differential
read).  Multi-bit inputs - the 4-bit similarity words driving the
projection tier - are applied bit-serially over ``bits`` phases with
digital shift-and-add after conversion, which is why the projection MVM
costs ``bits`` row passes in the timing model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.utils.validation import check_bipolar, check_positive


class WordlineDriver:
    """Drives one array's wordlines; tracks activation statistics.

    Parameters
    ----------
    rows:
        Number of wordlines (array rows).
    read_voltage:
        Read voltage amplitude in volts; 0.2 V is typical for 40 nm HfOx
        arrays (large enough to sense, small enough not to disturb).
    max_parallel_rows:
        Rows drivable simultaneously; sensing headroom limits full-array
        activation, so large MVMs run in row chunks (this is the ``8 row
        phases`` of the 69-cycle MVM interval in the timing model).
    """

    def __init__(
        self,
        rows: int,
        *,
        read_voltage: float = 0.2,
        max_parallel_rows: int = 32,
    ) -> None:
        if rows <= 0:
            raise ConfigurationError(f"rows must be positive, got {rows}")
        check_positive("read_voltage", read_voltage)
        if max_parallel_rows <= 0:
            raise ConfigurationError(
                f"max_parallel_rows must be positive, got {max_parallel_rows}"
            )
        self.rows = rows
        self.read_voltage = read_voltage
        self.max_parallel_rows = max_parallel_rows
        self.activations = 0

    def row_phases(self, active_rows: int) -> int:
        """Number of sequential row groups needed for ``active_rows``."""
        if active_rows <= 0:
            return 0
        return int(np.ceil(active_rows / self.max_parallel_rows))

    def bipolar_voltages(self, inputs: np.ndarray) -> np.ndarray:
        """Row voltages (two-phase differential collapsed to signed volts)."""
        inputs = np.asarray(inputs)
        if inputs.shape != (self.rows,):
            raise DimensionError(
                f"inputs shape {inputs.shape} does not match rows ({self.rows},)"
            )
        check_bipolar("wordline inputs", inputs)
        self.activations += 1
        return inputs.astype(np.float64) * self.read_voltage

    def bit_serial_phases(self, bits: int) -> int:
        """Phases to apply a ``bits``-wide digital input bit-serially."""
        if bits <= 0:
            raise ConfigurationError(f"bits must be positive, got {bits}")
        return bits

    def __repr__(self) -> str:
        return (
            f"WordlineDriver(rows={self.rows}, "
            f"read_voltage={self.read_voltage}, "
            f"max_parallel_rows={self.max_parallel_rows})"
        )
