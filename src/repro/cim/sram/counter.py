"""The -1's counter + adder: bipolar accumulation in digital logic.

Sec. III-A notes that existing VSA arrays map bipolar elements to single
bits and therefore cannot accumulate signed quantities.  H3DFact pairs each
array with a "-1's counter" and adder: for a bipolar dot product over ``n``
elements with ``k`` mismatches (i.e. ``k`` product terms equal to -1),

    dot = (n - k) - k = n - 2k,

so counting the -1 terms (a popcount after XNOR) plus one subtraction
reproduces the signed similarity exactly.  The SRAM-2D baseline design
computes *all* its MVMs this way.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.utils.validation import check_bipolar


class NegOnesCounter:
    """Digital bipolar dot-product engine (XNOR + popcount + adder)."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise DimensionError(f"width must be positive, got {width}")
        self.width = width
        self.dot_products = 0

    def count_neg_ones(self, a: np.ndarray, b: np.ndarray) -> int:
        """Number of element pairs whose product is -1 (the mismatches)."""
        a = check_bipolar("a", np.asarray(a))
        b = check_bipolar("b", np.asarray(b))
        if a.shape != (self.width,) or b.shape != (self.width,):
            raise DimensionError(
                f"operands must have shape ({self.width},), got "
                f"{a.shape} and {b.shape}"
            )
        return int(np.count_nonzero(a != b))

    def dot(self, a: np.ndarray, b: np.ndarray) -> int:
        """Signed bipolar dot product via the counter identity."""
        mismatches = self.count_neg_ones(a, b)
        self.dot_products += 1
        return self.width - 2 * mismatches

    def similarity_vector(self, matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Column-wise dot products ``matrix^T query`` (the digital MVM).

        The SRAM CIM baseline evaluates one column per counter per cycle
        group; this models the arithmetic (costs live in the timing model).

        Both operands are validated as bipolar: the counter identity
        ``n - 2k`` only holds for -1/+1 entries, so a float or non-bipolar
        ``matrix`` would silently produce wrong mismatch counts.
        """
        matrix = check_bipolar("matrix", np.asarray(matrix))
        if matrix.ndim != 2 or matrix.shape[0] != self.width:
            raise DimensionError(
                f"matrix shape {matrix.shape} incompatible with width "
                f"{self.width}"
            )
        query = check_bipolar("query", np.asarray(query))
        if query.shape != (self.width,):
            raise DimensionError(
                f"query shape {query.shape} does not match width "
                f"({self.width},)"
            )
        mismatches = (matrix != query[:, None]).sum(axis=0)
        self.dot_products += matrix.shape[1]
        return self.width - 2 * mismatches.astype(np.int64)
