"""Digital tier-1 building blocks: SRAM storage, XNOR unbinding, counters.

Per-cell units model one gate / counter at a time; the batched kernels
(:mod:`repro.cim.sram.batched`) run the same arithmetic word-parallel over
uint64 bit-planes, optionally through a runtime-compiled fused kernel
(:mod:`repro.cim.sram.native`).
"""

from repro.cim.sram.array import SRAMArray
from repro.cim.sram.batched import (
    PACKED_CODEBOOK_CACHE,
    PackedCodebook,
    PackedCodebookCache,
    pack_bipolar,
    pack_codebook,
    packed_xnor_unbind,
    popcount,
    tail_mask,
    unpack_bipolar,
    xnor_popcount_mvm,
)
from repro.cim.sram.buffer import SRAMBuffer
from repro.cim.sram.counter import NegOnesCounter
from repro.cim.sram.native import native_available
from repro.cim.sram.xnor import XNORUnbindUnit

__all__ = [
    "PACKED_CODEBOOK_CACHE",
    "PackedCodebook",
    "PackedCodebookCache",
    "NegOnesCounter",
    "SRAMArray",
    "SRAMBuffer",
    "XNORUnbindUnit",
    "native_available",
    "pack_bipolar",
    "pack_codebook",
    "packed_xnor_unbind",
    "popcount",
    "tail_mask",
    "unpack_bipolar",
    "xnor_popcount_mvm",
]
