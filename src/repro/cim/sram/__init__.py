"""Digital tier-1 building blocks: SRAM storage, XNOR unbinding, counters."""

from repro.cim.sram.array import SRAMArray
from repro.cim.sram.buffer import SRAMBuffer
from repro.cim.sram.counter import NegOnesCounter
from repro.cim.sram.xnor import XNORUnbindUnit

__all__ = ["SRAMArray", "SRAMBuffer", "NegOnesCounter", "XNORUnbindUnit"]
