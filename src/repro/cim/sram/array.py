"""SRAM array model: storage with word-granular access accounting.

Tier-1 integrates SRAM for two roles (Sec. IV-A): register files /
working-set storage for the digital units, and the batch buffer
(:class:`repro.cim.sram.buffer.SRAMBuffer`).  The model tracks accesses so
the energy model can charge per-read/per-write costs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.utils.validation import check_positive


class SRAMArray:
    """Word-addressable SRAM macro.

    Parameters
    ----------
    words:
        Number of addressable words.
    word_bits:
        Width of each word in bits.
    """

    def __init__(self, words: int, word_bits: int = 32) -> None:
        if words <= 0:
            raise ConfigurationError(f"words must be positive, got {words}")
        if word_bits <= 0:
            raise ConfigurationError(f"word_bits must be positive, got {word_bits}")
        self.words = words
        self.word_bits = word_bits
        self._storage = np.zeros(words, dtype=np.int64)
        self._valid = np.zeros(words, dtype=bool)
        self.reads = 0
        self.writes = 0

    @property
    def capacity_bits(self) -> int:
        """Total storage in bits, ``words * word_bits``."""
        return self.words * self.word_bits

    def _check_address(self, address: int) -> int:
        if not 0 <= address < self.words:
            raise DimensionError(
                f"address {address} out of range [0, {self.words})"
            )
        return address

    def _check_value(self, value: int) -> int:
        # Signed two's-complement range [-2^(b-1), 2^(b-1)).  The old bound
        # (-2^(b-1) <= value < 2^b) mixed the unsigned-positive and
        # signed-negative ranges in the same word, so values that cannot
        # coexist in one b-bit encoding were both accepted.
        limit = 1 << (self.word_bits - 1)
        if not -limit <= value < limit:
            raise ConfigurationError(
                f"value {value} does not fit in a signed {self.word_bits}-bit "
                f"word [{-limit}, {limit})"
            )
        return int(value)

    def write(self, address: int, value: int) -> None:
        """Store ``value`` at ``address`` (counted for the energy model)."""
        self._check_address(address)
        self._storage[address] = self._check_value(value)
        self._valid[address] = True
        self.writes += 1

    def read(self, address: int) -> int:
        """Return the word at ``address`` (counted for the energy model)."""
        self._check_address(address)
        if not self._valid[address]:
            raise ConfigurationError(f"read of unwritten address {address}")
        self.reads += 1
        return int(self._storage[address])

    def write_block(self, start: int, values: np.ndarray) -> None:
        """Store consecutive ``values`` from ``start``, one write per word."""
        values = np.asarray(values, dtype=np.int64)
        if start < 0 or start + values.size > self.words:
            raise DimensionError(
                f"block [{start}, {start + values.size}) exceeds array size "
                f"{self.words}"
            )
        for value in values:
            self._check_value(int(value))
        self._storage[start : start + values.size] = values
        self._valid[start : start + values.size] = True
        self.writes += values.size

    def read_block(self, start: int, count: int) -> np.ndarray:
        """Return ``count`` words from ``start``, one read per word."""
        if start < 0 or start + count > self.words:
            raise DimensionError(
                f"block [{start}, {start + count}) exceeds array size "
                f"{self.words}"
            )
        if not self._valid[start : start + count].all():
            raise ConfigurationError(
                f"block read of unwritten addresses in [{start}, {start + count})"
            )
        self.reads += count
        return self._storage[start : start + count].copy()
