"""Runtime-compiled XNOR + popcount MVM kernel (tier-1 fast path).

The packed bit-plane similarity MVM (:mod:`repro.cim.sram.batched`) is a
three-pass operation in numpy (XOR, per-word popcount, reduction) and the
intermediate traffic keeps it roughly at parity with the float32 GEMM it
is supposed to beat.  The hardware argument of Sec. III-A - one fused
XNOR -> popcount -> accumulate pipeline per column - needs a fused kernel
in software too, so this module compiles a ~20-line C kernel with the
host toolchain at first use and loads it through :mod:`ctypes`.

Design constraints:

* **Optional.** No compiler (or ``H3DFACT_NO_NATIVE=1``) degrades to the
  pure-numpy kernel, which is the bit-exactness reference anyway; every
  result is identical, only the wall-clock changes.
* **No dependencies.** Only the C toolchain already on the host plus the
  standard library; nothing is installed.
* **Process-cached.** The shared object is built once into a private
  temporary directory and reused for the life of the process.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

#: Environment variable disabling the compiled kernel (forces numpy).
NO_NATIVE_ENV = "H3DFACT_NO_NATIVE"

#: The fused kernel: for every (query t, item m) pair, XOR the packed
#: uint64 words, popcount, and accumulate - ``out[t, m]`` is the mismatch
#: count ``k`` of the counter identity ``dot = n - 2k``.
_SOURCE = r"""
#include <stdint.h>

void xnor_popcount_mvm(const uint64_t *items, const uint64_t *queries,
                       int64_t *out, long trials, long size, long words) {
    for (long t = 0; t < trials; ++t) {
        const uint64_t *q = queries + t * words;
        for (long m = 0; m < size; ++m) {
            const uint64_t *item = items + m * words;
            int64_t acc = 0;
            for (long w = 0; w < words; ++w)
                acc += __builtin_popcountll(q[w] ^ item[w]);
            out[t * size + m] = acc;
        }
    }
}
"""

_lock = threading.Lock()
_attempted = False
_kernel: Optional[ctypes.CFUNCTYPE] = None


def _find_compiler() -> Optional[str]:
    """A usable C compiler, honouring ``CC``; ``None`` when absent."""
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for candidate in candidates:
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _compile() -> Optional[ctypes.CFUNCTYPE]:
    """Build and load the shared object; ``None`` on any failure."""
    compiler = _find_compiler()
    if compiler is None:
        return None
    build_dir = tempfile.mkdtemp(prefix="h3dfact-sram-")
    source = os.path.join(build_dir, "xnor_popcount.c")
    library = os.path.join(build_dir, "xnor_popcount.so")
    with open(source, "w", encoding="utf-8") as handle:
        handle.write(_SOURCE)
    base = ["-O3", "-funroll-loops", "-shared", "-fPIC", source, "-o", library]
    # -march=native unlocks hardware popcount / vectorization but is not
    # universally supported (e.g. some clang/arch combinations), so retry
    # portably before giving up.
    for flags in (["-march=native"] + base, base):
        try:
            result = subprocess.run(
                [compiler] + flags,
                capture_output=True,
                timeout=120,
                check=False,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        if result.returncode == 0:
            break
    else:
        return None
    try:
        lib = ctypes.CDLL(library)
    except OSError:
        return None
    fn = lib.xnor_popcount_mvm
    fn.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_long,
        ctypes.c_long,
        ctypes.c_long,
    ]
    fn.restype = None
    return fn


def popcount_mvm_kernel() -> Optional[ctypes.CFUNCTYPE]:
    """The fused mismatch-count kernel, or ``None`` when unavailable.

    The callable signature is ``fn(items_ptr, queries_ptr, out_ptr,
    trials, size, words)`` over C-contiguous uint64 ``(size, words)`` /
    ``(trials, words)`` inputs and an int64 ``(trials, size)`` output.
    Compilation happens once per process; failures (no compiler, sandbox
    restrictions) are cached as ``None`` so callers fall back to numpy
    without retry storms.
    """
    global _attempted, _kernel
    if os.environ.get(NO_NATIVE_ENV):
        return None
    with _lock:
        if not _attempted:
            _kernel = _compile()
            _attempted = True
        return _kernel


def native_available() -> bool:
    """True when the compiled kernel is usable in this process."""
    return popcount_mvm_kernel() is not None
