"""Batched tier-1 kernels: uint64 bit-planes, XNOR unbind, popcount MVM.

The per-cell units (:class:`~repro.cim.sram.counter.NegOnesCounter`,
:class:`~repro.cim.sram.xnor.XNORUnbindUnit`) model one gate / one counter
at a time.  This module is the word-parallel view the hardware actually
executes (Sec. III-A/III-B): bipolar vectors packed 64 lanes per uint64
word, unbinding as whole-word XNOR, and the similarity MVM as XOR +
popcount + accumulate per codebook column - the ``dot = n - 2k`` counter
identity over whole bit-planes.

Every kernel is bit-exact against the per-cell units (pinned by
``tests/test_sram_batched.py`` across widths 1..129, covering every
``width % 8`` and ``width % 64`` residue):

* **Packing** pads the tail word with zero lanes.  XOR of two packed
  vectors therefore has a zero tail, so mismatch popcounts need no mask;
  only operations that *invert* words (XNOR unbind) must re-mask the tail
  (:func:`tail_mask`).
* **Popcount** uses ``np.bitwise_count`` (numpy >= 2.0) with a byte-table
  fallback, and the hot MVM path dispatches to a tiny C kernel compiled
  at first use (:mod:`repro.cim.sram.native`) - same integers, fused
  single pass - falling back to the numpy implementation when no
  toolchain is available.

Lane order is little-endian (lane ``i`` of word ``w`` is element
``64 * w + i``), matching ``np.packbits(bitorder="little")`` plus a
little-endian uint64 view - the layout of every mainstream target.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.cim.sram.native import popcount_mvm_kernel
from repro.errors import DimensionError
from repro.vsa.codebook import Codebook, codebook_fingerprint

#: Lanes per packed word.
WORD_BITS = 64

#: Byte-level popcount table for the numpy fallback on numpy < 2.0.
_POPCOUNT8 = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)

#: Row-chunk budget (elements of the (chunk, size, words) XOR intermediate)
#: for the pure-numpy MVM, bounding its scratch memory.
_NUMPY_CHUNK_ELEMENTS = 1 << 22


def num_words(width: int) -> int:
    """Packed uint64 words holding ``width`` lanes."""
    if width <= 0:
        raise DimensionError(f"width must be positive, got {width}")
    return (width + WORD_BITS - 1) // WORD_BITS


def tail_mask(width: int) -> np.uint64:
    """Mask of the valid lanes in the last packed word of ``width``."""
    residue = width % WORD_BITS
    if residue == 0:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << residue) - 1)


def pack_bipolar(vectors: np.ndarray) -> np.ndarray:
    """Pack bipolar ``(..., width)`` vectors into uint64 ``(..., words)``.

    ``+1 -> 1`` / ``-1 -> 0`` (the tier-1 bit encoding); tail lanes beyond
    ``width`` are zero.  Inputs may be any numeric dtype with -1/+1 values
    (int8 codebooks, float32 resonator states).
    """
    vectors = np.asarray(vectors)
    if vectors.ndim == 0 or vectors.shape[-1] == 0:
        raise DimensionError("pack_bipolar needs a trailing vector axis")
    bits = (vectors > 0).astype(np.uint8)
    packed8 = np.packbits(bits, axis=-1, bitorder="little")
    pad = (-packed8.shape[-1]) % 8
    if pad:
        packed8 = np.concatenate(
            [packed8, np.zeros(packed8.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(packed8).view(np.uint64)


def unpack_bipolar(packed: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`pack_bipolar`: uint64 words -> int64 -1/+1."""
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.shape[-1] != num_words(width):
        raise DimensionError(
            f"{packed.shape[-1]} packed words do not hold width {width} "
            f"(expected {num_words(width)})"
        )
    as_bytes = packed.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")[..., :width]
    return 2 * bits.astype(np.int64) - 1


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-word population count (int64), any shape of uint64 words."""
    words = np.asarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.int64)
    counts = _POPCOUNT8[np.ascontiguousarray(words).view(np.uint8)]
    return counts.reshape(words.shape + (8,)).sum(axis=-1, dtype=np.int64)


def packed_xnor_unbind(
    product: np.ndarray, factors: Sequence[np.ndarray], width: int
) -> np.ndarray:
    """Word-parallel XNOR unbind on packed ``(..., words)`` operands.

    Equals :meth:`XNORUnbindUnit.unbind
    <repro.cim.sram.xnor.XNORUnbindUnit.unbind>` on the unpacked vectors;
    the tail word is re-masked after every inversion so padding lanes stay
    zero (the invariant every popcount here relies on).
    """
    words = num_words(width)
    result = np.array(product, dtype=np.uint64)  # copy: masked in place
    if result.shape[-1] != words:
        raise DimensionError(
            f"product has {result.shape[-1]} words, width {width} needs {words}"
        )
    mask = tail_mask(width)
    for factor in factors:
        factor = np.asarray(factor, dtype=np.uint64)
        if factor.shape[-1] != words:
            raise DimensionError(
                f"factor has {factor.shape[-1]} words, width {width} "
                f"needs {words}"
            )
        result = np.bitwise_not(np.bitwise_xor(result, factor))
        result[..., -1] &= mask
    return result


def xnor_popcount_mvm(
    items: np.ndarray, queries: np.ndarray, width: int
) -> np.ndarray:
    """Batched counter-identity similarity: ``width - 2 * mismatches``.

    ``items`` is the packed codebook, ``(size, words)`` (one row per code
    vector); ``queries`` is ``(trials, words)``.  Returns the int64
    ``(trials, size)`` similarity matrix ``Q X`` - bit-identical to
    :meth:`NegOnesCounter.similarity_vector
    <repro.cim.sram.counter.NegOnesCounter.similarity_vector>` per row.
    Both operands must come from :func:`pack_bipolar` (zero tail lanes).
    """
    items = np.ascontiguousarray(items, dtype=np.uint64)
    queries = np.ascontiguousarray(queries, dtype=np.uint64)
    if items.ndim != 2 or queries.ndim != 2:
        raise DimensionError(
            f"expected 2-D packed operands, got {items.shape} and "
            f"{queries.shape}"
        )
    words = num_words(width)
    if items.shape[1] != words or queries.shape[1] != words:
        raise DimensionError(
            f"packed operands {items.shape} / {queries.shape} do not match "
            f"width {width} ({words} words)"
        )
    trials, size = queries.shape[0], items.shape[0]
    mismatches = np.empty((trials, size), dtype=np.int64)
    kernel = popcount_mvm_kernel()
    if kernel is not None and trials and size:
        kernel(
            items.ctypes.data,
            queries.ctypes.data,
            mismatches.ctypes.data,
            trials,
            size,
            words,
        )
    else:
        # Pure-numpy fallback: chunk the (trials, size, words) XOR
        # intermediate so scratch memory stays bounded.
        chunk = max(1, _NUMPY_CHUNK_ELEMENTS // max(1, size * words))
        for start in range(0, trials, chunk):
            block = np.bitwise_xor(
                queries[start : start + chunk, None, :], items[None, :, :]
            )
            mismatches[start : start + chunk] = popcount(block).sum(
                axis=-1, dtype=np.int64
            )
    return width - 2 * mismatches


@dataclass(frozen=True)
class PackedCodebook:
    """A codebook frozen into tier-1 bit-planes.

    ``items`` is uint64 ``(size, words)``: row ``m`` is code vector ``m``
    packed along the dimension axis, the operand layout of
    :func:`xnor_popcount_mvm`.
    """

    items: np.ndarray
    width: int
    size: int

    @property
    def words(self) -> int:
        """Packed words per code vector."""
        return self.items.shape[1]


def pack_codebook(codebook: Codebook) -> PackedCodebook:
    """Pack a bipolar codebook's transpose into :class:`PackedCodebook`."""
    items = pack_bipolar(np.ascontiguousarray(codebook.matrix.T))
    return PackedCodebook(
        items=items, width=codebook.dim, size=codebook.size
    )


class PackedCodebookCache:
    """Content-keyed LRU of packed codebooks (cf. the conductance cache).

    Packing is a pure function of codebook content, so eviction is
    invisible to results - a returning codebook re-packs bit-identically,
    mirroring :class:`~repro.core.crossbar_backend.ConductanceCache`.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, PackedCodebook]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, codebook: Codebook) -> PackedCodebook:
        """Packed bit-planes for ``codebook``, packing on first sight."""
        from repro.telemetry import get_log

        key = codebook_fingerprint(codebook)
        log = get_log()
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            if log.enabled:
                log.emit("cache.hit", cache="packed_codebook", key=key[:16])
            return cached
        packed = pack_codebook(codebook)
        self.misses += 1
        if log.enabled:
            log.emit("cache.miss", cache="packed_codebook", key=key[:16])
        self._entries[key] = packed
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            if log.enabled:
                log.emit("cache.eviction", cache="packed_codebook")
        return packed

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PackedCodebookCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


#: Process-wide default cache: every SRAM backend shares one pack-once
#: store, mirroring one fabricated tier-1 serving all traffic.
PACKED_CODEBOOK_CACHE = PackedCodebookCache()
