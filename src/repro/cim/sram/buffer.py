"""SRAM batch buffer: decouples the similarity and projection tiers.

Sec. IV-A: with batch sizes > 1, tier-3 may still be producing similarity
results for one batch element while tier-2 needs inputs for another; since
only one RRAM tier can be active at a time (shared peripherals), tier-1
buffers ADC outputs in SRAM.  The buffer is a bounded FIFO of similarity
words; the dataflow simulator uses its occupancy to schedule tier
activations, and tests verify the single-active-tier invariant holds for
any batch size.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive


class SRAMBuffer:
    """Bounded FIFO of fixed-width entries with peak-occupancy tracking.

    Parameters
    ----------
    capacity_entries:
        Maximum simultaneously buffered entries (sized so one factorization
        batch of 4-bit similarity vectors fits; see
        :meth:`required_capacity`).
    entry_bits:
        Storage cost of one entry in bits (for the area model).
    """

    def __init__(self, capacity_entries: int, entry_bits: int) -> None:
        if capacity_entries <= 0:
            raise ConfigurationError(
                f"capacity_entries must be positive, got {capacity_entries}"
            )
        if entry_bits <= 0:
            raise ConfigurationError(
                f"entry_bits must be positive, got {entry_bits}"
            )
        self.capacity_entries = capacity_entries
        self.entry_bits = entry_bits
        self._fifo: Deque[Tuple[int, np.ndarray]] = deque()
        self.peak_occupancy = 0
        self.total_pushes = 0

    @staticmethod
    def required_capacity(batch_size: int, num_factors: int) -> int:
        """Entries needed to buffer one similarity sweep of a whole batch."""
        if batch_size <= 0 or num_factors <= 0:
            raise ConfigurationError(
                "batch_size and num_factors must be positive, got "
                f"{batch_size} and {num_factors}"
            )
        return batch_size * num_factors

    @property
    def capacity_bits(self) -> int:
        """Total buffer storage in bits (sizes the tier-1 area model)."""
        return self.capacity_entries * self.entry_bits

    @property
    def occupancy(self) -> int:
        """Entries currently buffered."""
        return len(self._fifo)

    @property
    def full(self) -> bool:
        """True when a push would overflow (backpressure condition)."""
        return self.occupancy >= self.capacity_entries

    @property
    def empty(self) -> bool:
        """True when a pop would underflow."""
        return not self._fifo

    def push(self, tag: int, payload: np.ndarray) -> None:
        """Store one similarity word (raises when full - backpressure)."""
        if self.full:
            raise ConfigurationError(
                f"buffer overflow: capacity {self.capacity_entries} reached"
            )
        self._fifo.append((tag, np.asarray(payload)))
        self.total_pushes += 1
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)

    def pop(self) -> Tuple[int, np.ndarray]:
        """Retrieve the oldest entry (raises when empty)."""
        if self.empty:
            raise ConfigurationError("buffer underflow: pop from empty buffer")
        return self._fifo.popleft()

    def __len__(self) -> int:
        return self.occupancy
