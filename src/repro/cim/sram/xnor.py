"""XNOR-based unbinding unit (tier-1 digital compute).

Binding/unbinding of bipolar vectors is element-wise multiplication, which
in the 1-bit encoding (``+1 -> 1``, ``-1 -> 0``) is exactly XNOR
(Sec. III-B, following the mixed-signal binary-CNN trick of [28]).  This
unit performs the per-iteration unbinding digitally so the RRAM arrays are
never re-programmed inside the factorization loop.

The implementation operates on packed bits to mirror the hardware's
word-parallel gates, and is validated against plain bipolar multiplication
in tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DimensionError
from repro.utils.validation import check_bipolar


def to_bits(vector: np.ndarray) -> np.ndarray:
    """Encode bipolar {-1,+1} as bits {0,1} (+1 -> 1)."""
    vector = check_bipolar("vector", np.asarray(vector))
    return (vector > 0).astype(np.uint8)


def from_bits(bits: np.ndarray) -> np.ndarray:
    """Decode bits {0,1} back to bipolar {-1,+1} (int64, the library's
    signed-arithmetic convention - matches ``NegOnesCounter`` outputs)."""
    bits = np.asarray(bits)
    return 2 * bits.astype(np.int64) - 1


class XNORUnbindUnit:
    """Word-parallel XNOR array computing bipolar products.

    Parameters
    ----------
    width:
        Vector width in elements (one XNOR gate per element in hardware;
        here one packed-bit lane).
    """

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise DimensionError(f"width must be positive, got {width}")
        self.width = width
        self.operations = 0

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector)
        if vector.shape != (self.width,):
            raise DimensionError(
                f"vector shape {vector.shape} does not match unit width "
                f"({self.width},)"
            )
        return vector

    def unbind(self, product: np.ndarray, *factors: np.ndarray) -> np.ndarray:
        """XNOR-unbind ``factors`` from ``product``; returns bipolar.

        XNOR truth table on the bit encoding equals multiplication on the
        bipolar encoding: ``XNOR(a, b) = NOT (a XOR b)``.
        """
        bits = to_bits(self._check(product))
        for factor in factors:
            other = to_bits(self._check(factor))
            bits = np.logical_not(np.logical_xor(bits, other)).astype(np.uint8)
            self.operations += 1
        return from_bits(bits)

    def unbind_packed(
        self, product_bits: np.ndarray, factor_bits: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Same operation on ``np.packbits``-packed words (8 lanes/byte).

        This is the representation the hardware actually streams over the
        register files; exposed for the dataflow simulator.

        When ``width`` is not a multiple of 8 the last byte carries padding
        lanes; the full-byte NOT of the XNOR would set those lanes to 1, so
        the result is masked back to the valid lanes (``np.packbits`` pads
        at the low end of the last byte, i.e. the valid lanes are its top
        ``width % 8`` bits).  Downstream popcounts/unpacks over the packed
        words would otherwise overcount.
        """
        packed = np.array(product_bits, dtype=np.uint8)  # copy: masked in place
        expected_bytes = (self.width + 7) // 8
        if packed.shape != (expected_bytes,):
            raise DimensionError(
                f"packed shape {packed.shape} does not match unit width "
                f"{self.width} (({expected_bytes},) bytes)"
            )
        for factor in factor_bits:
            packed = np.invert(np.bitwise_xor(packed, np.asarray(factor, dtype=np.uint8)))
            self.operations += 1
        tail = self.width % 8
        if tail:
            packed[-1] &= np.uint8((0xFF << (8 - tail)) & 0xFF)
        return packed

    def __repr__(self) -> str:
        return f"XNORUnbindUnit(width={self.width})"
