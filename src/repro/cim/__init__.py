"""Compute-in-memory primitives: RRAM crossbars, SRAM digital units, ADCs.

The subpackages model the circuit blocks of Fig. 2:

* :mod:`repro.cim.rram` - the analog RRAM tiers (device statistics,
  differential crossbar MVM, current sensing with Rsense/VTGT).
* :mod:`repro.cim.sram` - the digital tier-1 blocks (XNOR unbinding,
  -1's counter + adder, SRAM buffering).
* :mod:`repro.cim.adc` / :mod:`repro.cim.dac` - the converters between the
  analog and digital domains.
"""

from repro.cim.adc import SARADC
from repro.cim.dac import WordlineDriver
from repro.cim.quantization import (
    dead_zone,
    quantize_codes,
    reconstruct,
    uniform_quantize,
)
from repro.cim.rram import (
    CrossbarArray,
    NoiseParameters,
    ProgrammingModel,
    RRAMDeviceModel,
    SensingPath,
)
from repro.cim.sram import (
    NegOnesCounter,
    SRAMArray,
    SRAMBuffer,
    XNORUnbindUnit,
)

__all__ = [
    "SARADC",
    "WordlineDriver",
    "dead_zone",
    "quantize_codes",
    "reconstruct",
    "uniform_quantize",
    "CrossbarArray",
    "NoiseParameters",
    "ProgrammingModel",
    "RRAMDeviceModel",
    "SensingPath",
    "NegOnesCounter",
    "SRAMArray",
    "SRAMBuffer",
    "XNORUnbindUnit",
]
