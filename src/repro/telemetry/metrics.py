"""Fixed-bucket histogram and counter primitives for runtime metrics.

These are the in-memory aggregation side of telemetry: the scheduler
keeps batch-size and queue-depth :class:`Histogram`\\ s that ``/metrics``
surfaces, independent of whether the JSONL event log is enabled.  Buckets
are fixed at construction (no rebinning), observation is O(log buckets)
and thread-safe, and the JSON form (``to_dict``) is what travels over the
worker metrics op and the HTTP ``/metrics`` payload.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Sequence

#: Default buckets for batch-size distributions (powers of two up to the
#: scheduler's plausible max batch).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Default buckets for queue-depth distributions (0 = drained intake).
QUEUE_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Default buckets for request-latency distributions, in milliseconds
#: (1 ms .. 30 s, roughly 1-2-5 per decade).  Unlike the percentile
#: window the HTTP server also reports, bucket counts merge exactly
#: across nodes - the basis of the cluster-aggregated ``/metrics`` view
#: (``h3dfact cluster status`` sums them bucket-wise).
LATENCY_MS_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 30000.0,
)


class Counter:
    """Thread-safe monotonic counter (JSON-safe via :attr:`value`)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``bounds`` are inclusive upper bounds in increasing order; one
    overflow bucket catches observations above the last bound.  The
    percentile estimate returns the upper bound of the bucket holding the
    nearest-rank observation - coarse by construction, but stable,
    mergeable and O(buckets) to serialize, which is what a ``/metrics``
    endpoint wants.
    """

    def __init__(self, bounds: Sequence[float] = BATCH_SIZE_BUCKETS) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if any(b >= c for b, c in zip(ordered, ordered[1:])):
            raise ValueError(f"bounds must strictly increase, got {bounds}")
        self.bounds = ordered
        self._counts = [0] * (len(ordered) + 1)
        self._total = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Count one observation into its bucket."""
        index = bisect_left(self.bounds, float(value))
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += float(value)

    @property
    def count(self) -> int:
        """Total observations."""
        return self._total

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        with self._lock:
            return self._sum / self._total if self._total else 0.0

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the nearest-rank observation.

        Returns the last finite bound for overflow-bucket ranks and 0.0
        for an empty histogram.
        """
        with self._lock:
            if not self._total:
                return 0.0
            rank = min(self._total - 1, max(0, int(fraction * self._total)))
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if rank < cumulative:
                    return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def counts(self) -> List[int]:
        """Bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form: bounds, per-bucket counts, total and mean."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._total,
                "mean": self._sum / self._total if self._total else 0.0,
            }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, bounds={self.bounds})"
