"""Process-safe structured runtime telemetry (JSONL events + histograms).

The serving stack's observability layer: a schema-versioned JSONL
:class:`EventLog` (bounded-queue non-blocking writer, drop counting),
fixed-bucket :class:`Histogram` / :class:`Counter` primitives, and an
offline reader/validator/summarizer (:mod:`repro.telemetry.summarize`,
surfaced as ``h3dfact telemetry``).

**Enabling.**  Telemetry is *disabled by default*: :func:`get_log`
returns the no-op :data:`NULL_LOG` sink and instrumented call sites guard
with ``if log.enabled:``, so a telemetry-off run builds no event dicts
and seeded results stay bit-identical.  Two ways to turn it on:

* set the :data:`TELEMETRY_ENV` environment variable
  (``H3DFACT_TELEMETRY=/path/to/events.jsonl``) - the process-safe
  route: worker processes inherit the environment (fork or spawn) and
  each appends whole lines to the shared path through ``O_APPEND``;
* call :func:`configure` for an explicit, process-local sink (tests).

:func:`get_log` also detects a forked child carrying the parent's log
(whose writer thread did not survive the fork) and transparently
rebuilds from the environment, so ``ShardedWorkerPool`` workers log
correctly under every start method.

Trace ids (:func:`mint_trace_id`) are minted at the transport seam,
propagated over the wire codec, and correlate one request's events
across client, HTTP server, pool frontend and worker scheduler - they
never feed seeds or batch keys, so tracing cannot perturb results.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.telemetry.events import (
    ENVELOPE_FIELDS,
    EVENT_TYPES,
    LIFECYCLE_STAGES,
    SCHEMA_VERSION,
    mint_trace_id,
)
from repro.telemetry.log import (
    NULL_LOG,
    ROTATE_ENV,
    EventLog,
    NullEventLog,
    rotation_segments,
    segment_path,
)
from repro.telemetry.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_MS_BUCKETS,
    QUEUE_DEPTH_BUCKETS,
    Counter,
    Histogram,
)
from repro.telemetry.summarize import (
    LogSummary,
    read_events,
    summarize,
    trace_waterfall,
    validate_events,
)

#: Environment variable naming the JSONL path that enables telemetry.
TELEMETRY_ENV = "H3DFACT_TELEMETRY"

_active: Optional[EventLog] = None
_explicit = False
_env_path: Optional[str] = None


def configure(
    path: Optional[str], *, max_segment_bytes: Optional[int] = None
) -> Union[EventLog, NullEventLog]:
    """Install an explicit process-local sink (``None`` disables).

    Closes any previously active sink.  Explicit configuration wins over
    the environment variable in this process; child worker processes
    still read the environment, so callers that shard should set
    :data:`TELEMETRY_ENV` (and, for long-soak rotation,
    :data:`~repro.telemetry.log.ROTATE_ENV`) instead (the CLI does).
    """
    global _active, _explicit, _env_path
    if _active is not None and _active.pid == os.getpid():
        _active.close()
    _env_path = None
    if path is None:
        _active, _explicit = None, True
        return NULL_LOG
    _active, _explicit = (
        EventLog(path, max_segment_bytes=max_segment_bytes),
        True,
    )
    return _active


def reset() -> None:
    """Close the active sink and return to environment-driven resolution."""
    global _active, _explicit, _env_path
    if _active is not None and _active.pid == os.getpid():
        _active.close()
    _active, _explicit, _env_path = None, False, None


def get_log() -> Union[EventLog, NullEventLog]:
    """The process's active event sink (:data:`NULL_LOG` when disabled).

    Cheap enough for hot paths: one environment lookup plus comparisons.
    Re-resolves when the environment variable changes and when the
    process id changes (a forked worker inherits the parent's log object
    but not its writer thread, so it must rebuild its own).
    """
    global _active, _explicit, _env_path
    if _active is not None and _active.pid != os.getpid():
        # Forked child: the inherited writer thread is gone.  Drop the
        # inherited object (closing it would double-close the parent's
        # file descriptor bookkeeping) and fall through to env resolution.
        _active, _explicit, _env_path = None, False, None
    if _explicit:
        return _active if _active is not None else NULL_LOG
    env = os.environ.get(TELEMETRY_ENV) or None
    if env != _env_path:
        if _active is not None:
            _active.close()
        if env:
            rotate = os.environ.get(ROTATE_ENV) or None
            _active = EventLog(
                env,
                max_segment_bytes=int(rotate) if rotate else None,
            )
        else:
            _active = None
        _env_path = env
    return _active if _active is not None else NULL_LOG


__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "ENVELOPE_FIELDS",
    "EVENT_TYPES",
    "EventLog",
    "Histogram",
    "LIFECYCLE_STAGES",
    "LogSummary",
    "NULL_LOG",
    "NullEventLog",
    "QUEUE_DEPTH_BUCKETS",
    "LATENCY_MS_BUCKETS",
    "ROTATE_ENV",
    "SCHEMA_VERSION",
    "TELEMETRY_ENV",
    "configure",
    "get_log",
    "mint_trace_id",
    "read_events",
    "reset",
    "rotation_segments",
    "segment_path",
    "summarize",
    "trace_waterfall",
    "validate_events",
]
