"""JSONL event log with a bounded-queue, non-blocking writer.

:class:`EventLog` is the write side of the telemetry subsystem.  Design
constraints, in order:

* **never backpressure the hot path** - :meth:`EventLog.emit` is a dict
  build plus a ``put_nowait``; when the bounded queue is full the event
  is *dropped and counted* (the drop count is surfaced through
  ``/metrics`` and in the final ``telemetry.close`` record), never
  blocked on;
* **process-safe** - each process owns one writer thread appending to the
  shared path through an ``O_APPEND`` file descriptor with one
  ``write()`` per drained burst of complete lines, so concurrent worker
  processes interleave whole lines, never partial ones;
* **self-describing** - every record carries the schema version and the
  ``(pid, lid, seq)`` envelope that lets the validator detect loss and
  order per producer.

:data:`NULL_LOG` is the disabled sink: ``enabled`` is ``False`` and
:meth:`NullEventLog.emit` is a no-op, so instrumented call sites guard
with ``if log.enabled:`` and a telemetry-off run does no extra work
beyond that attribute check - the basis of the bit-identical /
unmeasurable-overhead guarantee.
"""

from __future__ import annotations

import itertools
import json
import os
import os.path
import queue
import threading
import time
import uuid
from typing import Any, List, Optional, Tuple

from repro.telemetry.events import SCHEMA_VERSION

#: Default bound on buffered (unwritten) events per process.
DEFAULT_QUEUE_CAPACITY = 8192

#: Environment variable enabling size-based segment rotation (bytes per
#: segment) for environment-configured logs; worker processes inherit it
#: alongside :data:`repro.telemetry.TELEMETRY_ENV`.
ROTATE_ENV = "H3DFACT_TELEMETRY_ROTATE_BYTES"

_CLOSE = object()


def segment_path(path: str, index: int) -> str:
    """The ``index``-th rotation segment for ``path``.

    ``events.jsonl`` rotates as ``events.0.jsonl``, ``events.1.jsonl``,
    ... - the index sits before the extension so segments keep the
    ``*.jsonl`` suffix tooling filters on.
    """
    root, ext = os.path.splitext(path)
    return f"{root}.{index}{ext}"


def rotation_segments(path: str) -> List[Tuple[int, str]]:
    """Existing rotation segments of ``path`` as ``(index, path)`` pairs.

    Sorted ascending by segment index.  Purely a directory scan, so the
    reader and every concurrently-writing process agree on the newest
    segment without coordination.
    """
    directory, filename = os.path.split(path)
    root, ext = os.path.splitext(filename)
    prefix = root + "."
    try:
        names = os.listdir(directory or ".")
    except OSError:
        return []
    segments = []
    for name in names:
        if not (name.startswith(prefix) and name.endswith(ext)):
            continue
        middle = name[len(prefix):len(name) - len(ext)] if ext else name[
            len(prefix):
        ]
        if middle.isdigit():
            segments.append((int(middle), os.path.join(directory, name)))
    segments.sort()
    return segments


def _coerce(value: Any) -> Any:
    """JSON fallback: numpy scalars via ``.item()``, anything else ``str``."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class EventLog:
    """Append-only JSONL event sink with a background writer thread.

    Parameters
    ----------
    path:
        JSONL file to append to (created if missing).  Multiple processes
        may share one path; each appends whole lines.
    queue_capacity:
        Bound on buffered events; overflow is dropped and counted.
    autostart:
        Start the writer thread immediately (tests pass ``False`` to
        exercise the queue synchronously via :meth:`close`).
    max_segment_bytes:
        ``None`` (default) appends to ``path`` forever.  A positive value
        enables size-based rotation for long soaks: records go to the
        newest ``<path-root>.<n><ext>`` segment instead, and once a
        segment crosses the cap (checked after each drained burst, so a
        segment may finish slightly over it) the writer rolls to the next
        index.  Concurrent processes converge on the newest segment by
        directory scan; :func:`repro.telemetry.read_events` reads all
        segments in order.
    """

    def __init__(
        self,
        path: str,
        *,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        autostart: bool = True,
        max_segment_bytes: Optional[int] = None,
    ) -> None:
        if queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive, got {queue_capacity}"
            )
        if max_segment_bytes is not None and max_segment_bytes <= 0:
            raise ValueError(
                f"max_segment_bytes must be positive, got {max_segment_bytes}"
            )
        self.path = str(path)
        self.max_segment_bytes = max_segment_bytes
        self.pid = os.getpid()
        #: Log instance id: distinguishes producers sharing one pid (a
        #: reconfigured log restarts ``seq``; the validator keys on it).
        self.lid = uuid.uuid4().hex[:8]
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_capacity)
        self._seq = itertools.count()
        self._emitted = 0
        self._dropped = 0
        self._count_lock = threading.Lock()
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if autostart:
            self._thread = threading.Thread(
                target=self._writer_loop, name="h3dfact-telemetry", daemon=True
            )
            self._thread.start()

    @property
    def enabled(self) -> bool:
        """True: this sink records events (cf. :class:`NullEventLog`)."""
        return True

    @property
    def emitted(self) -> int:
        """Events accepted into the queue so far."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events dropped on a full queue so far (logging never blocks)."""
        return self._dropped

    def emit(self, event: str, **attrs: Any) -> None:
        """Record one event; non-blocking, drops (and counts) on overflow."""
        if self._closed:
            return
        record = {
            "v": SCHEMA_VERSION,
            "event": event,
            "ts": time.time(),
            "mono": time.monotonic(),
            "pid": self.pid,
            "lid": self.lid,
            "seq": next(self._seq),
        }
        record.update(attrs)
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            with self._count_lock:
                self._dropped += 1
            return
        with self._count_lock:
            self._emitted += 1

    # -- writer --------------------------------------------------------------

    def _serialize(self, record: Any) -> bytes:
        return (json.dumps(record, default=_coerce) + "\n").encode("utf-8")

    def _close_record(self) -> dict:
        """The final ``telemetry.close`` record carrying the counters."""
        return {
            "v": SCHEMA_VERSION,
            "event": "telemetry.close",
            "ts": time.time(),
            "mono": time.monotonic(),
            "pid": self.pid,
            "lid": self.lid,
            "seq": next(self._seq),
            "emitted": self._emitted,
            "dropped": self._dropped,
        }

    def _drain(self, fd: int, *, block: bool) -> bool:
        """Write one burst of queued records; returns False after close."""
        try:
            item = self._queue.get(block=block)
        except queue.Empty:
            return True
        chunks = []
        open_ = True
        while True:
            if item is _CLOSE:
                open_ = False
                chunks.append(self._serialize(self._close_record()))
            else:
                chunks.append(self._serialize(item))
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
        # One write per burst: O_APPEND makes each call atomic w.r.t. the
        # file offset, so concurrent processes interleave whole lines.
        os.write(fd, b"".join(chunks))
        return open_

    def _open_fd(self) -> int:
        """Open the current write target: ``path``, or the newest segment.

        With rotation on, the target is the highest-index existing
        segment - unless that one is already at the cap, in which case
        the next index opens (a fresh process resuming a rotated soak
        must not re-bloat a full segment).
        """
        target = self.path
        if self.max_segment_bytes is not None:
            segments = rotation_segments(self.path)
            index = segments[-1][0] if segments else 0
            target = segment_path(self.path, index)
            try:
                if os.path.getsize(target) >= self.max_segment_bytes:
                    target = segment_path(self.path, index + 1)
            except OSError:
                pass
        return os.open(target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def _maybe_rotate(self, fd: int) -> int:
        """Roll to the next segment when the current one crossed the cap."""
        if self.max_segment_bytes is None:
            return fd
        if os.fstat(fd).st_size < self.max_segment_bytes:
            return fd
        os.close(fd)
        return self._open_fd()

    def _writer_loop(self) -> None:
        fd = self._open_fd()
        try:
            while True:
                open_ = self._drain(fd, block=True)
                if not open_:
                    return
                fd = self._maybe_rotate(fd)
        finally:
            os.close(fd)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush buffered events, append ``telemetry.close``, stop writing."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None and self._thread.is_alive():
            self._queue.put(_CLOSE)
            self._thread.join(timeout=10.0)
            return
        # Never-started writer (autostart=False): drain synchronously.  The
        # queue may be full, so the close record is written directly rather
        # than routed through it (put() would block with no consumer).
        fd = self._open_fd()
        try:
            chunks = []
            while True:
                try:
                    chunks.append(self._serialize(self._queue.get_nowait()))
                except queue.Empty:
                    break
            chunks.append(self._serialize(self._close_record()))
            os.write(fd, b"".join(chunks))
        finally:
            os.close(fd)

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EventLog(path={self.path!r}, emitted={self.emitted}, "
            f"dropped={self.dropped})"
        )


class NullEventLog:
    """The disabled sink: telemetry off means one attribute check per site."""

    path = None
    pid = 0
    emitted = 0
    dropped = 0

    @property
    def enabled(self) -> bool:
        """False: events are discarded without being built."""
        return False

    def emit(self, event: str, **attrs: Any) -> None:
        """Discard the event (the caller's ``enabled`` guard avoids even
        building the attribute dict on the hot path)."""

    def close(self) -> None:
        """Nothing to flush."""

    def __repr__(self) -> str:
        return "NullEventLog()"


#: Shared disabled sink (telemetry is opt-in; this is the default).
NULL_LOG = NullEventLog()
