"""Read, validate and summarize JSONL telemetry logs.

The offline half of the telemetry subsystem, backing the ``h3dfact
telemetry`` CLI and the CI log-validation gate:

* :func:`read_events` parses a JSONL log (tolerating a torn final line -
  a SIGKILL'd worker may die mid-write);
* :func:`validate_events` checks the schema contract: known event types,
  schema version, envelope fields, no duplicate ``(pid, lid, seq)``, and
  monotonic per-trace lifecycle ordering (stage regressions are allowed
  only at an episode reset - the client-retry-after-worker-loss path);
* :func:`summarize` rolls a log up into event counts, per-trace lifecycle
  completeness, batch/queue histograms, flush-reason counts and per-stage
  latency percentiles;
* :func:`trace_waterfall` renders one trace's events as a relative-time
  waterfall.

Percentiles use the same nearest-rank definition as the HTTP server's
``/metrics`` payload, so ``h3dfact telemetry summarize`` over a server's
log reproduces the server's own p50/p95 exactly (the acceptance test
pins this).
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.events import (
    ENVELOPE_FIELDS,
    EVENT_TYPES,
    LIFECYCLE_STAGES,
    RESET_STAGE_MAX,
    SCHEMA_VERSION,
)

Event = Dict[str, Any]


def nearest_rank(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a *sorted* non-empty sample sequence.

    Identical to the HTTP server's ``/metrics`` percentile definition -
    sharing it is what makes log-derived and server-reported percentiles
    comparable as exact floats.
    """
    rank = min(len(samples) - 1, max(0, int(fraction * len(samples))))
    return samples[rank]


def _read_one_file(path: str) -> List[Event]:
    """Parse one JSONL file into event dicts, in file order.

    A torn final line (no trailing newline, truncated JSON) is skipped:
    a killed worker can die mid-write and the rest of the log is still
    valid.  A torn line anywhere else is a validation problem, surfaced
    by :func:`validate_events` via the ``_parse_error`` marker event.
    """
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index >= len(lines) - 2:  # torn tail (last content line)
                continue
            events.append({"event": "_parse_error", "line": index + 1})
            continue
        if isinstance(record, dict):
            events.append(record)
        else:
            events.append({"event": "_parse_error", "line": index + 1})
    return events


def read_events(path: str) -> List[Event]:
    """Parse a JSONL log - rotation segments included - into event dicts.

    ``path`` itself is read when it exists, then any rotation segments
    (``<root>.0<ext>``, ``<root>.1<ext>``, ... - see
    :func:`repro.telemetry.log.rotation_segments`) in index order, so a
    rotated long-soak log summarizes and validates exactly like an
    unrotated one.  Each file's torn tail is tolerated independently (any
    segment may be the one a killed process was mid-write on).
    """
    import os.path

    from repro.telemetry.log import rotation_segments

    paths = [path] if os.path.exists(path) else []
    paths.extend(segment for _, segment in rotation_segments(path))
    if not paths:
        # Preserve the plain-path error for a log that never existed.
        return _read_one_file(path)
    events: List[Event] = []
    for target in paths:
        events.extend(_read_one_file(target))
    return events


def _order_key(event: Event) -> Tuple[float, int, int]:
    """Stable cross-process ordering: wall clock, then producer sequence."""
    return (
        float(event.get("ts", 0.0)),
        int(event.get("pid", 0)),
        int(event.get("seq", 0)),
    )


def validate_events(events: Sequence[Event]) -> List[str]:
    """Schema-contract violations in ``events``, as report strings.

    Empty list = valid log.  Checked: parseability, known event types,
    schema version, envelope completeness, unique ``(pid, lid, seq)``
    per producer, and the per-trace lifecycle state machine (monotonic
    stages, with resets allowed only at the transport-seam stages).
    """
    problems: List[str] = []
    seen_seqs: Dict[Tuple[int, str], set] = {}
    traces: Dict[str, List[Event]] = {}
    for position, event in enumerate(events):
        kind = event.get("event")
        if kind == "_parse_error":
            problems.append(f"line {event.get('line')}: unparseable JSON")
            continue
        if kind not in EVENT_TYPES:
            problems.append(f"record {position}: unknown event type {kind!r}")
            continue
        missing = [name for name in ENVELOPE_FIELDS if name not in event]
        if missing:
            problems.append(
                f"record {position} ({kind}): missing envelope fields {missing}"
            )
            continue
        if event["v"] != SCHEMA_VERSION:
            problems.append(
                f"record {position} ({kind}): schema version {event['v']} "
                f"!= {SCHEMA_VERSION}"
            )
        producer = (int(event["pid"]), str(event["lid"]))
        seqs = seen_seqs.setdefault(producer, set())
        seq = int(event["seq"])
        if seq in seqs:
            problems.append(
                f"record {position} ({kind}): duplicate seq {seq} for "
                f"producer pid={producer[0]} lid={producer[1]}"
            )
        seqs.add(seq)
        if kind in LIFECYCLE_STAGES and event.get("trace_id") is not None:
            traces.setdefault(str(event["trace_id"]), []).append(event)
    for trace_id, trace_events in traces.items():
        stage = -1
        for event in sorted(trace_events, key=_order_key):
            this = LIFECYCLE_STAGES[event["event"]]
            # Seam stages (accepted/dispatched) may open a fresh episode
            # (client retry after a worker loss); any other regression is
            # a broken lifecycle.
            if this > RESET_STAGE_MAX and this < stage:
                problems.append(
                    f"trace {trace_id}: stage regression "
                    f"{event['event']} after stage {stage}"
                )
            stage = this
    return problems


@dataclass
class StageLatency:
    """Latency rollup for one named stage (seconds in, ms out)."""

    stage: str
    samples: List[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self.samples)

    def percentile_ms(self, fraction: float) -> float:
        """Nearest-rank percentile in milliseconds (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return 1e3 * nearest_rank(sorted(self.samples), fraction)


@dataclass
class LogSummary:
    """Rolled-up view of one telemetry log (see :func:`summarize`)."""

    #: Events per type, in the log.
    event_counts: Dict[str, int]
    #: Distinct lifecycle trace ids seen.
    traces: int
    #: Traces whose final episode reached ``request.completed``.
    completed_traces: int
    #: Batch sizes observed at ``batch.flush``.
    batch_sizes: List[int]
    #: Intake queue depths observed at ``batch.flush``.
    queue_depths: List[int]
    #: Flush reasons tally.
    flush_reasons: Dict[str, int]
    #: Per-stage latency rollups (``queue_wait``, ``engine``, ``client``
    #: and one ``http:<path>`` entry per observed path).
    stages: Dict[str, StageLatency]
    #: Registry / cache hit-miss tallies keyed by counter name.
    cache_counts: Dict[str, int]
    #: Total events dropped by bounded queues (from ``telemetry.close``).
    dropped: int
    #: Worker lifecycle tallies (starts, deaths, restarts, replays).
    worker_counts: Dict[str, int]

    def http_percentiles(self, path: str) -> Dict[str, float]:
        """p50/p95/p99 (ms) for one HTTP path's server-side latency."""
        stage = self.stages.get(f"http:{path}")
        if stage is None or not stage.count:
            return {}
        return {
            "p50_ms": stage.percentile_ms(0.50),
            "p95_ms": stage.percentile_ms(0.95),
            "p99_ms": stage.percentile_ms(0.99),
            "samples": stage.count,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the CLI's ``--json`` output)."""
        return {
            "events": dict(self.event_counts),
            "traces": self.traces,
            "completed_traces": self.completed_traces,
            "batch_size": _dist(self.batch_sizes),
            "queue_depth": _dist(self.queue_depths),
            "flush_reasons": dict(self.flush_reasons),
            "stages": {
                name: {
                    "samples": stage.count,
                    "p50_ms": stage.percentile_ms(0.50),
                    "p95_ms": stage.percentile_ms(0.95),
                    "p99_ms": stage.percentile_ms(0.99),
                }
                for name, stage in sorted(self.stages.items())
            },
            "caches": dict(self.cache_counts),
            "workers": dict(self.worker_counts),
            "dropped": self.dropped,
        }

    def render(self) -> str:
        """Human-readable rollup."""
        lines = ["h3dfact telemetry - event log summary"]
        total = sum(self.event_counts.values())
        lines.append(
            f"  {total} events, {self.traces} traces "
            f"({self.completed_traces} completed), {self.dropped} dropped"
        )
        for kind in sorted(self.event_counts):
            lines.append(f"    {kind:<22s} {self.event_counts[kind]}")
        if self.batch_sizes:
            dist = _dist(self.batch_sizes)
            lines.append(
                f"  batch size: mean={dist['mean']:.2f} "
                f"p50={dist['p50']:g} max={dist['max']:g} "
                f"({dist['count']} batches)"
            )
        if self.queue_depths:
            dist = _dist(self.queue_depths)
            lines.append(
                f"  queue depth at flush: mean={dist['mean']:.2f} "
                f"p50={dist['p50']:g} max={dist['max']:g}"
            )
        if self.flush_reasons:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.flush_reasons.items())
            )
            lines.append(f"  flush reasons: {reasons}")
        for name, stage in sorted(self.stages.items()):
            if not stage.count:
                continue
            lines.append(
                f"  {name:<18s} p50={stage.percentile_ms(0.50):8.3f}ms "
                f"p95={stage.percentile_ms(0.95):8.3f}ms "
                f"p99={stage.percentile_ms(0.99):8.3f}ms "
                f"({stage.count} samples)"
            )
        if self.cache_counts:
            caches = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.cache_counts.items())
            )
            lines.append(f"  caches: {caches}")
        if self.worker_counts:
            workers = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.worker_counts.items())
            )
            lines.append(f"  workers: {workers}")
        return "\n".join(lines)


def _dist(values: Sequence[float]) -> Dict[str, float]:
    """min/mean/p50/p95/max/count of a value list (JSON-safe)."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "min": float(ordered[0]),
        "mean": float(sum(ordered) / len(ordered)),
        "p50": float(nearest_rank(ordered, 0.50)),
        "p95": float(nearest_rank(ordered, 0.95)),
        "max": float(ordered[-1]),
    }


def summarize(events: Sequence[Event]) -> LogSummary:
    """Roll a parsed event list up into a :class:`LogSummary`."""
    counts: TallyCounter = TallyCounter()
    batch_sizes: List[int] = []
    queue_depths: List[int] = []
    flush_reasons: TallyCounter = TallyCounter()
    stages: Dict[str, StageLatency] = {}
    cache_counts: TallyCounter = TallyCounter()
    worker_counts: TallyCounter = TallyCounter()
    traces: Dict[str, bool] = {}
    dropped = 0

    def stage_for(name: str) -> StageLatency:
        """The named stage's rollup, created on first use."""
        if name not in stages:
            stages[name] = StageLatency(stage=name)
        return stages[name]

    for event in events:
        kind = event.get("event", "_parse_error")
        counts[kind] += 1
        trace_id = event.get("trace_id")
        if trace_id is not None and kind in LIFECYCLE_STAGES:
            done = traces.get(str(trace_id), False)
            if kind == "request.completed":
                done = True
            elif kind == "request.failed":
                done = False
            traces[str(trace_id)] = done
        if kind == "batch.flush":
            if event.get("size") is not None:
                batch_sizes.append(int(event["size"]))
            if event.get("queue_depth") is not None:
                queue_depths.append(int(event["queue_depth"]))
            flush_reasons[str(event.get("reason", "unknown"))] += 1
        elif kind == "request.completed":
            if event.get("queue_wait_s") is not None:
                stage_for("queue_wait").samples.append(
                    float(event["queue_wait_s"])
                )
            if event.get("engine_s") is not None:
                stage_for("engine").samples.append(float(event["engine_s"]))
        elif kind == "http.request":
            if event.get("seconds") is not None:
                stage_for(f"http:{event.get('path')}").samples.append(
                    float(event["seconds"])
                )
        elif kind == "client.request":
            if event.get("seconds") is not None:
                stage_for("client").samples.append(float(event["seconds"]))
        elif kind in ("registry.hit", "registry.miss", "registry.eviction"):
            cache_counts[kind] += 1
        elif kind in ("cache.hit", "cache.miss", "cache.eviction"):
            cache_counts[f"{kind}:{event.get('cache', 'unknown')}"] += 1
        elif kind.startswith("worker."):
            worker_counts[kind] += 1
        elif kind == "telemetry.close":
            dropped += int(event.get("dropped", 0))
    return LogSummary(
        event_counts=dict(counts),
        traces=len(traces),
        completed_traces=sum(1 for done in traces.values() if done),
        batch_sizes=batch_sizes,
        queue_depths=queue_depths,
        flush_reasons=dict(flush_reasons),
        stages=stages,
        cache_counts=dict(cache_counts),
        dropped=dropped,
        worker_counts=dict(worker_counts),
    )


def trace_waterfall(
    events: Sequence[Event], trace_id: str
) -> List[str]:
    """One trace's events as relative-time waterfall lines.

    Events are ordered by wall clock (all processes share the machine
    clock), offsets are milliseconds since the trace's first event, and
    each line names the emitting pid plus the event's most informative
    attributes.
    """
    mine = sorted(
        (
            event
            for event in events
            if str(event.get("trace_id")) == str(trace_id)
        ),
        key=_order_key,
    )
    if not mine:
        return [f"trace {trace_id}: no events"]
    origin = float(mine[0].get("ts", 0.0))
    lines = [f"trace {trace_id} ({len(mine)} events)"]
    detail_keys = (
        "request_id",
        "endpoint",
        "shard",
        "batch_id",
        "batch_size",
        "queue_depth",
        "outcome",
        "iterations",
        "queue_wait_s",
        "engine_s",
        "seconds",
        "error",
    )
    for event in mine:
        offset_ms = 1e3 * (float(event.get("ts", origin)) - origin)
        details = " ".join(
            f"{key}={event[key]}" for key in detail_keys if key in event
        )
        lines.append(
            f"  +{offset_ms:9.3f}ms pid={event.get('pid', '?'):<7} "
            f"{event.get('event', '?'):<20s} {details}".rstrip()
        )
    return lines


__all__ = [
    "Event",
    "LogSummary",
    "StageLatency",
    "nearest_rank",
    "read_events",
    "summarize",
    "trace_waterfall",
    "validate_events",
]
