"""Event schema for the runtime telemetry subsystem.

One JSONL record per event.  Every record carries the envelope fields
(``v`` schema version, ``event`` type, ``ts`` wall-clock seconds,
``mono`` monotonic seconds, ``pid``, ``lid`` log instance id, ``seq``
per-log sequence number) plus event-specific attributes.  The known
event types and their emitting layers:

======================  =====================  ===========================
event                   emitted by             key attributes
======================  =====================  ===========================
``request.accepted``    transport seam (HTTP   ``trace_id``, ``request_id``,
                        server / in-process)   ``endpoint``
``request.dispatched``  sharded pool frontend  ``trace_id``, ``shard``,
                                               ``generation``
``request.enqueued``    scheduler intake       ``trace_id``, ``queue_depth``
``request.batched``     scheduler execution    ``trace_id``, ``batch_id``,
                                               ``batch_size``, ``queue_wait_s``
``request.completed``   scheduler execution    ``trace_id``, ``outcome``,
                                               ``iterations``,
                                               ``queue_wait_s``, ``engine_s``
``request.failed``      scheduler execution    ``trace_id``, ``error``
``batch.flush``         scheduler dispatcher   ``batch_id``, ``reason``,
                                               ``size``, ``queue_depth``,
                                               ``dim``, ``algebra``,
                                               ``fidelity``
``batch.executed``      scheduler execution    ``batch_id``, ``size``,
                                               ``engine_s``,
                                               ``iterations_max``
``registry.hit``        codebook registry      ``key``
``registry.miss``       codebook registry      ``key``
``registry.eviction``   codebook registry      ``key``
``cache.hit``           conductance / packed   ``cache``, ``key``
``cache.miss``          codebook caches        ``cache``, ``key``
``cache.eviction``      conductance cache      ``cache``
``worker.start``        worker process         ``shard``, ``generation``
``worker.stop``         worker process         ``shard``, ``generation``
``worker.death``        pool monitor           ``shard``, ``generation``,
                                               ``exitcode``, ``in_flight``
``worker.restarted``    pool monitor           ``shard``, ``generation``
``worker.replay``       pool monitor           ``shard``, ``count``
``http.request``        HTTP server            ``path``, ``seconds``,
                                               ``node``
``client.request``      HTTP client            ``trace_id``, ``request_id``,
                                               ``seconds``
``client.batch``        HTTP client            ``size``, ``seconds``
``cluster.join``        cluster coordinator    ``node``, ``url``, ``epoch``
``cluster.leave``       cluster coordinator    ``node``, ``epoch``,
                                               ``reason`` (leave/expired)
``cluster.epoch``       cluster coordinator    ``epoch``, ``nodes``
``cluster.stale``       cluster node (HTTP)    ``node``, ``epoch``,
                                               ``request_epoch``
``cluster.refresh``     cluster client         ``epoch``, ``reason``
``cluster.replicate``   cluster client         ``key``, ``nodes``, ``epoch``
``cluster.route``       cluster client         ``trace_id``, ``node``,
                                               ``epoch``, ``attempt``
``telemetry.close``     event log shutdown     ``emitted``, ``dropped``
======================  =====================  ===========================

The request lifecycle forms a state machine per trace: ``accepted`` ->
``dispatched`` -> ``enqueued`` -> ``batched`` -> ``completed`` (or
``failed``).  A retried request (worker loss) starts a fresh episode at
``accepted``/``dispatched``, which is why
:func:`repro.telemetry.summarize.validate_events` allows the stage index
to reset to the seam stages but flags any other regression.
"""

from __future__ import annotations

import uuid

#: Version stamped into every record's ``v`` field; bump on any change to
#: the envelope fields or to an existing event's attribute meanings.
SCHEMA_VERSION = 1

#: Every event type a valid log may contain (the validator rejects others).
EVENT_TYPES = frozenset(
    {
        "request.accepted",
        "request.dispatched",
        "request.enqueued",
        "request.batched",
        "request.completed",
        "request.failed",
        "batch.flush",
        "batch.executed",
        "registry.hit",
        "registry.miss",
        "registry.eviction",
        "cache.hit",
        "cache.miss",
        "cache.eviction",
        "worker.start",
        "worker.stop",
        "worker.death",
        "worker.restarted",
        "worker.replay",
        "http.request",
        "client.request",
        "client.batch",
        "cluster.join",
        "cluster.leave",
        "cluster.epoch",
        "cluster.stale",
        "cluster.refresh",
        "cluster.replicate",
        "cluster.route",
        "telemetry.close",
    }
)

#: Request lifecycle stage index per event type: within one episode of a
#: trace, the stage must never decrease.  Stages <= RESET_STAGE_MAX open a
#: new episode (client retry after a worker loss).
LIFECYCLE_STAGES = {
    "request.accepted": 0,
    "request.dispatched": 1,
    "request.enqueued": 2,
    "request.batched": 3,
    "request.completed": 4,
    "request.failed": 4,
}

#: Highest stage index allowed to open a new per-trace episode.
RESET_STAGE_MAX = 1

#: Envelope fields every record must carry (see the module docstring).
ENVELOPE_FIELDS = ("v", "event", "ts", "mono", "pid", "lid", "seq")


def mint_trace_id() -> str:
    """Mint a fresh 16-hex-digit trace id (uuid4-derived, no coordination).

    Trace ids correlate telemetry events only; they never feed seeds or
    batch keys, so minting cannot perturb results.
    """
    return uuid.uuid4().hex[:16]
