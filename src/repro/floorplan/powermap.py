"""Rasterizing floorplans into power-density grids for the thermal solver."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.floorplan.plan import Floorplan


def power_density_map(
    plan: Floorplan, nx: int, ny: int
) -> np.ndarray:
    """Rasterize block powers onto an ``(ny, nx)`` grid of W/m^2.

    Each block's power spreads uniformly over its own footprint; partial
    cell coverage is handled by area-weighted accumulation, so total power
    is conserved exactly (asserted in tests).
    """
    if nx <= 0 or ny <= 0:
        raise ConfigurationError(f"grid must be positive, got {nx}x{ny}")
    grid = np.zeros((ny, nx), dtype=np.float64)
    dx = plan.width_mm / nx
    dy = plan.height_mm / ny
    cell_area_m2 = (dx * 1e-3) * (dy * 1e-3)
    for block in plan.blocks:
        if block.power_w == 0:
            continue
        density_w_mm2 = block.power_density_w_mm2
        x0 = block.x_mm / dx
        x1 = block.x2_mm / dx
        y0 = block.y_mm / dy
        y1 = block.y2_mm / dy
        for j in range(int(np.floor(y0)), min(int(np.ceil(y1)), ny)):
            for i in range(int(np.floor(x0)), min(int(np.ceil(x1)), nx)):
                overlap_x = min(x1, i + 1) - max(x0, i)
                overlap_y = min(y1, j + 1) - max(y0, j)
                if overlap_x <= 0 or overlap_y <= 0:
                    continue
                overlap_mm2 = (overlap_x * dx) * (overlap_y * dy)
                grid[j, i] += density_w_mm2 * overlap_mm2
    # grid currently holds watts per cell; convert to W/m^2.
    return grid / cell_area_m2


def total_power(grid: np.ndarray, width_mm: float, height_mm: float) -> float:
    """Integrate a density map back to watts (for conservation checks)."""
    ny, nx = grid.shape
    cell_area_m2 = (width_mm * 1e-3 / nx) * (height_mm * 1e-3 / ny)
    return float(grid.sum() * cell_area_m2)
