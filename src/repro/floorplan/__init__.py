"""Floorplans (Fig. 4) and power-density maps for thermal analysis."""

from repro.floorplan.block import Block
from repro.floorplan.plan import Floorplan, h3d_floorplans
from repro.floorplan.powermap import power_density_map

__all__ = ["Block", "Floorplan", "h3d_floorplans", "power_density_map"]
