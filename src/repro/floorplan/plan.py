"""Per-tier floorplans reproducing the Fig. 4 layouts.

Each tier is a square die of equal outline (stacked dies must match); the
block arrangement follows Fig. 4:

* **RRAM tiers** (Fig. 4a): four subarrays in quadrants of the core, TSV
  strips along the east/west edges, programming blocks along the north,
  and the isolation/level-shifter + bias/DCAP + activation row along the
  *south* - the high-power-density stripe that produces the southern
  hotspot of Fig. 5.
* **Digital tier-1** (Fig. 4b): calibrated ADC banks in the four corners,
  the control/XNOR/adder spine through the middle, SRAM buffers on the
  east/west flanks, TSV strips on the edges, IO along the south.

Powers are assigned from an :class:`~repro.hwmodel.energy.EnergyBreakdown`
so the thermal maps and the Table III power roll-up stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.floorplan.block import Block
from repro.hwmodel.energy import EnergyBreakdown


@dataclass
class Floorplan:
    """All blocks of one die."""

    name: str
    width_mm: float
    height_mm: float
    blocks: List[Block] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise ConfigurationError(
                f"floorplan {self.name!r} must have positive size"
            )
        for block in self.blocks:
            self._check_block(block)
        self._check_overlaps()

    def _check_block(self, block: Block) -> None:
        if block.x2_mm > self.width_mm + 1e-9 or block.y2_mm > self.height_mm + 1e-9:
            raise ConfigurationError(
                f"block {block.name!r} exceeds die outline "
                f"({self.width_mm} x {self.height_mm} mm)"
            )

    def _check_overlaps(self) -> None:
        for i, a in enumerate(self.blocks):
            for b in self.blocks[i + 1 :]:
                if a.overlaps(b):
                    raise ConfigurationError(
                        f"blocks {a.name!r} and {b.name!r} overlap"
                    )

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def utilization(self) -> float:
        return sum(b.area_mm2 for b in self.blocks) / self.area_mm2

    @property
    def total_power_w(self) -> float:
        return sum(b.power_w for b in self.blocks)

    def block(self, name: str) -> Block:
        for candidate in self.blocks:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(
            f"no block named {name!r} in floorplan {self.name!r}"
        )

    def south_power_fraction(self) -> float:
        """Share of die power in the southern half (the Fig. 5 gradient)."""
        total = self.total_power_w
        if total == 0:
            return 0.0
        south = sum(
            b.power_w
            for b in self.blocks
            if (b.y_mm + b.y2_mm) / 2 < self.height_mm / 2
        )
        return south / total


def _grid(die: float, frac: float) -> float:
    return die * frac


def rram_tier_floorplan(
    name: str,
    die_mm: float,
    *,
    array_power_w: float,
    support_power_w: float,
) -> Floorplan:
    """Fig. 4a layout: arrays in quadrants, support row at the south."""
    tsv_w = _grid(die_mm, 0.10)
    south_h = _grid(die_mm, 0.18)
    north_h = _grid(die_mm, 0.12)
    core_w = die_mm - 2 * tsv_w
    core_h = die_mm - south_h - north_h
    array_w = core_w / 2
    array_h = core_h / 2
    per_array = array_power_w / 4
    blocks = [
        Block("tsv_west", 0.0, 0.0, tsv_w, die_mm, 0.0),
        Block("tsv_east", die_mm - tsv_w, 0.0, tsv_w, die_mm, 0.0),
        # Southern support stripe: level shifters + isolation + bias.
        # Support power splits in proportion to block area (the stripe is
        # one thermal entity; regulation losses spread along it).
        Block(
            "isolation_level_shifters",
            tsv_w,
            0.0,
            core_w * 0.5,
            south_h,
            support_power_w * 0.50,
        ),
        Block(
            "bias_dcap",
            tsv_w + core_w * 0.5,
            0.0,
            core_w * 0.3,
            south_h,
            support_power_w * 0.30,
        ),
        Block(
            "activation_unit",
            tsv_w + core_w * 0.8,
            0.0,
            core_w * 0.2,
            south_h,
            support_power_w * 0.20,
        ),
        # Northern programming blocks (idle during factorization).
        Block("rram_prog_west", tsv_w, die_mm - north_h, core_w / 2, north_h, 0.0),
        Block(
            "rram_prog_east",
            tsv_w + core_w / 2,
            die_mm - north_h,
            core_w / 2,
            north_h,
            0.0,
        ),
    ]
    for qy in range(2):
        for qx in range(2):
            blocks.append(
                Block(
                    f"rram_array_{qy}{qx}",
                    tsv_w + qx * array_w,
                    south_h + qy * array_h,
                    array_w,
                    array_h,
                    per_array,
                )
            )
    return Floorplan(name=name, width_mm=die_mm, height_mm=die_mm, blocks=blocks)


def digital_tier_floorplan(
    name: str,
    die_mm: float,
    *,
    adc_power_w: float,
    digital_power_w: float,
    sram_power_w: float,
    io_power_w: float,
) -> Floorplan:
    """Fig. 4b layout: ADC corners, control spine, SRAM flanks, IO south."""
    tsv_w = _grid(die_mm, 0.08)
    io_h = _grid(die_mm, 0.15)
    core_w = die_mm - 2 * tsv_w
    core_h = die_mm - io_h
    adc_w = core_w * 0.38
    adc_h = core_h * 0.30
    spine_w = core_w - 2 * adc_w
    per_adc = adc_power_w / 4
    blocks = [
        Block("tsv_west", 0.0, 0.0, tsv_w, die_mm, 0.0),
        Block("tsv_east", die_mm - tsv_w, 0.0, tsv_w, die_mm, 0.0),
        Block("io_c4", tsv_w, 0.0, core_w, io_h, io_power_w),
        # Four calibrated-ADC banks (corners of the core).
        Block("adc_sw", tsv_w, io_h, adc_w, adc_h, per_adc),
        Block("adc_se", tsv_w + core_w - adc_w, io_h, adc_w, adc_h, per_adc),
        Block(
            "adc_nw", tsv_w, io_h + core_h - adc_h, adc_w, adc_h, per_adc
        ),
        Block(
            "adc_ne",
            tsv_w + core_w - adc_w,
            io_h + core_h - adc_h,
            adc_w,
            adc_h,
            per_adc,
        ),
        # Control / XNOR / adder spine between the ADC banks.
        Block(
            "ctrl_xnor_add",
            tsv_w + adc_w,
            io_h,
            spine_w,
            core_h,
            digital_power_w,
        ),
        # SRAM buffers between the ADC banks on each flank.
        Block(
            "sram_buffer_west",
            tsv_w,
            io_h + adc_h,
            adc_w,
            core_h - 2 * adc_h,
            sram_power_w / 2,
        ),
        Block(
            "sram_buffer_east",
            tsv_w + core_w - adc_w,
            io_h + adc_h,
            adc_w,
            core_h - 2 * adc_h,
            sram_power_w / 2,
        ),
    ]
    return Floorplan(name=name, width_mm=die_mm, height_mm=die_mm, blocks=blocks)


def h3d_floorplans(
    energy: EnergyBreakdown,
    *,
    die_mm: Optional[float] = None,
    footprint_mm2: float = 0.091,
) -> Dict[str, Floorplan]:
    """Floorplans for the three H3D tiers with consistent powers.

    Power attribution: the array read power splits evenly between the two
    RRAM tiers (each is active for one of the two MVMs per factor); the
    static bias power of both tiers is always on; ADC/digital/SRAM/TSV
    power lands on tier-1.
    """
    if die_mm is None:
        die_mm = float(np.sqrt(footprint_mm2))
    dynamic = energy.dynamic_fj_per_op
    throughput = energy.throughput_ops

    def watts(fj_per_op: float) -> float:
        return fj_per_op * 1e-15 * throughput

    rram_power = watts(dynamic.get("rram_read", 0.0))
    adc_power = watts(dynamic.get("adc", 0.0))
    digital_power = watts(dynamic.get("digital", 0.0))
    tsv_power = watts(dynamic.get("tsv", 0.0))
    static = energy.static_power_w
    # Static split: tier-1 leakage ~30%, RRAM bias networks ~35% each.
    tier1_static = 0.30 * static
    rram_static = 0.35 * static

    plans = {
        "tier1": digital_tier_floorplan(
            "tier1",
            die_mm,
            adc_power_w=adc_power + 0.3 * tier1_static,
            digital_power_w=digital_power + tsv_power + 0.5 * tier1_static,
            sram_power_w=0.15 * tier1_static + 0.0,
            io_power_w=0.05 * tier1_static,
        ),
        "tier2": rram_tier_floorplan(
            "tier2",
            die_mm,
            array_power_w=rram_power / 2,
            support_power_w=rram_static,
        ),
        "tier3": rram_tier_floorplan(
            "tier3",
            die_mm,
            array_power_w=rram_power / 2,
            support_power_w=rram_static,
        ),
    }
    return plans
