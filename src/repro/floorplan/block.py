"""Rectangular floorplan blocks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Block:
    """An axis-aligned block: position + size in millimeters, power in watts.

    The origin is the die's south-west corner; ``y`` grows northward, so a
    block with small ``y`` sits at the southern edge (where Fig. 5 finds
    the hotspot).
    """

    name: str
    x_mm: float
    y_mm: float
    width_mm: float
    height_mm: float
    power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise ConfigurationError(
                f"block {self.name!r} must have positive size, got "
                f"{self.width_mm} x {self.height_mm}"
            )
        if self.x_mm < 0 or self.y_mm < 0:
            raise ConfigurationError(
                f"block {self.name!r} must have non-negative origin"
            )
        if self.power_w < 0:
            raise ConfigurationError(
                f"block {self.name!r} has negative power {self.power_w}"
            )

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def x2_mm(self) -> float:
        return self.x_mm + self.width_mm

    @property
    def y2_mm(self) -> float:
        return self.y_mm + self.height_mm

    @property
    def power_density_w_mm2(self) -> float:
        return self.power_w / self.area_mm2

    def overlaps(self, other: "Block", tolerance_mm: float = 1e-9) -> bool:
        """True when the interiors intersect (shared edges are fine)."""
        return not (
            self.x2_mm <= other.x_mm + tolerance_mm
            or other.x2_mm <= self.x_mm + tolerance_mm
            or self.y2_mm <= other.y_mm + tolerance_mm
            or other.y2_mm <= self.y_mm + tolerance_mm
        )

    def with_power(self, power_w: float) -> "Block":
        return Block(
            name=self.name,
            x_mm=self.x_mm,
            y_mm=self.y_mm,
            width_mm=self.width_mm,
            height_mm=self.height_mm,
            power_w=power_w,
        )
