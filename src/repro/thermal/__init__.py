"""Steady-state thermal modeling of the 3D stack (HotSpot-style, Fig. 5)."""

from repro.thermal.materials import MATERIALS, Material
from repro.thermal.stack import ThermalLayer, ThermalStack, h3d_thermal_stack
from repro.thermal.solver import SteadyStateSolver, ThermalSolution
from repro.thermal.analysis import ThermalReport, analyze_h3d

__all__ = [
    "MATERIALS",
    "Material",
    "ThermalLayer",
    "ThermalStack",
    "h3d_thermal_stack",
    "SteadyStateSolver",
    "ThermalSolution",
    "ThermalReport",
    "analyze_h3d",
]
