"""Thermal material library.

Effective isotropic conductivities for the compact layer stack; values are
the standard HotSpot-class numbers for each material system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ThermalModelError


@dataclass(frozen=True)
class Material:
    """A material with an effective thermal conductivity."""

    name: str
    conductivity_w_mk: float

    def __post_init__(self) -> None:
        if self.conductivity_w_mk <= 0:
            raise ThermalModelError(
                f"material {self.name!r} needs positive conductivity"
            )


MATERIALS = {
    # Thinned die silicon (phonon-boundary limited below bulk's 150).
    "silicon": Material("silicon", 120.0),
    # BEOL + hybrid-bond dielectric stack.
    "beol": Material("beol", 2.0),
    # Thermal interface material (particle-filled polymer).
    "tim": Material("tim", 4.0),
    # C4 bump layer: solder + underfill effective.
    "bumps": Material("bumps", 2.0),
    # Organic package substrate with via field.
    "package": Material("package", 10.0),
    # FR4 PCB effective through-plane.
    "pcb": Material("pcb", 0.8),
    # Copper package lid between the two TIM layers.
    "copper": Material("copper", 400.0),
    # Mold/underfill surrounding the die inside the package cavity.
    "mold": Material("mold", 0.7),
}


def material(name: str) -> Material:
    if name not in MATERIALS:
        raise ThermalModelError(
            f"unknown material {name!r}; available: {sorted(MATERIALS)}"
        )
    return MATERIALS[name]
