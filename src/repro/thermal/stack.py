"""Thermal layer stack construction (the Fig. 5 setup table).

The chip-scale stack, bottom to top:

====================  =========  =====================================
layer                 thickness  notes
====================  =========  =====================================
PCB                   2 mm       board under the package
package substrate     1 mm       organic laminate, C4 side
bump layer            100 um     C4 bumps + underfill
tier-1 silicon        ~50 um     16 nm digital die (die-sized inset)
bond 1                3 um       hybrid bond/BEOL between tier-1/2
tier-2 silicon        ~50 um     40 nm RRAM die
bond 2                3 um       F2B TSV interface
tier-3 silicon        ~50 um     40 nm RRAM die
TIM1                  20 um      die-to-lid interface
copper lid            200 um     lateral heat spreader
TIM2                  20 um      lid-to-sink interface
====================  =========  =====================================

Top surface: convective boundary, h = 1000 W/(m^2 K) into 25 C ambient.
The dies occupy a centered inset of the (larger) package footprint; the
cavity around them is mold compound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ThermalModelError
from repro.floorplan.plan import Floorplan
from repro.floorplan.powermap import power_density_map
from repro.thermal.materials import material


@dataclass
class ThermalLayer:
    """One z-layer of the finite-volume domain.

    ``die_inset_mm`` restricts ``conductivity`` to the centered die region
    (the remainder uses ``outside_material``); ``power_map`` (W/m^2) is
    injected uniformly through the layer's thickness.
    """

    name: str
    thickness_m: float
    material_name: str
    die_inset_mm: Optional[float] = None
    outside_material: str = "mold"
    power_map: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.thickness_m <= 0:
            raise ThermalModelError(
                f"layer {self.name!r} needs positive thickness"
            )

    def conductivity_grid(
        self, nx: int, ny: int, domain_mm: float
    ) -> np.ndarray:
        """Per-cell conductivity for this layer."""
        k_inside = material(self.material_name).conductivity_w_mk
        grid = np.full((ny, nx), k_inside)
        if self.die_inset_mm is not None:
            k_outside = material(self.outside_material).conductivity_w_mk
            grid[:] = k_outside
            dx = domain_mm / nx
            margin = (domain_mm - self.die_inset_mm) / 2
            i0 = int(round(margin / dx))
            i1 = nx - i0
            grid[i0:i1, i0:i1] = k_inside
        return grid


@dataclass
class ThermalStack:
    """The full domain: lateral extent plus ordered layers (bottom-up)."""

    domain_mm: float
    layers: List[ThermalLayer]
    ambient_c: float = 25.0
    #: Convective coefficient on the top surface (W/m^2 K), Fig. 5 table.
    h_top_w_m2k: float = 1000.0
    #: Weak convection from the PCB bottom.
    h_bottom_w_m2k: float = 20.0

    def __post_init__(self) -> None:
        if self.domain_mm <= 0:
            raise ThermalModelError("domain must have positive extent")
        if not self.layers:
            raise ThermalModelError("stack needs at least one layer")

    @property
    def total_power_w(self) -> float:
        total = 0.0
        cell_area_factor = (self.domain_mm * 1e-3) ** 2
        for layer in self.layers:
            if layer.power_map is not None:
                ny, nx = layer.power_map.shape
                total += layer.power_map.sum() * cell_area_factor / (nx * ny)
        return float(total)

    def layer_index(self, name: str) -> int:
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        raise ThermalModelError(
            f"no layer named {name!r}; have {[l.name for l in self.layers]}"
        )


def h3d_thermal_stack(
    floorplans: Dict[str, Floorplan],
    *,
    domain_mm: float = 1.03,
    nx: int = 30,
    ny: int = 30,
    die_thickness_um: float = 50.0,
    ambient_c: float = 25.0,
    h_top: float = 1000.0,
) -> ThermalStack:
    """Build the Fig. 5 stack from the three tier floorplans.

    The tier power maps are rasterized onto the domain grid: the die
    occupies a centered inset, so the maps are zero-padded to the package
    footprint.
    """
    required = ("tier1", "tier2", "tier3")
    for name in required:
        if name not in floorplans:
            raise ThermalModelError(f"missing floorplan for {name!r}")
    die_mm = floorplans["tier1"].width_mm
    if die_mm > domain_mm:
        raise ThermalModelError(
            f"die ({die_mm} mm) larger than package domain ({domain_mm} mm)"
        )

    def padded_power(plan: Floorplan) -> np.ndarray:
        # Translate the die to the domain center and rasterize directly on
        # the domain grid - exact power conservation regardless of how die
        # and domain cells align.
        margin = (domain_mm - die_mm) / 2
        from repro.floorplan.block import Block

        shifted = Floorplan(
            name=f"{plan.name}@domain",
            width_mm=domain_mm,
            height_mm=domain_mm,
            blocks=[
                Block(
                    name=b.name,
                    x_mm=b.x_mm + margin,
                    y_mm=b.y_mm + margin,
                    width_mm=b.width_mm,
                    height_mm=b.height_mm,
                    power_w=b.power_w,
                )
                for b in plan.blocks
            ],
        )
        return power_density_map(shifted, nx, ny)

    um = 1e-6
    layers = [
        ThermalLayer("pcb", 2000 * um, "pcb"),
        ThermalLayer("package", 1000 * um, "package"),
        ThermalLayer("bumps", 100 * um, "bumps", die_inset_mm=die_mm),
        ThermalLayer(
            "tier1",
            die_thickness_um * um,
            "silicon",
            die_inset_mm=die_mm,
            power_map=padded_power(floorplans["tier1"]),
        ),
        ThermalLayer("bond1", 3 * um, "beol", die_inset_mm=die_mm),
        ThermalLayer(
            "tier2",
            die_thickness_um * um,
            "silicon",
            die_inset_mm=die_mm,
            power_map=padded_power(floorplans["tier2"]),
        ),
        ThermalLayer("bond2", 3 * um, "beol", die_inset_mm=die_mm),
        ThermalLayer(
            "tier3",
            die_thickness_um * um,
            "silicon",
            die_inset_mm=die_mm,
            power_map=padded_power(floorplans["tier3"]),
        ),
        ThermalLayer("tim1", 20 * um, "tim"),
        ThermalLayer("lid", 200 * um, "copper"),
        ThermalLayer("tim2", 20 * um, "tim"),
    ]
    return ThermalStack(
        domain_mm=domain_mm,
        layers=layers,
        ambient_c=ambient_c,
        h_top_w_m2k=h_top,
    )
