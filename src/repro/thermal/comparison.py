"""Thermal comparison: the 3-tier stack vs the monolithic 2D design.

Fig. 5's discussion quotes the 2D design at 44 C against the stack's
46.8-47.8 C: stacking concentrates the same power into a smaller footprint,
raising temperature slightly - but leaving an enormous margin to the
~100 C RRAM retention limit.  This module builds the 2D counterpart stack
(a single hybrid die on the same package) for that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.designs import hybrid_2d_design
from repro.errors import ThermalModelError
from repro.floorplan.block import Block
from repro.floorplan.plan import Floorplan
from repro.hwmodel.metrics import DesignMetrics, evaluate_design
from repro.thermal.analysis import ThermalReport
from repro.thermal.solver import SteadyStateSolver, ThermalSolution
from repro.thermal.stack import ThermalLayer, ThermalStack
from repro.floorplan.powermap import power_density_map


def hybrid_2d_floorplan(metrics: DesignMetrics) -> Floorplan:
    """Single-die floorplan of the hybrid 2D design with uniform regions."""
    die_mm = float(np.sqrt(metrics.footprint_mm2))
    energy = metrics.energy
    throughput = energy.throughput_ops

    def watts(component: str) -> float:
        return energy.dynamic_fj_per_op.get(component, 0.0) * 1e-15 * throughput

    total_static = energy.static_power_w
    core_h = die_mm * 0.7
    south_h = die_mm - core_h
    blocks = [
        Block(
            "rram_region",
            0.0,
            south_h,
            die_mm,
            core_h,
            watts("rram_read") + 0.4 * total_static,
        ),
        Block(
            "periphery_south",
            0.0,
            0.0,
            die_mm,
            south_h,
            watts("adc") + watts("digital") + 0.6 * total_static,
        ),
    ]
    return Floorplan("hybrid2d", die_mm, die_mm, blocks)


@dataclass
class ThermalComparison:
    """Peak/mean temperatures of the stack vs the 2D die."""

    h3d_report: ThermalReport
    die_2d_mean_c: float
    die_2d_max_c: float

    def render(self) -> str:
        return "\n".join(
            [
                self.h3d_report.render(),
                "",
                f"2D hybrid die: mean {self.die_2d_mean_c:.2f} C, "
                f"max {self.die_2d_max_c:.2f} C (paper: ~44 C)",
                f"stacking penalty: "
                f"{self.h3d_report.stack_max_c - self.die_2d_max_c:+.2f} C at peak",
            ]
        )


def analyze_hybrid_2d(
    *,
    domain_mm: Optional[float] = None,
    grid: int = 30,
    ambient_c: float = 25.0,
    h_top: float = 1000.0,
) -> ThermalSolution:
    """Solve the 2D hybrid design on the equivalent package.

    The 2D die is larger (0.544 mm^2), so its package domain scales with
    the die edge plus the same margin the 3-tier analysis uses.
    """
    metrics = evaluate_design(hybrid_2d_design())
    plan = hybrid_2d_floorplan(metrics)
    if domain_mm is None:
        # Package sized like the H3D analysis (calibrated so the published
        # 2D operating point, ~44 C, is reproduced - the die is larger and
        # dissipates slightly more, but spreads over a wider cavity).
        domain_mm = 1.15
    if plan.width_mm > domain_mm:
        raise ThermalModelError("2D die larger than its package domain")

    def padded(plan: Floorplan) -> np.ndarray:
        margin = (domain_mm - plan.width_mm) / 2
        shifted = Floorplan(
            name="hybrid2d@domain",
            width_mm=domain_mm,
            height_mm=domain_mm,
            blocks=[
                Block(
                    b.name,
                    b.x_mm + margin,
                    b.y_mm + margin,
                    b.width_mm,
                    b.height_mm,
                    b.power_w,
                )
                for b in plan.blocks
            ],
        )
        return power_density_map(shifted, grid, grid)

    um = 1e-6
    layers = [
        ThermalLayer("pcb", 2000 * um, "pcb"),
        ThermalLayer("package", 1000 * um, "package"),
        ThermalLayer("bumps", 100 * um, "bumps", die_inset_mm=plan.width_mm),
        ThermalLayer(
            "die",
            100 * um,
            "silicon",
            die_inset_mm=plan.width_mm,
            power_map=padded(plan),
        ),
        ThermalLayer("tim1", 20 * um, "tim"),
        ThermalLayer("lid", 200 * um, "copper"),
        ThermalLayer("tim2", 20 * um, "tim"),
    ]
    stack = ThermalStack(
        domain_mm=domain_mm,
        layers=layers,
        ambient_c=ambient_c,
        h_top_w_m2k=h_top,
    )
    return SteadyStateSolver(grid, grid).solve(stack)


def compare_with_2d(h3d_report: ThermalReport, *, grid: int = 30) -> ThermalComparison:
    """Full Fig. 5 comparison: stack vs monolithic die."""
    solution = analyze_hybrid_2d(grid=grid)
    return ThermalComparison(
        h3d_report=h3d_report,
        die_2d_mean_c=solution.layer_mean("die"),
        die_2d_max_c=solution.layer_max("die"),
    )
