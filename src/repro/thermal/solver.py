"""Steady-state 3D finite-volume heat-conduction solver.

Solves ``div(k grad T) + q = 0`` on a structured grid: one cell layer per
stack layer vertically, ``nx x ny`` laterally.  Inter-cell conductances use
harmonic averaging of the neighbor conductivities; the top and bottom faces
carry convective boundaries (``h (T - T_amb)``), side walls are adiabatic.
The sparse linear system is assembled in COO form and solved directly -
the grids involved (tens of thousands of unknowns) are trivial for
``scipy.sparse.linalg.spsolve``.

This is the same compact-conduction formulation HotSpot 6.0 [32] uses in
grid mode, which is why the Fig. 5 setup parameters transfer directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import spsolve

from repro.errors import ThermalModelError
from repro.thermal.stack import ThermalStack


@dataclass
class ThermalSolution:
    """Temperatures per layer: dict of layer name -> (ny, nx) Celsius map."""

    stack: ThermalStack
    temperatures_c: Dict[str, np.ndarray]

    def layer(self, name: str) -> np.ndarray:
        if name not in self.temperatures_c:
            raise ThermalModelError(
                f"no layer {name!r}; have {sorted(self.temperatures_c)}"
            )
        return self.temperatures_c[name]

    def layer_max(self, name: str) -> float:
        return float(self.layer(name).max())

    def layer_min(self, name: str) -> float:
        return float(self.layer(name).min())

    def layer_mean(self, name: str) -> float:
        return float(self.layer(name).mean())

    @property
    def peak_c(self) -> float:
        return max(float(t.max()) for t in self.temperatures_c.values())


class SteadyStateSolver:
    """Assembles and solves the finite-volume system for a stack."""

    def __init__(self, nx: int = 30, ny: int = 30) -> None:
        if nx < 2 or ny < 2:
            raise ThermalModelError(f"grid must be at least 2x2, got {nx}x{ny}")
        self.nx = nx
        self.ny = ny

    def solve(self, stack: ThermalStack) -> ThermalSolution:
        nx, ny = self.nx, self.ny
        nz = len(stack.layers)
        n = nx * ny * nz
        size_m = stack.domain_mm * 1e-3
        dx = size_m / nx
        dy = size_m / ny
        area_xy = dx * dy

        # Per-layer conductivity grids and thicknesses.
        k_grids = [
            layer.conductivity_grid(nx, ny, stack.domain_mm)
            for layer in stack.layers
        ]
        dz = np.array([layer.thickness_m for layer in stack.layers])

        def index(i: int, j: int, l: int) -> int:
            return (l * ny + j) * nx + i

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        rhs = np.zeros(n)
        diag = np.zeros(n)

        def add_conductance(a: int, b: int, g: float) -> None:
            rows.append(a)
            cols.append(b)
            vals.append(-g)
            diag[a] += g

        for l in range(nz):
            k_layer = k_grids[l]
            for j in range(ny):
                for i in range(nx):
                    a = index(i, j, l)
                    # Lateral neighbors (east and north; symmetry fills rest).
                    if i + 1 < nx:
                        k_face = _harmonic(k_layer[j, i], k_layer[j, i + 1])
                        g = k_face * dy * dz[l] / dx
                        b = index(i + 1, j, l)
                        add_conductance(a, b, g)
                        add_conductance(b, a, g)
                    if j + 1 < ny:
                        k_face = _harmonic(k_layer[j, i], k_layer[j + 1, i])
                        g = k_face * dx * dz[l] / dy
                        b = index(i, j + 1, l)
                        add_conductance(a, b, g)
                        add_conductance(b, a, g)
                    # Vertical neighbor above.
                    if l + 1 < nz:
                        k_up = k_grids[l + 1][j, i]
                        half_a = dz[l] / (2 * k_layer[j, i])
                        half_b = dz[l + 1] / (2 * k_up)
                        g = area_xy / (half_a + half_b)
                        b = index(i, j, l + 1)
                        add_conductance(a, b, g)
                        add_conductance(b, a, g)
            # Heat injection.
            layer = stack.layers[l]
            if layer.power_map is not None:
                if layer.power_map.shape != (ny, nx):
                    raise ThermalModelError(
                        f"layer {layer.name!r} power map shape "
                        f"{layer.power_map.shape} does not match grid "
                        f"({ny}, {nx})"
                    )
                for j in range(ny):
                    for i in range(nx):
                        rhs[index(i, j, l)] += layer.power_map[j, i] * area_xy

        # Convective boundaries: top of last layer, bottom of first layer.
        for j in range(ny):
            for i in range(nx):
                top = index(i, j, nz - 1)
                g_cond = k_grids[nz - 1][j, i] * area_xy / (dz[nz - 1] / 2)
                g_conv = stack.h_top_w_m2k * area_xy
                g = _series(g_cond, g_conv)
                diag[top] += g
                rhs[top] += g * stack.ambient_c
                bottom = index(i, j, 0)
                g_cond = k_grids[0][j, i] * area_xy / (dz[0] / 2)
                g_conv = stack.h_bottom_w_m2k * area_xy
                g = _series(g_cond, g_conv)
                diag[bottom] += g
                rhs[bottom] += g * stack.ambient_c

        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag.tolist())
        matrix = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        solution = spsolve(csr_matrix(matrix), rhs)

        temperatures = {}
        for l, layer in enumerate(stack.layers):
            grid = solution[(l * ny) * nx : ((l + 1) * ny) * nx]
            temperatures[layer.name] = grid.reshape(ny, nx).copy()
        return ThermalSolution(stack=stack, temperatures_c=temperatures)


def _harmonic(a: float, b: float) -> float:
    return 2.0 * a * b / (a + b)


def _series(g1: float, g2: float) -> float:
    if g1 <= 0 or g2 <= 0:
        return 0.0
    return g1 * g2 / (g1 + g2)
