"""Thermal analysis of the H3D stack (reproduces Fig. 5).

Runs the solver on the paper's setup and reports tier temperatures, the
north-south gradient (the Fig. 5 hotspot sits toward the southern edge,
where the floorplans concentrate the support/IO power) and the RRAM
retention margin (retention degrades above ~100 C [33]; the paper's point
is that 3D stacking leaves a huge margin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cim.rram.device import RRAMDeviceModel
from repro.floorplan.plan import Floorplan, h3d_floorplans
from repro.hwmodel.energy import EnergyBreakdown
from repro.thermal.solver import SteadyStateSolver, ThermalSolution
from repro.thermal.stack import ThermalStack, h3d_thermal_stack

#: Layers reported in Fig. 5 (the three dies).
TIER_LAYERS = ("tier1", "tier2", "tier3")


@dataclass
class ThermalReport:
    """Digest of one thermal run."""

    solution: ThermalSolution
    tier_min_c: Dict[str, float]
    tier_max_c: Dict[str, float]
    tier_mean_c: Dict[str, float]
    south_north_delta_c: Dict[str, float]
    retention_ok: bool

    @property
    def stack_min_c(self) -> float:
        return min(self.tier_min_c.values())

    @property
    def stack_max_c(self) -> float:
        return max(self.tier_max_c.values())

    def render(self) -> str:
        lines = ["Thermal analysis (Fig. 5 setup)"]
        for tier in TIER_LAYERS:
            lines.append(
                f"  {tier}: {self.tier_min_c[tier]:.2f} - "
                f"{self.tier_max_c[tier]:.2f} C "
                f"(mean {self.tier_mean_c[tier]:.2f}, south-north "
                f"{self.south_north_delta_c[tier]:+.2f} C)"
            )
        lines.append(
            f"  stack range: {self.stack_min_c:.2f} - {self.stack_max_c:.2f} C "
            f"(paper: 46.8 - 47.8 C)"
        )
        lines.append(
            "  RRAM retention margin: "
            + ("OK (< 100 C)" if self.retention_ok else "VIOLATED")
        )
        return "\n".join(lines)

    def ascii_map(self, tier: str = "tier3", levels: str = " .:-=+*#%@") -> str:
        """Coarse ASCII rendering of a tier temperature map."""
        grid = self.solution.layer(tier)
        lo, hi = grid.min(), grid.max()
        span = max(hi - lo, 1e-9)
        rows = []
        for j in range(grid.shape[0] - 1, -1, -1):  # north at top
            row = ""
            for i in range(grid.shape[1]):
                level = int((grid[j, i] - lo) / span * (len(levels) - 1))
                row += levels[level]
            rows.append(row)
        header = f"{tier}: {lo:.2f} C (' ') .. {hi:.2f} C ('@')"
        return "\n".join([header] + rows)


def analyze_solution(
    solution: ThermalSolution,
    *,
    device: Optional[RRAMDeviceModel] = None,
) -> ThermalReport:
    """Summarize a solved stack into a :class:`ThermalReport`."""
    device = device or RRAMDeviceModel()
    tier_min, tier_max, tier_mean, delta = {}, {}, {}, {}
    for tier in TIER_LAYERS:
        grid = solution.layer(tier)
        tier_min[tier] = float(grid.min())
        tier_max[tier] = float(grid.max())
        tier_mean[tier] = float(grid.mean())
        ny = grid.shape[0]
        south = grid[: ny // 2].mean()
        north = grid[(ny + 1) // 2 :].mean()
        delta[tier] = float(south - north)
    hottest = max(tier_max.values())
    return ThermalReport(
        solution=solution,
        tier_min_c=tier_min,
        tier_max_c=tier_max,
        tier_mean_c=tier_mean,
        south_north_delta_c=delta,
        retention_ok=device.retention_ok(hottest),
    )


def analyze_h3d(
    energy: EnergyBreakdown,
    *,
    floorplans: Optional[Dict[str, Floorplan]] = None,
    domain_mm: float = 1.03,
    grid: int = 30,
    ambient_c: float = 25.0,
    h_top: float = 1000.0,
) -> ThermalReport:
    """End-to-end Fig. 5 analysis from an energy breakdown."""
    if floorplans is None:
        floorplans = h3d_floorplans(energy)
    stack = h3d_thermal_stack(
        floorplans,
        domain_mm=domain_mm,
        nx=grid,
        ny=grid,
        ambient_c=ambient_c,
        h_top=h_top,
    )
    solver = SteadyStateSolver(nx=grid, ny=grid)
    solution = solver.solve(stack)
    return analyze_solution(solution)
