"""Fig. 6: ADC-precision convergence (a) and testchip validation (b).

* **Fig. 6a**: with the similarity path quantized to 4 bits, factorization
  converges to 99 % accuracy in ~10 iterations where the 8-bit design
  needs ~30 - lower precision adds quantization stochasticity that breaks
  limit cycles sooner.
* **Fig. 6b**: with noise statistics extracted from the 40 nm RRAM
  testchip, the factorizer reaches >96 % accuracy one-shot and 99 % after
  ~25 iterations.

Both experiments route their trials through the micro-batching
factorization service (:mod:`repro.service`): Fig. 6a submits every trial
of one ADC setting as an individual request that the scheduler coalesces
back into one :class:`~repro.resonator.batched.BatchedResonatorNetwork`
batch (the second ADC setting re-uses the first's interned codebooks),
and Fig. 6b resubmits the unsolved survivors between restarts - their
codebooks hit the registry, so every restart is a pure query against
already-"programmed" arrays.

Both run at **crossbar fidelity** by default (full tiled RRAM simulation,
:class:`~repro.core.crossbar_backend.CIMBatchedBackend`) with one seed per
request, so the reported numbers are bit-identical under
``H3DFACT_ENGINE=sequential``; set ``fidelity="statistical"`` for the
aggregate noise model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cim.rram.noise import NoiseParameters
from repro.core.engine import H3DFact
from repro.resonator.metrics import accuracy_curve
from repro.resonator.network import FactorizationProblem
from repro.service.registry import CodebookRegistry
from repro.service.request import FactorizationRequest
from repro.service.scheduler import FactorizationService
from repro.utils.rng import as_rng, fresh_seed


@dataclass
class Fig6aConfig:
    """Operating point where limit-cycle escape dominates convergence.

    The 4-bit advantage comes from quantization dither helping escapes,
    so it shows at sizes beyond the deterministic comfort zone (M = 64 at
    F = 3), not at tiny problems where extra precision wins.
    """

    dim: int = 1024
    num_factors: int = 3
    codebook_size: int = 64
    trials: int = 40
    max_iterations: int = 500
    adc_bits: Tuple[int, ...] = (4, 8)
    #: Headline crossing; the paper's 99 % needs thousands of trials to
    #: estimate stably, so the default tracks the 90 % crossing (the curve
    #: itself is rendered either way).
    target_accuracy: float = 0.90
    seed: int = 0
    #: MVM fidelity: "crossbar" (default) or "statistical".
    fidelity: str = "crossbar"


@dataclass
class Fig6aResult:
    #: Accuracy-vs-iteration curve per ADC resolution.
    curves: Dict[int, np.ndarray]
    iterations_to_target: Dict[int, Optional[int]]
    elapsed_seconds: float

    def render(self) -> str:
        lines = ["Fig. 6a - convergence vs ADC precision"]
        for bits, iters in self.iterations_to_target.items():
            label = "not reached" if iters is None else f"{iters} iterations"
            lines.append(f"  {bits}-bit ADC: target accuracy at {label}")
        lines.append(
            "  (paper: 4-bit converges ~3x sooner - 10 vs 30 iterations)"
        )
        checkpoints = (10, 30, 60, 100, 200, 400)
        header = "  iter:   " + "".join(f"{c:>7}" for c in checkpoints)
        lines.append(header)
        for bits, curve in self.curves.items():
            row = f"  {bits}-bit: "
            for checkpoint in checkpoints:
                if checkpoint <= len(curve):
                    row += f"{100 * curve[checkpoint - 1]:6.1f}%"
                else:
                    row += "      -"
            lines.append(row)
        return "\n".join(lines)


def run_fig6a(config: Optional[Fig6aConfig] = None) -> Fig6aResult:
    config = config or Fig6aConfig()
    start = time.perf_counter()
    curves: Dict[int, np.ndarray] = {}
    to_target: Dict[int, Optional[int]] = {}
    with FactorizationService(
        registry=CodebookRegistry(capacity=max(config.trials, 8))
    ) as service:
        for bits in config.adc_bits:
            rng = as_rng(config.seed)
            engine = H3DFact(adc_bits=bits, rng=rng, fidelity=config.fidelity)
            problems = [
                FactorizationProblem.random(
                    config.dim, config.num_factors, config.codebook_size, rng=rng
                )
                for _ in range(config.trials)
            ]
            # Per-request seeds: initial states and (at crossbar fidelity)
            # per-trial noise streams derive from them, making the curves
            # bit-identical across engines and batch packings.
            seeds = [fresh_seed(rng) for _ in problems]
            responses = service.run_coalesced(
                [
                    FactorizationRequest.from_problem(p, seed=s)
                    for p, s in zip(problems, seeds)
                ],
                network_factory=lambda p: engine.make_network(
                    p.codebooks, max_iterations=config.max_iterations
                ),
            )
            curve = accuracy_curve(
                [r.result for r in responses], config.max_iterations
            )
            curves[bits] = curve
            reached = np.nonzero(curve >= config.target_accuracy)[0]
            to_target[bits] = int(reached[0]) + 1 if reached.size else None
    return Fig6aResult(
        curves=curves,
        iterations_to_target=to_target,
        elapsed_seconds=time.perf_counter() - start,
    )


@dataclass
class Fig6bConfig:
    """Perception-scale workload (small codebooks, the Fig. 7 regime)."""

    dim: int = 1024
    num_factors: int = 4
    codebook_size: int = 4
    trials: int = 80
    max_iterations: int = 40
    #: Re-initialize the state every this many sweeps when unsolved -
    #: the controller's stall recovery (fresh superposition costs one
    #: digital pass).  The cumulative sweep count is what the curve uses.
    restart_period: int = 8
    seed: int = 0
    #: MVM fidelity: "crossbar" (default) or "statistical".
    fidelity: str = "crossbar"


@dataclass
class Fig6bResult:
    curve: np.ndarray
    one_shot_accuracy: float
    accuracy_at_25: float
    iterations_to_99: Optional[int]
    elapsed_seconds: float

    def render(self) -> str:
        label = (
            "not reached"
            if self.iterations_to_99 is None
            else f"{self.iterations_to_99} iterations"
        )
        return "\n".join(
            [
                "Fig. 6b - 40 nm RRAM testchip noise validation",
                f"  single-sweep accuracy: {100 * self.one_shot_accuracy:.1f} % "
                "(paper one-shot: > 96 %; see EXPERIMENTS.md on the metric)",
                f"  accuracy at 25 iterations: {100 * self.accuracy_at_25:.1f} %",
                f"  99 % accuracy at: {label} (paper: ~25 iterations)",
            ]
        )


def _replay_seed(base: int, trial: int, segment: int) -> int:
    """Deterministic per-(trial, restart-segment) request seed."""
    return int(
        np.random.SeedSequence((base, trial, segment)).generate_state(1)[0]
    )


def run_fig6b(config: Optional[Fig6bConfig] = None) -> Fig6bResult:
    config = config or Fig6bConfig()
    start = time.perf_counter()
    rng = as_rng(config.seed)
    engine = H3DFact(
        noise=NoiseParameters.testchip(), rng=rng, fidelity=config.fidelity
    )
    problems = [
        FactorizationProblem.random(
            config.dim, config.num_factors, config.codebook_size, rng=rng
        )
        for _ in range(config.trials)
    ]
    solved_at: List[Optional[int]] = [None] * config.trials
    # All unsolved trials advance together; every restart_period sweeps the
    # survivors re-initialize (fresh superposition) and keep going until the
    # cumulative sweep budget runs out.  Each segment resubmits the
    # survivors to the service, whose registry recognizes their codebooks
    # from the previous segment - the arrays are "programmed" once and
    # every restart is a pure query (all-hit after segment one).
    with FactorizationService(
        registry=CodebookRegistry(capacity=max(config.trials, 8))
    ) as service:
        # Program every trial's codebooks once up front; the restart loop
        # then resubmits survivors by registry key, paying neither the
        # re-programming nor the content-hash cost again.
        keys = [service.registry.register(p.codebooks) for p in problems]
        unsolved = list(range(config.trials))
        total = 0
        segment_index = 0
        while total < config.max_iterations and unsolved:
            segment = min(config.restart_period, config.max_iterations - total)
            # Each (trial, restart) carries its own derived seed: the
            # restart's fresh superposition and (at crossbar fidelity) its
            # noise stream replay bit-identically across engines,
            # independent of which survivors share its batch.
            responses = service.run_coalesced(
                [
                    FactorizationRequest(
                        product=problems[t].product,
                        codebook_key=keys[t],
                        true_indices=problems[t].true_indices,
                        seed=_replay_seed(config.seed, t, segment_index),
                    )
                    for t in unsolved
                ],
                network_factory=lambda p: engine.make_network(
                    p.codebooks, max_iterations=segment
                ),
            )
            survivors: List[int] = []
            for response, trial in zip(responses, unsolved):
                result = response.result
                if result.correct and result.first_correct_iteration is not None:
                    solved_at[trial] = total + result.first_correct_iteration
                else:
                    survivors.append(trial)
            unsolved = survivors
            total += segment
            segment_index += 1
    curve = np.zeros(config.max_iterations)
    for solved in solved_at:
        if solved is not None:
            curve[min(solved, config.max_iterations) - 1 :] += 1
    curve /= config.trials
    reached = np.nonzero(curve >= 0.99)[0]
    return Fig6bResult(
        curve=curve,
        one_shot_accuracy=float(curve[0]),
        accuracy_at_25=float(curve[min(24, config.max_iterations - 1)]),
        iterations_to_99=int(reached[0]) + 1 if reached.size else None,
        elapsed_seconds=time.perf_counter() - start,
    )
