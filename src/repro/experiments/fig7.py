"""Fig. 7: holographic neuro-symbolic perception on RAVEN-style panels."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.perception.pipeline import NeuroSymbolicPipeline, PerceptionReport


@dataclass
class Fig7Config:
    dim: int = 1024
    image_size: int = 48
    train_panels: int = 3200
    test_panels: int = 200
    noise_std: float = 0.01
    max_iterations: int = 150
    seed: int = 0


@dataclass
class Fig7Result:
    report: PerceptionReport
    train_bit_accuracy: float
    elapsed_seconds: float

    def render(self) -> str:
        return "\n".join(
            [
                self.report.render(),
                f"  (front-end training bit accuracy "
                f"{100 * self.train_bit_accuracy:.1f} %)",
            ]
        )


def run_fig7(config: Optional[Fig7Config] = None) -> Fig7Result:
    config = config or Fig7Config()
    start = time.perf_counter()
    pipeline = NeuroSymbolicPipeline(
        dim=config.dim, image_size=config.image_size, rng=config.seed
    )
    train_accuracy = pipeline.train(
        config.train_panels, noise_std=config.noise_std
    )
    report = pipeline.evaluate(
        config.test_panels,
        noise_std=config.noise_std,
        max_iterations=config.max_iterations,
    )
    return Fig7Result(
        report=report,
        train_bit_accuracy=train_accuracy,
        elapsed_seconds=time.perf_counter() - start,
    )
