"""Shared experiment infrastructure."""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional


def full_scale() -> bool:
    """True when paper-scale grids were requested via ``H3DFACT_FULL=1``.

    The batch drivers read their own ``H3DFACT_ENGINE`` knob directly; see
    :func:`repro.resonator.batch.engine_from_environment`.
    """
    return os.environ.get("H3DFACT_FULL", "0") not in ("", "0", "false", "no")


@dataclass
class ExperimentResult:
    """Envelope for saving any experiment outcome to JSON."""

    experiment: str
    config: Dict[str, Any]
    data: Dict[str, Any]
    elapsed_seconds: float
    created_unix: float = field(default_factory=time.time)

    def save(self, path: Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(asdict(self), indent=2, default=_jsonable))
        return path

    @classmethod
    def wrap(
        cls, experiment: str, config: Any, data: Dict[str, Any], elapsed: float
    ) -> "ExperimentResult":
        config_dict = asdict(config) if is_dataclass(config) else dict(config)
        return cls(
            experiment=experiment,
            config=config_dict,
            data=data,
            elapsed_seconds=elapsed,
        )


def _jsonable(value: Any) -> Any:
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return str(value)
