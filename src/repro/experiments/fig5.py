"""Fig. 5: thermal analysis of the 3D stack."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.arch.designs import h3d_design
from repro.hwmodel.metrics import evaluate_design
from repro.thermal.analysis import ThermalReport, analyze_h3d


@dataclass
class Fig5Config:
    grid: int = 30
    domain_mm: float = 1.03
    ambient_c: float = 25.0
    h_top: float = 1000.0


@dataclass
class Fig5Result:
    report: ThermalReport
    elapsed_seconds: float

    def render(self) -> str:
        return "\n".join(
            [self.report.render(), "", self.report.ascii_map("tier3")]
        )


def run_fig5(config: Optional[Fig5Config] = None) -> Fig5Result:
    config = config or Fig5Config()
    start = time.perf_counter()
    metrics = evaluate_design(h3d_design())
    report = analyze_h3d(
        metrics.energy,
        domain_mm=config.domain_mm,
        grid=config.grid,
        ambient_c=config.ambient_c,
        h_top=config.h_top,
    )
    return Fig5Result(report=report, elapsed_seconds=time.perf_counter() - start)
