"""Ablations of the H3DFact design choices.

Three sweeps quantify the design-space decisions the paper motivates but
does not tabulate; the ablation bench regenerates them:

* **noise scale** - device stochasticity is useful in a window: too little
  fails to break limit cycles, too much destroys the similarity signal
  (Sec. III-C / Fig. 2b);
* **VTGT pass count** - the adaptive threshold's target number of
  supra-threshold candidates controls the sparsity of the search
  superposition (Sec. V-D's threshold adjustment);
* **ADC resolution** - end-to-end accuracy/latency across 2-8 bits
  (generalizes Fig. 6a beyond the two published points).

All three sweeps run at **crossbar fidelity** by default (the full tiled
RRAM simulation of :class:`~repro.core.crossbar_backend.CIMBatchedBackend`,
batched across trials; ``H3DFACT_ENGINE=sequential`` restores the per-trial
loop).  At that fidelity the noise-scale sweep scales the *device* read
noise together with the calibrated peripheral residual, so ``scale=0``
still carries the frozen programming variability - stochasticity you can
only remove by switching ``fidelity="statistical"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cim.rram.device import RRAMDeviceModel
from repro.cim.rram.noise import NoiseParameters
from repro.core.engine import H3DFact
from repro.resonator.batch import factorize_batch
from repro.resonator.stochastic import ThresholdPolicy
from repro.utils.rng import as_rng


@dataclass
class AblationConfig:
    dim: int = 1024
    num_factors: int = 3
    codebook_size: int = 64
    trials: int = 12
    max_iterations: int = 2000
    noise_scales: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)
    pass_counts: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)
    adc_bits: Tuple[int, ...] = (2, 3, 4, 6, 8)
    seed: int = 0
    #: MVM fidelity: "crossbar" (default), "statistical", "sram" (exact
    #: digital tier-1), or "hybrid" (SRAM similarity + crossbar projection).
    fidelity: str = "crossbar"


@dataclass
class SweepPoint:
    parameter: float
    accuracy: float
    mean_iterations: float


@dataclass
class AblationResult:
    noise_sweep: List[SweepPoint]
    threshold_sweep: List[SweepPoint]
    adc_sweep: List[SweepPoint]
    config: AblationConfig
    elapsed_seconds: float

    @staticmethod
    def _render_sweep(title: str, points: List[SweepPoint], label: str) -> List[str]:
        lines = [title]
        for point in points:
            lines.append(
                f"  {label}={point.parameter:<6g} accuracy "
                f"{100 * point.accuracy:5.1f} %  mean iters "
                f"{point.mean_iterations:7.1f}"
            )
        return lines

    def render(self) -> str:
        lines: List[str] = []
        lines += self._render_sweep(
            "Ablation - read-out noise scale (x testchip sigma)",
            self.noise_sweep,
            "scale",
        )
        lines += self._render_sweep(
            "Ablation - VTGT target pass count", self.threshold_sweep, "k"
        )
        lines += self._render_sweep(
            "Ablation - ADC resolution", self.adc_sweep, "bits"
        )
        return "\n".join(lines)

    def best_noise_scale(self) -> float:
        return max(
            self.noise_sweep, key=lambda p: (p.accuracy, -p.mean_iterations)
        ).parameter


def _run_point(
    engine_factory, config: AblationConfig, seed_offset: int
) -> Tuple[float, float]:
    batch = factorize_batch(
        engine_factory,
        dim=config.dim,
        num_factors=config.num_factors,
        codebook_size=config.codebook_size,
        trials=config.trials,
        rng=config.seed + seed_offset,
        check_correct_every=2,
    )
    return batch.accuracy, batch.statistics.mean_iterations


def run_ablation(config: Optional[AblationConfig] = None) -> AblationResult:
    config = config or AblationConfig()
    start = time.perf_counter()

    noise_sweep: List[SweepPoint] = []
    for scale in config.noise_scales:
        noise = NoiseParameters.testchip().scaled(scale)
        if config.fidelity == "crossbar":
            # Scale the device's per-read noise with the aggregate target
            # so the sweep spans the same axis at device granularity.
            device = replace(
                RRAMDeviceModel(),
                sigma_read=RRAMDeviceModel().sigma_read * scale,
            )
            engine = H3DFact(
                noise=noise,
                device=device,
                rng=config.seed,
                fidelity=config.fidelity,
            )
        else:
            engine = H3DFact(noise=noise, rng=config.seed, fidelity=config.fidelity)
        accuracy, iterations = _run_point(
            lambda p: engine.make_network(
                p.codebooks, max_iterations=config.max_iterations
            ),
            config,
            seed_offset=1,
        )
        noise_sweep.append(SweepPoint(scale, accuracy, iterations))

    threshold_sweep: List[SweepPoint] = []
    for pass_count in config.pass_counts:
        engine = H3DFact(
            threshold_policy=ThresholdPolicy(target_pass_count=pass_count),
            rng=config.seed,
            fidelity=config.fidelity,
        )
        accuracy, iterations = _run_point(
            lambda p: engine.make_network(
                p.codebooks, max_iterations=config.max_iterations
            ),
            config,
            seed_offset=2,
        )
        threshold_sweep.append(SweepPoint(pass_count, accuracy, iterations))

    adc_sweep: List[SweepPoint] = []
    for bits in config.adc_bits:
        engine = H3DFact(adc_bits=bits, rng=config.seed, fidelity=config.fidelity)
        accuracy, iterations = _run_point(
            lambda p: engine.make_network(
                p.codebooks, max_iterations=config.max_iterations
            ),
            config,
            seed_offset=3,
        )
        adc_sweep.append(SweepPoint(float(bits), accuracy, iterations))

    return AblationResult(
        noise_sweep=noise_sweep,
        threshold_sweep=threshold_sweep,
        adc_sweep=adc_sweep,
        config=config,
        elapsed_seconds=time.perf_counter() - start,
    )
