"""Table II: factorization accuracy and operational capacity.

Compares the deterministic baseline resonator against the H3DFact
configuration (testchip noise + VTGT threshold + 4-bit ADC) across problem
sizes.  The paper's grid spans F in {3, 4} and M (the per-factor codebook
size, labeled "D" in Table II) from 16 to 512; the default config trims the
largest cells so the experiment runs in minutes - ``H3DFACT_FULL=1``
restores the full grid (hours: the largest stochastic cells need millions
of sweeps, exactly as the paper's iteration counts imply).

The H3D column runs at **crossbar fidelity** by default: the full tiled
RRAM simulation (programmed conductances, per-tile ADCs, device + residual
read noise - :class:`~repro.core.crossbar_backend.CIMBatchedBackend`),
batched across trials.  Every request carries its own seed, so the column
is *bit-identical* under ``H3DFACT_ENGINE=sequential`` (the per-trial
loop); ``fidelity="statistical"`` restores the aggregate noise model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import H3DFact, baseline_network
from repro.experiments.runner import full_scale
from repro.resonator.batch import generate_problems
from repro.resonator.metrics import BatchStatistics, summarize
from repro.service.registry import CodebookRegistry
from repro.service.request import FactorizationRequest
from repro.service.scheduler import FactorizationService
from repro.utils.rng import as_rng, fresh_seed


@dataclass
class Table2Config:
    dim: int = 1024
    factor_counts: Tuple[int, ...] = (3, 4)
    codebook_sizes: Tuple[int, ...] = (16, 32, 64, 128)
    #: Per-(F, M) iteration caps for the stochastic runs; cells beyond the
    #: cap report accuracy-at-cap (the paper ran orders of magnitude more).
    max_iterations_baseline: int = 1000
    max_iterations_h3d: int = 6000
    trials: int = 20
    target_accuracy: float = 0.99
    seed: int = 0
    #: Batch execution engine: "batched" (vectorized, the default),
    #: "sequential" (per-trial loop), or None to consult H3DFACT_ENGINE.
    engine: Optional[str] = None
    #: MVM fidelity of the H3D column: "crossbar" (full tiled crossbar
    #: simulation, the default), "statistical" (aggregate noise model),
    #: "sram" (exact all-digital tier-1), or "hybrid" (GEM3D-style SRAM
    #: similarity + crossbar projection companion point).
    fidelity: str = "crossbar"

    @classmethod
    def paper(cls) -> "Table2Config":
        """The full Table II grid (long-running)."""
        return cls(
            codebook_sizes=(16, 32, 64, 128, 256, 512),
            max_iterations_h3d=4_000_000,
            trials=25,
        )

    @classmethod
    def from_environment(cls) -> "Table2Config":
        return cls.paper() if full_scale() else cls()


@dataclass
class Cell:
    """One (design, F, M) grid cell."""

    design: str
    num_factors: int
    codebook_size: int
    stats: BatchStatistics

    @property
    def accuracy_pct(self) -> float:
        return 100 * self.stats.accuracy

    @property
    def iterations_label(self) -> str:
        value = self.stats.iterations_to_target
        return "Fail" if value is None else f"{value:.0f}"


@dataclass
class Table2Result:
    cells: List[Cell]
    config: Table2Config
    elapsed_seconds: float

    def cell(self, design: str, num_factors: int, size: int) -> Cell:
        for cell in self.cells:
            if (
                cell.design == design
                and cell.num_factors == num_factors
                and cell.codebook_size == size
            ):
                return cell
        raise KeyError((design, num_factors, size))

    def capacity(self, design: str, num_factors: int) -> int:
        """Largest search space M^F at >= target accuracy."""
        best = 0
        for cell in self.cells:
            if cell.design == design and cell.num_factors == num_factors:
                if cell.stats.accuracy >= self.config.target_accuracy - 1e-9:
                    best = max(best, cell.codebook_size**num_factors)
        return best

    def capacity_gain(self, num_factors: int) -> float:
        base = self.capacity("baseline", num_factors)
        h3d = self.capacity("h3d", num_factors)
        if base == 0:
            return float("inf") if h3d else 0.0
        return h3d / base

    def render(self) -> str:
        lines = [
            "Table II - accuracy (%) and iterations to reach 99 % accuracy",
            f"{'M':>5} | "
            + " | ".join(
                f"F={f} base acc/it    F={f} H3D acc/it"
                for f in self.config.factor_counts
            ),
        ]
        for size in self.config.codebook_sizes:
            parts = [f"{size:>5}"]
            for f in self.config.factor_counts:
                base = self.cell("baseline", f, size)
                h3d = self.cell("h3d", f, size)
                parts.append(
                    f"{base.accuracy_pct:5.1f}/{base.iterations_label:>6}   "
                    f"{h3d.accuracy_pct:5.1f}/{h3d.iterations_label:>6}"
                )
            lines.append(" | ".join(parts))
        for f in self.config.factor_counts:
            gain = self.capacity_gain(f)
            label = "inf" if gain == float("inf") else f"{gain:.0f}x"
            lines.append(
                f"operational capacity gain (F={f}): {label} "
                f"(paper: up to five orders of magnitude)"
            )
        return "\n".join(lines)


def run_table2(config: Optional[Table2Config] = None) -> Table2Result:
    config = config or Table2Config()
    start = time.perf_counter()
    rng = as_rng(config.seed)
    cells: List[Cell] = []
    # All cells route through one factorization service: each trial is
    # submitted as an individual request and the scheduler coalesces the
    # cell back into one stacked batch (deterministic packing, so the
    # numbers are bit-identical to driving factorize_problems directly).
    service = FactorizationService(
        registry=CodebookRegistry(capacity=max(2 * config.trials, 8))
    )
    with service:
        for num_factors in config.factor_counts:
            for size in config.codebook_sizes:
                problems = generate_problems(
                    dim=config.dim,
                    num_factors=num_factors,
                    codebook_size=size,
                    trials=config.trials,
                    rng=rng,
                )
                # The deterministic baseline keeps the historical
                # shared-stream packing (its engine parity needs no
                # per-request seeds - PR 1's deterministic guarantee).
                responses = service.run_coalesced(
                    [FactorizationRequest.from_problem(p) for p in problems],
                    # Seed the network too (init tie-breaks), so the whole
                    # cell is reproducible from config.seed.
                    network_factory=lambda p: baseline_network(
                        p.codebooks,
                        max_iterations=config.max_iterations_baseline,
                        rng=rng,
                    ),
                    engine=config.engine,
                )
                cells.append(
                    Cell(
                        "baseline",
                        num_factors,
                        size,
                        summarize(
                            [r.result for r in responses],
                            target_accuracy=config.target_accuracy,
                        ),
                    )
                )
                engine = H3DFact(rng=rng, fidelity=config.fidelity)
                problems = generate_problems(
                    dim=config.dim,
                    num_factors=num_factors,
                    codebook_size=size,
                    trials=config.trials,
                    rng=rng,
                )
                # One seed per H3D request: initial states and (at
                # crossbar fidelity) per-trial noise streams derive from
                # it, which is what makes the stochastic column
                # bit-identical across engines and batch packings.
                seeds = [fresh_seed(rng) for _ in problems]
                responses = service.run_coalesced(
                    [
                        FactorizationRequest.from_problem(
                            p,
                            seed=s,
                            max_iterations=config.max_iterations_h3d,
                        )
                        for p, s in zip(problems, seeds)
                    ],
                    network_factory=lambda p: engine.make_network(
                        p.codebooks, max_iterations=config.max_iterations_h3d
                    ),
                    check_correct_every=2,
                    engine=config.engine,
                )
                cells.append(
                    Cell(
                        "h3d",
                        num_factors,
                        size,
                        summarize(
                            [r.result for r in responses],
                            target_accuracy=config.target_accuracy,
                        ),
                    )
                )
    return Table2Result(
        cells=cells,
        config=config,
        elapsed_seconds=time.perf_counter() - start,
    )
