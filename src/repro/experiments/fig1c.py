"""Fig. 1c: operation breakdown and baseline accuracy scaling.

Two characterizations motivate the CIM design:

* the similarity + projection MVMs dominate factorization compute
  (~80 % in the paper), measured here with the deterministic op-count
  profiler: backends report exact flop counts per step (2 flops per MAC
  for the MVMs), so the breakdown is identical on every run and machine.
  Wall-clock fractions are still recorded for reference but are noisy
  (Python timer jitter swamps sub-millisecond steps) and never asserted
  on;
* the deterministic baseline's accuracy collapses as the problem size
  grows (the limit-cycle problem), measured as accuracy vs codebook size.

Both parts run on the vectorized batched engine: the profile advances a
batch of trials through :class:`~repro.resonator.batched.BatchedResonatorNetwork`
and the scaling sweep uses the batched :func:`~repro.resonator.batch.factorize_batch`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.engine import baseline_network
from repro.resonator.batch import factorize_batch, generate_problems
from repro.resonator.batched import BatchedResonatorNetwork
from repro.resonator.profiler import ResonatorProfiler
from repro.utils.rng import as_rng


@dataclass
class Fig1cConfig:
    dim: int = 1024
    num_factors: int = 3
    profile_codebook_size: int = 64
    profile_iterations: int = 50
    profile_trials: int = 4
    scaling_sizes: Tuple[int, ...] = (8, 16, 32, 64, 128)
    scaling_trials: int = 15
    scaling_max_iterations: int = 500
    seed: int = 0


@dataclass
class Fig1cResult:
    #: Deterministic flop-weighted fraction per step - the "time" model the
    #: breakdown reports (identical on every run; what tests assert on).
    time_fractions: Dict[str, float]
    #: Deterministic element/MAC-count fraction per step.
    op_fractions: Dict[str, float]
    #: Deterministic flop-weighted share of the similarity+projection MVMs.
    mvm_time_fraction: float
    #: Element/MAC-count share of the MVMs.
    mvm_op_fraction: float
    #: Measured wall-clock MVM share - informational only, machine-noisy.
    mvm_wall_fraction: float
    baseline_accuracy: Dict[int, float]
    elapsed_seconds: float

    def render(self) -> str:
        lines = ["Fig. 1c - operation breakdown (paper: MVM ~80 % of time)"]
        for name, frac in sorted(
            self.time_fractions.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {name:<12} {100 * frac:5.1f} % flops  "
                f"{100 * self.op_fractions.get(name, 0.0):5.1f} % ops"
            )
        lines.append(
            f"  MVM share: {100 * self.mvm_time_fraction:.1f} % flops / "
            f"{100 * self.mvm_op_fraction:.1f} % ops / "
            f"{100 * self.mvm_wall_fraction:.1f} % wall"
        )
        lines.append("Fig. 1c - baseline accuracy vs problem size (the cliff)")
        for size, acc in self.baseline_accuracy.items():
            lines.append(f"  M={size:<4} accuracy {100 * acc:5.1f} %")
        return "\n".join(lines)


def run_fig1c(config: Fig1cConfig = Fig1cConfig()) -> Fig1cResult:
    start = time.perf_counter()
    rng = as_rng(config.seed)

    # Part 1: profile a small deterministic batch at a moderate size.
    problems = generate_problems(
        dim=config.dim,
        num_factors=config.num_factors,
        codebook_size=config.profile_codebook_size,
        trials=config.profile_trials,
        rng=rng,
    )
    template = baseline_network(
        problems[0].codebooks, max_iterations=config.profile_iterations, rng=rng
    )
    network = BatchedResonatorNetwork.from_network(
        template, [problem.codebooks for problem in problems]
    )
    profiler = ResonatorProfiler()
    network.profiler = profiler
    network.detect_cycles = False  # profile a fixed iteration count
    network.factorize(
        np.stack([problem.product for problem in problems]),
        max_iterations=config.profile_iterations,
    )

    # Part 2: baseline accuracy vs codebook size.
    accuracy: Dict[int, float] = {}
    for size in config.scaling_sizes:
        batch = factorize_batch(
            # Seeded network: init tie-breaks come from the experiment rng,
            # keeping the accuracy cliff reproducible run to run.
            lambda p: baseline_network(
                p.codebooks, max_iterations=config.scaling_max_iterations, rng=rng
            ),
            dim=config.dim,
            num_factors=config.num_factors,
            codebook_size=size,
            trials=config.scaling_trials,
            rng=rng,
        )
        accuracy[size] = batch.accuracy

    counts = profiler.op_counts()
    total_ops = sum(counts.counts.values()) or 1
    return Fig1cResult(
        time_fractions=profiler.flop_fractions(),
        op_fractions={k: v / total_ops for k, v in counts.counts.items()},
        mvm_time_fraction=profiler.mvm_flop_fraction(),
        mvm_op_fraction=profiler.mvm_op_fraction(),
        mvm_wall_fraction=profiler.mvm_time_fraction(),
        baseline_accuracy=accuracy,
        elapsed_seconds=time.perf_counter() - start,
    )
