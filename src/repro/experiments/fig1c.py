"""Fig. 1c: operation-time breakdown and baseline accuracy scaling.

Two characterizations motivate the CIM design:

* the similarity + projection MVMs dominate factorization compute
  (~80 % of time), measured here with the op-level profiler;
* the deterministic baseline's accuracy collapses as the problem size
  grows (the limit-cycle problem), measured as accuracy vs codebook size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.engine import baseline_network
from repro.resonator.batch import factorize_batch
from repro.resonator.network import FactorizationProblem, ResonatorNetwork
from repro.resonator.profiler import ResonatorProfiler
from repro.utils.rng import as_rng


@dataclass
class Fig1cConfig:
    dim: int = 1024
    num_factors: int = 3
    profile_codebook_size: int = 64
    profile_iterations: int = 50
    scaling_sizes: Tuple[int, ...] = (8, 16, 32, 64, 128)
    scaling_trials: int = 15
    scaling_max_iterations: int = 500
    seed: int = 0


@dataclass
class Fig1cResult:
    time_fractions: Dict[str, float]
    op_fractions: Dict[str, float]
    mvm_time_fraction: float
    mvm_op_fraction: float
    baseline_accuracy: Dict[int, float]
    elapsed_seconds: float

    def render(self) -> str:
        lines = ["Fig. 1c - operation breakdown (paper: MVM ~80 % of time)"]
        for name, frac in sorted(
            self.time_fractions.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {name:<12} {100 * frac:5.1f} % time  "
                f"{100 * self.op_fractions.get(name, 0.0):5.1f} % ops"
            )
        lines.append(
            f"  MVM share: {100 * self.mvm_time_fraction:.1f} % time / "
            f"{100 * self.mvm_op_fraction:.1f} % ops"
        )
        lines.append("Fig. 1c - baseline accuracy vs problem size (the cliff)")
        for size, acc in self.baseline_accuracy.items():
            lines.append(f"  M={size:<4} accuracy {100 * acc:5.1f} %")
        return "\n".join(lines)


def run_fig1c(config: Fig1cConfig = Fig1cConfig()) -> Fig1cResult:
    start = time.perf_counter()
    rng = as_rng(config.seed)

    # Part 1: profile one deterministic run at a moderate size.
    problem = FactorizationProblem.random(
        config.dim, config.num_factors, config.profile_codebook_size, rng=rng
    )
    network = baseline_network(
        problem.codebooks, max_iterations=config.profile_iterations, rng=rng
    )
    profiler = ResonatorProfiler()
    network.profiler = profiler
    network.detect_cycles = False  # profile a fixed iteration count
    network.factorize(problem.product, max_iterations=config.profile_iterations)

    # Part 2: baseline accuracy vs codebook size.
    accuracy: Dict[int, float] = {}
    for size in config.scaling_sizes:
        batch = factorize_batch(
            lambda p: baseline_network(
                p.codebooks, max_iterations=config.scaling_max_iterations
            ),
            dim=config.dim,
            num_factors=config.num_factors,
            codebook_size=size,
            trials=config.scaling_trials,
            rng=rng,
        )
        accuracy[size] = batch.accuracy

    counts = profiler.op_counts()
    total_ops = sum(counts.counts.values()) or 1
    return Fig1cResult(
        time_fractions=profiler.time_fractions(),
        op_fractions={k: v / total_ops for k, v in counts.counts.items()},
        mvm_time_fraction=profiler.mvm_time_fraction(),
        mvm_op_fraction=profiler.mvm_op_fraction(),
        baseline_accuracy=accuracy,
        elapsed_seconds=time.perf_counter() - start,
    )
