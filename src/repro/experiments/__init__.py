"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver exposes a ``run(config) -> result`` function and a result
``render()`` that prints the same rows/series the paper reports.  Default
configurations are sized for interactive wall-clock; set
``H3DFACT_FULL=1`` (or pass a full config) for paper-scale grids.
"""

from repro.experiments.runner import ExperimentResult, full_scale
from repro.experiments.fhrr import (
    FhrrCell,
    FhrrPointConfig,
    FhrrPointResult,
    run_fhrr_point,
)
from repro.experiments.fig1c import Fig1cConfig, Fig1cResult, run_fig1c
from repro.experiments.table2 import Table2Config, Table2Result, run_table2
from repro.experiments.table3 import Table3Config, Table3Result, run_table3
from repro.experiments.fig5 import Fig5Config, Fig5Result, run_fig5
from repro.experiments.fig6 import (
    Fig6aConfig,
    Fig6aResult,
    Fig6bConfig,
    Fig6bResult,
    run_fig6a,
    run_fig6b,
)
from repro.experiments.fig7 import Fig7Config, Fig7Result, run_fig7
from repro.experiments.ablation import (
    AblationConfig,
    AblationResult,
    run_ablation,
)

__all__ = [
    "AblationConfig",
    "AblationResult",
    "run_ablation",
    "ExperimentResult",
    "full_scale",
    "FhrrCell",
    "FhrrPointConfig",
    "FhrrPointResult",
    "run_fhrr_point",
    "Fig1cConfig",
    "Fig1cResult",
    "run_fig1c",
    "Table2Config",
    "Table2Result",
    "run_table2",
    "Table3Config",
    "Table3Result",
    "run_table3",
    "Fig5Config",
    "Fig5Result",
    "run_fig5",
    "Fig6aConfig",
    "Fig6aResult",
    "Fig6bConfig",
    "Fig6bResult",
    "run_fig6a",
    "run_fig6b",
    "Fig7Config",
    "Fig7Result",
    "run_fig7",
]
