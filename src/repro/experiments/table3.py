"""Table III: hardware resource and performance comparison.

Thin wrapper over :mod:`repro.hwmodel.report` plus the PCM comparison;
optionally re-measures the accuracy column live instead of using the
snapshot in :mod:`repro.hwmodel.calibration`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.engine import H3DFact, baseline_network
from repro.hwmodel.pcm_baseline import PCMComparison, compare_with_pcm
from repro.hwmodel.report import Table3Report, build_table3
from repro.resonator.batch import factorize_batch
from repro.utils.rng import as_rng


@dataclass
class Table3Config:
    #: Re-measure the accuracy column (slower) instead of the snapshot.
    measure_accuracy: bool = False
    #: Operating point for the accuracy measurement.
    dim: int = 1024
    num_factors: int = 4
    codebook_size: int = 32
    trials: int = 20
    max_iterations: int = 4000
    seed: int = 0


@dataclass
class Table3Result:
    report: Table3Report
    pcm: PCMComparison
    measured_accuracy: Optional[Dict[str, float]]
    elapsed_seconds: float

    def render(self) -> str:
        parts = [self.report.render(), "", self.pcm.render()]
        if self.measured_accuracy is not None:
            parts.append("")
            parts.append(
                "measured accuracy at the operating point: "
                + ", ".join(
                    f"{k}={100 * v:.1f}%" for k, v in self.measured_accuracy.items()
                )
            )
        return "\n".join(parts)


def measure_design_accuracy(config: Table3Config) -> Dict[str, float]:
    """Accuracy at the Table III operating point for the three designs.

    The SRAM-2D design runs the deterministic baseline (no stochasticity);
    both RRAM designs share the testchip noise statistics.
    """
    rng = as_rng(config.seed)
    deterministic = factorize_batch(
        lambda p: baseline_network(
            p.codebooks, max_iterations=config.max_iterations
        ),
        dim=config.dim,
        num_factors=config.num_factors,
        codebook_size=config.codebook_size,
        trials=config.trials,
        rng=rng,
    )
    engine = H3DFact(rng=rng)
    stochastic = factorize_batch(
        lambda p: engine.make_network(
            p.codebooks, max_iterations=config.max_iterations
        ),
        dim=config.dim,
        num_factors=config.num_factors,
        codebook_size=config.codebook_size,
        trials=config.trials,
        rng=rng,
        check_correct_every=2,
    )
    return {
        "sram-2d": deterministic.accuracy,
        "hybrid-2d": stochastic.accuracy,
        "h3d": stochastic.accuracy,
    }


def run_table3(config: Optional[Table3Config] = None) -> Table3Result:
    config = config or Table3Config()
    start = time.perf_counter()
    measured = measure_design_accuracy(config) if config.measure_accuracy else None
    report = build_table3(accuracy_overrides=measured)
    pcm = compare_with_pcm(report.metric("h3d"))
    return Table3Result(
        report=report,
        pcm=pcm,
        measured_accuracy=measured,
        elapsed_seconds=time.perf_counter() - start,
    )
