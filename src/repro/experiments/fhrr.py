"""FHRR companion point to Table II: phasor-resonator accuracy.

The paper's evaluation (and Table II) runs the bipolar MAP algebra end to
end.  This driver reports the same accuracy/iterations summary for the
complex FHRR algebra (unit-modulus phasor codebooks, FFT binding, the
phase-only resonator of Frady et al.) at matched geometry, side by side
with the bipolar deterministic baseline - the "holographic" half of
H3DFact's representational claim, and the algebra Langenegger et al.'s
in-memory factorizer machine targets.

Both columns are noise-free exact-MVM resonators (the rectified bipolar
baseline of Table II's left column; the exact phasor backend for FHRR),
so the comparison isolates the *algebra* - and every request carries its
own seed and routes through the factorization service, so each cell is
bit-identical across engines (``H3DFACT_ENGINE=sequential``) and batch
packings, exactly like the Table II columns.

Expect the FHRR column to roll off at smaller codebooks than bipolar:
the deterministic phasor resonator has finite operational capacity
(Frady et al. 2020) and the default grid deliberately crosses it, which
is the point of the comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.engine import H3DFact, baseline_network
from repro.experiments.runner import full_scale
from repro.resonator.batch import generate_problems
from repro.resonator.metrics import BatchStatistics, summarize
from repro.service.registry import CodebookRegistry
from repro.service.request import FactorizationRequest
from repro.service.scheduler import FactorizationService
from repro.utils.rng import as_rng, fresh_seed
from repro.vsa.algebra import ALGEBRAS


@dataclass
class FhrrPointConfig:
    dim: int = 1024
    num_factors: int = 3
    codebook_sizes: Tuple[int, ...] = (16, 32, 64)
    max_iterations: int = 200
    trials: int = 20
    target_accuracy: float = 0.99
    seed: int = 0
    #: Batch execution engine, as in Table II.
    engine: Optional[str] = None

    @classmethod
    def paper(cls) -> "FhrrPointConfig":
        """The Table II-matched grid (larger codebooks, more trials)."""
        return cls(codebook_sizes=(16, 32, 64, 128, 256), trials=25)

    @classmethod
    def from_environment(cls) -> "FhrrPointConfig":
        return cls.paper() if full_scale() else cls()


@dataclass
class FhrrCell:
    """One (algebra, M) accuracy point."""

    algebra: str
    codebook_size: int
    stats: BatchStatistics

    @property
    def accuracy_pct(self) -> float:
        return 100 * self.stats.accuracy

    @property
    def iterations_label(self) -> str:
        value = self.stats.iterations_to_target
        return "Fail" if value is None else f"{value:.0f}"


@dataclass
class FhrrPointResult:
    cells: List[FhrrCell]
    config: FhrrPointConfig
    elapsed_seconds: float

    def cell(self, algebra: str, size: int) -> FhrrCell:
        for cell in self.cells:
            if cell.algebra == algebra and cell.codebook_size == size:
                return cell
        raise KeyError((algebra, size))

    def render(self) -> str:
        f = self.config.num_factors
        lines = [
            f"FHRR companion point (D={self.config.dim}, F={f}) - "
            "accuracy (%) / iterations to 99 %",
            f"{'M':>5} | {'bipolar acc/it':>16} | {'fhrr acc/it':>16}",
        ]
        for size in self.config.codebook_sizes:
            parts = [f"{size:>5}"]
            for algebra in ALGEBRAS:
                cell = self.cell(algebra, size)
                parts.append(
                    f"{cell.accuracy_pct:6.1f}/{cell.iterations_label:>6}"
                )
            lines.append(" | ".join(parts))
        return "\n".join(lines)


def run_fhrr_point(config: Optional[FhrrPointConfig] = None) -> FhrrPointResult:
    config = config or FhrrPointConfig()
    start = time.perf_counter()
    rng = as_rng(config.seed)
    cells: List[FhrrCell] = []
    service = FactorizationService(
        registry=CodebookRegistry(capacity=max(2 * config.trials, 8))
    )
    with service:
        for algebra in ALGEBRAS:
            if algebra == "fhrr":
                # The product knob end to end: the engine resolves to the
                # exact phasor backend + phase activation.
                engine = H3DFact(rng=rng, algebra=algebra)

                def factory(p, _engine=engine):
                    return _engine.make_network(
                        p.codebooks, max_iterations=config.max_iterations
                    )

            else:
                # The deterministic rectified baseline (Table II's left
                # column): exact MVMs on both sides, so the two columns
                # compare algebras at matched noise-free fidelity.  A
                # stochastic bipolar engine would also consume unseeded
                # noise from the shared stream and break cross-engine
                # bit-identity for every later cell.
                def factory(p):
                    return baseline_network(
                        p.codebooks,
                        max_iterations=config.max_iterations,
                        rng=rng,
                    )

            for size in config.codebook_sizes:
                problems = generate_problems(
                    dim=config.dim,
                    num_factors=config.num_factors,
                    codebook_size=size,
                    trials=config.trials,
                    rng=rng,
                    algebra=algebra,
                )
                seeds = [fresh_seed(rng) for _ in problems]
                responses = service.run_coalesced(
                    [
                        FactorizationRequest.from_problem(
                            p, seed=s, max_iterations=config.max_iterations
                        )
                        for p, s in zip(problems, seeds)
                    ],
                    network_factory=factory,
                    engine=config.engine,
                )
                cells.append(
                    FhrrCell(
                        algebra,
                        size,
                        summarize(
                            [r.result for r in responses],
                            target_accuracy=config.target_accuracy,
                        ),
                    )
                )
    return FhrrPointResult(
        cells=cells,
        config=config,
        elapsed_seconds=time.perf_counter() - start,
    )
