"""The H3DFact engine: end-to-end factorization + hardware reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.arch.dataflow import DataflowSimulator, StepLatency
from repro.arch.designs import Design, h3d_design
from repro.cim.adc import SARADC
from repro.cim.rram.batched import TiledArrayGeometry
from repro.cim.rram.device import RRAMDeviceModel
from repro.cim.rram.noise import NoiseParameters
from repro.core.cim_backend import CIMBackend
from repro.core.crossbar_backend import CIMBatchedBackend
from repro.core.sram_backend import HybridTierBackend, SRAMBatchedBackend
from repro.errors import ConfigurationError
from repro.hwmodel import calibration as cal
from repro.hwmodel.metrics import DesignMetrics, evaluate_design
from repro.resonator.activations import PhaseActivation, SignActivation
from repro.resonator.backends import PhasorBackend
from repro.resonator.batched import BatchedResonatorNetwork, CodebookSetBatch
from repro.resonator.replay import run_problems_grouped
from repro.resonator.network import (
    FactorizationProblem,
    FactorizationResult,
    ResonatorNetwork,
)
from repro.resonator.stochastic import RectifiedBackend, ThresholdPolicy
from repro.thermal.analysis import ThermalReport, analyze_h3d
from repro.utils.rng import RandomState, as_rng
from repro.vsa.algebra import ALGEBRAS
from repro.vsa.codebook import CodebookSet


@dataclass
class EngineReport:
    """Hardware-level summary of one factorization run on the engine."""

    result: FactorizationResult
    #: Clock cycles consumed (iterations x sweep cycles from the dataflow).
    cycles: int
    #: Wall-clock on the modeled hardware (cycles / clock).
    hardware_seconds: float
    #: Energy on the modeled hardware.
    hardware_joules: float

    @property
    def hardware_microseconds(self) -> float:
        """Modeled wall-clock in microseconds."""
        return 1e6 * self.hardware_seconds


@dataclass
class BatchEngineReport:
    """Hardware-level summary of a pipelined batch (Sec. IV-A batching)."""

    results: List["FactorizationResult"]
    cycles: int
    hardware_seconds: float
    hardware_joules: float
    #: Amortized cycles per batch element (shrinks with batch size).
    cycles_per_element: float

    @property
    def batch(self) -> int:
        """Number of factorizations in the batch."""
        return len(self.results)

    @property
    def accuracy(self) -> float:
        """Fraction correct among results with a known ground truth."""
        known = [r.correct for r in self.results if r.correct is not None]
        if not known:
            return float("nan")
        return sum(known) / len(known)


def baseline_network(
    codebooks: CodebookSet,
    *,
    max_iterations: int = 1000,
    rng: RandomState = None,
) -> ResonatorNetwork:
    """The paper's baseline: deterministic rectified resonator network [9].

    Shares the rectifying current-sensing front end with H3DFact but has
    no noise, no threshold and full-precision similarities; limit-cycle
    detection is enabled (a deterministic trajectory that repeats can
    never recover).

    FHRR codebook sets get the phasor equivalents instead: the complex
    exact-MVM backend and phase-only activation (Frady et al.'s original
    complex resonator), which is the deterministic baseline for that
    algebra.
    """
    if codebooks.algebra == "fhrr":
        return ResonatorNetwork(
            codebooks,
            backend=PhasorBackend(),
            activation=PhaseActivation(),
            max_iterations=max_iterations,
            rng=rng,
        )
    return ResonatorNetwork(
        codebooks,
        backend=RectifiedBackend(),
        activation=SignActivation("positive"),
        max_iterations=max_iterations,
        rng=rng,
    )


#: Recognised MVM fidelity levels for the H3D similarity/projection path.
FIDELITIES = ("statistical", "crossbar", "sram", "hybrid")


class H3DFact:
    """Holographic factorization on the modeled H3D hardware.

    Parameters
    ----------
    design:
        Hardware configuration (default: the paper's 3-tier design).
    noise:
        RRAM read-out statistics (default: the testchip calibration, the
        configuration every headline result uses).
    adc_bits:
        Similarity converter resolution (4 = design point, 8 = Fig. 6a
        comparison).
    threshold_policy:
        VTGT calibration rule.
    fidelity:
        MVM model: ``"statistical"`` (aggregate read-out statistics, one
        Gaussian per output - :class:`~repro.core.cim_backend.CIMBackend`),
        ``"crossbar"`` (full tiled crossbar simulation with programmed
        conductances and per-tile converters -
        :class:`~repro.core.crossbar_backend.CIMBatchedBackend`),
        ``"sram"`` (the all-digital tier-1 baseline: packed XNOR +
        popcount similarity and integer adder-tree projection, exact and
        deterministic -
        :class:`~repro.core.sram_backend.SRAMBatchedBackend`), or
        ``"hybrid"`` (heterogeneous stack: SRAM tier-1 similarity, RRAM
        crossbar tier-2 projection - the GEM3D-style mixed configuration,
        :class:`~repro.core.sram_backend.HybridTierBackend`).  The
        headline experiments run ``"crossbar"``; see the README's
        "Fidelity spectrum".
    device:
        RRAM technology corner for the crossbar fidelity (ignored by the
        statistical model, which consumes only the aggregate preset).
    array_geometry:
        Physical subarray tiling for the crossbar fidelity.
    max_iterations:
        Default sweep budget per factorization.
    algebra:
        Holographic algebra: ``"bipolar"`` (default - the paper's MAP/BSC
        representation, runs on every fidelity) or ``"fhrr"`` (complex
        phasor vectors with FFT binding; runs the exact phasor MVM path,
        so it is incompatible with ``fidelity="crossbar"``).
    """

    def __init__(
        self,
        *,
        design: Optional[Design] = None,
        noise: Optional[NoiseParameters] = None,
        adc_bits: int = 4,
        threshold_policy: Optional[ThresholdPolicy] = None,
        fidelity: str = "statistical",
        device: Optional[RRAMDeviceModel] = None,
        array_geometry: Optional[TiledArrayGeometry] = None,
        max_iterations: int = 1000,
        rng: RandomState = None,
        algebra: str = "bipolar",
    ) -> None:
        if max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {max_iterations}"
            )
        if fidelity not in FIDELITIES:
            raise ConfigurationError(
                f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
            )
        if algebra not in ALGEBRAS:
            raise ConfigurationError(
                f"algebra must be one of {ALGEBRAS}, got {algebra!r}"
            )
        if algebra == "fhrr" and fidelity in ("crossbar", "sram", "hybrid"):
            raise ConfigurationError(
                f"algebra='fhrr' requires the exact phasor MVM path; the "
                f"{fidelity!r} fidelity models bipolar hardware (conductance "
                "arrays / 1-bit SRAM planes) and cannot carry complex state "
                "(use fidelity='statistical' with algebra='bipolar', or "
                "drop the hardware fidelity)"
            )
        self.algebra = algebra
        self.design = design if design is not None else h3d_design(adc_bits=adc_bits)
        self.noise = noise if noise is not None else NoiseParameters.testchip()
        self.adc_bits = adc_bits
        self.threshold_policy = (
            threshold_policy if threshold_policy is not None else ThresholdPolicy()
        )
        self.fidelity = fidelity
        self.device = device if device is not None else RRAMDeviceModel()
        self.array_geometry = (
            array_geometry if array_geometry is not None else TiledArrayGeometry()
        )
        self.max_iterations = max_iterations
        self._rng = as_rng(rng)
        self._metrics: Optional[DesignMetrics] = None

    @classmethod
    def default(cls, *, rng: RandomState = None) -> "H3DFact":
        """The paper's design point: testchip noise + 4-bit ADC."""
        return cls(rng=rng)

    @classmethod
    def crossbar(cls, *, rng: RandomState = None, **kwargs) -> "H3DFact":
        """Full-fidelity design point: tiled crossbar simulation."""
        return cls(fidelity="crossbar", rng=rng, **kwargs)

    @classmethod
    def sram(cls, *, rng: RandomState = None, **kwargs) -> "H3DFact":
        """All-digital tier-1 baseline: packed XNOR + popcount MVMs."""
        return cls(fidelity="sram", rng=rng, **kwargs)

    @classmethod
    def hybrid(cls, *, rng: RandomState = None, **kwargs) -> "H3DFact":
        """GEM3D-style mixed stack: SRAM similarity, crossbar projection."""
        return cls(fidelity="hybrid", rng=rng, **kwargs)

    # -- factorization -------------------------------------------------------

    def make_backend(self, *, rng: RandomState = None):
        """Fresh MVM backend at the configured fidelity.

        The statistical backend owns one shared noise stream; the crossbar
        backend additionally supports per-trial streams bound from request
        seeds (the basis of its cross-engine bit-identity).  The FHRR
        algebra always runs the exact phasor backend: the CIM models
        quantize through bipolar conductances and would destroy complex
        state.
        """
        generator = rng if rng is not None else self._rng
        if self.algebra == "fhrr":
            return PhasorBackend()
        if self.fidelity == "crossbar":
            return CIMBatchedBackend(
                device=self.device,
                noise=self.noise,
                adc=SARADC(bits=self.adc_bits),
                policy=self.threshold_policy,
                geometry=self.array_geometry,
                rng=generator,
            )
        if self.fidelity == "sram":
            return SRAMBatchedBackend()
        if self.fidelity == "hybrid":
            # Heterogeneous stack: exact digital tier-1 similarity (no
            # noise to bind), tier-2 crossbar projection with the usual
            # per-trial noise streams.
            return HybridTierBackend(
                similarity_backend=SRAMBatchedBackend(),
                projection_backend=CIMBatchedBackend(
                    device=self.device,
                    noise=self.noise,
                    adc=SARADC(bits=self.adc_bits),
                    policy=self.threshold_policy,
                    geometry=self.array_geometry,
                    rng=generator,
                ),
            )
        return CIMBackend(
            noise=self.noise,
            adc=SARADC(bits=self.adc_bits),
            policy=self.threshold_policy,
            rng=generator,
        )

    def make_network(
        self,
        codebooks: CodebookSet,
        *,
        max_iterations: Optional[int] = None,
        rng: RandomState = None,
    ) -> ResonatorNetwork:
        """Resonator network wired to this engine's CIM backend."""
        self._check_codebook_algebra(codebooks.algebra)
        generator = as_rng(rng) if rng is not None else self._rng
        return ResonatorNetwork(
            codebooks,
            backend=self.make_backend(rng=generator),
            activation=self._make_activation(generator),
            max_iterations=max_iterations or self.max_iterations,
            rng=generator,
        )

    def _make_activation(self, generator):
        """Per-algebra nonlinearity: stochastic sign vs. phase projection.

        The exact digital tier ("sram") gets the deterministic tie-break:
        its integer projections *can* land on true zeros, and a digital
        comparator resolves them by convention, not by noise - which also
        keeps rng consumption independent of batch packing (the analog
        fidelities' projections are continuous, so their random tie-break
        fires with probability zero).
        """
        if self.algebra == "fhrr":
            return PhaseActivation()
        if self.fidelity == "sram":
            return SignActivation("positive")
        return SignActivation("random", rng=generator)

    def _check_codebook_algebra(self, algebra: str) -> None:
        if algebra != self.algebra:
            raise ConfigurationError(
                f"engine configured for algebra={self.algebra!r} but the "
                f"codebooks are {algebra!r}; build the engine with "
                f"H3DFact(algebra={algebra!r})"
            )

    def make_batched_network(
        self,
        codebooks: CodebookSetBatch,
        *,
        max_iterations: Optional[int] = None,
        rng: RandomState = None,
    ) -> BatchedResonatorNetwork:
        """Batched resonator wired to this engine's CIM backend.

        ``codebooks`` is one shared :class:`~repro.vsa.codebook.CodebookSet`
        (arrays programmed once, many queries - the Sec. IV-A batch
        situation) or one set per trial of identical geometry.  All trials
        advance through stacked MVMs with per-trial convergence masking.
        """
        first = codebooks if isinstance(codebooks, CodebookSet) else codebooks[0]
        self._check_codebook_algebra(first.algebra)
        generator = as_rng(rng) if rng is not None else self._rng
        return BatchedResonatorNetwork(
            codebooks,
            backend=self.make_backend(rng=generator),
            activation=self._make_activation(generator),
            max_iterations=max_iterations or self.max_iterations,
            rng=generator,
        )

    def factorize(
        self,
        problem: Union[FactorizationProblem, np.ndarray],
        *,
        codebooks: Optional[CodebookSet] = None,
        max_iterations: Optional[int] = None,
        stable_decode_window: Optional[int] = None,
    ) -> FactorizationResult:
        """Factorize a problem (or a raw product vector + codebooks).

        ``stable_decode_window`` enables the early exit for noisy products
        (see :meth:`ResonatorNetwork.factorize`); exact products terminate
        on the solved check regardless.
        """
        if isinstance(problem, FactorizationProblem):
            network = self.make_network(
                problem.codebooks, max_iterations=max_iterations
            )
            return network.factorize(
                problem.product,
                true_indices=problem.true_indices,
                stable_decode_window=stable_decode_window,
            )
        if codebooks is None:
            raise ConfigurationError(
                "factorize() with a raw product vector requires codebooks"
            )
        network = self.make_network(codebooks, max_iterations=max_iterations)
        return network.factorize(
            np.asarray(problem), stable_decode_window=stable_decode_window
        )

    def factorize_with_report(
        self,
        problem: FactorizationProblem,
        *,
        max_iterations: Optional[int] = None,
    ) -> EngineReport:
        """Factorize and attach modeled hardware time/energy costs."""
        result = self.factorize(problem, max_iterations=max_iterations)
        metrics = self.ppa()
        # One sweep = 2 MVMs per factor (similarity + projection).
        latency = StepLatency.from_geometry(
            rows=self.design.array_rows,
            parallel_rows=cal.ROWS_PER_PHASE,
            adc_cycles=cal.ADC_SLOT_CYCLES,
            pipeline_overhead=cal.PIPELINE_OVERHEAD_CYCLES,
            input_bits=self.adc_bits,
        )
        simulator = DataflowSimulator(
            self.design.stack, self.design.mapping, latency=latency
        )
        timing = simulator.simulate_sweep(
            batch=1, factors=problem.codebooks.num_factors
        )
        cycles = timing.total_cycles * result.iterations
        seconds = cycles / metrics.timing.frequency_hz
        joules = metrics.energy.total_power_w * seconds
        return EngineReport(
            result=result,
            cycles=cycles,
            hardware_seconds=seconds,
            hardware_joules=joules,
        )

    def factorize_batch(
        self,
        problems: Sequence[FactorizationProblem],
        *,
        max_iterations: Optional[int] = None,
    ) -> "BatchEngineReport":
        """Factorize a batch with SRAM-buffered pipelining cost accounting.

        Sec. IV-A's batch operation: tier-1's SRAM buffers let the stack
        run a whole batch's similarity MVMs before switching to the
        projection tier, so the per-element hardware cost shrinks with the
        batch size.  Algorithmically the trials stay independent; the
        report combines their results with the pipelined hardware cost.

        The batch routes through the grouped planner
        (:func:`~repro.resonator.replay.run_problems_grouped`): same-geometry
        problems execute through
        :func:`~repro.resonator.batch.factorize_problems` - vectorized by
        default (stacked MVMs, per-trial convergence masking, shared-mode
        GEMM when the problems share one codebook set) - and a
        heterogeneous batch is partitioned into same-geometry groups, each
        of which still runs stacked instead of falling back to the
        per-trial loop.  ``H3DFACT_ENGINE=sequential`` restores the
        historical loop over the whole batch in submission order.
        """
        if not problems:
            raise ConfigurationError("factorize_batch() needs at least one problem")
        factors = problems[0].codebooks.num_factors
        for problem in problems:
            if problem.codebooks.num_factors != factors:
                raise ConfigurationError(
                    "all problems in a batch must share the factor count"
                )
        results = run_problems_grouped(
            lambda p: self.make_network(p.codebooks, max_iterations=max_iterations),
            problems,
        )
        metrics = self.ppa()
        latency = StepLatency.from_geometry(
            rows=self.design.array_rows,
            parallel_rows=cal.ROWS_PER_PHASE,
            adc_cycles=cal.ADC_SLOT_CYCLES,
            pipeline_overhead=cal.PIPELINE_OVERHEAD_CYCLES,
            input_bits=self.adc_bits,
        )
        simulator = DataflowSimulator(
            self.design.stack,
            self.design.mapping,
            latency=latency,
            buffer_capacity=max(len(problems), self.design.batch_size),
        )
        sweep = simulator.simulate_sweep(batch=len(problems), factors=factors)
        # The batch advances in lockstep until the longest trial finishes.
        max_sweeps = max(result.iterations for result in results)
        cycles = sweep.total_cycles * max_sweeps
        seconds = cycles / metrics.timing.frequency_hz
        return BatchEngineReport(
            results=results,
            cycles=cycles,
            hardware_seconds=seconds,
            hardware_joules=metrics.energy.total_power_w * seconds,
            cycles_per_element=sweep.cycles_per_element * max_sweeps,
        )

    # -- hardware reporting -------------------------------------------------------

    def ppa(self) -> DesignMetrics:
        """Area / timing / energy metrics of the configured design (cached)."""
        if self._metrics is None:
            self._metrics = evaluate_design(self.design)
        return self._metrics

    def thermal(self, **kwargs) -> ThermalReport:
        """Fig. 5 thermal analysis of the configured design."""
        return analyze_h3d(self.ppa().energy, **kwargs)

    def __repr__(self) -> str:
        return (
            f"H3DFact(design={self.design.name!r}, noise={self.noise.name!r}, "
            f"adc_bits={self.adc_bits}, fidelity={self.fidelity!r}, "
            f"algebra={self.algebra!r})"
        )
