"""The H3DFact engine: factorization on the modeled hardware.

:class:`H3DFact` ties together the resonator algorithm, the CIM read-out
statistics, the architecture/PPA models and the thermal analysis behind one
object - the library's main entry point:

>>> from repro.core import H3DFact
>>> from repro import FactorizationProblem
>>> engine = H3DFact.default(rng=0)
>>> problem = FactorizationProblem.random(1024, 4, 16, rng=1)
>>> result = engine.factorize(problem)
>>> result.correct
True
"""

from repro.core.cim_backend import CIMBackend
from repro.core.crossbar_backend import (
    CIMBatchedBackend,
    CONDUCTANCE_CACHE,
    ConductanceCache,
)
from repro.core.engine import (
    FIDELITIES,
    BatchEngineReport,
    EngineReport,
    H3DFact,
    baseline_network,
)
from repro.core.sram_backend import (
    HybridTierBackend,
    SRAMBatchedBackend,
    SRAMPerCellBackend,
)

__all__ = [
    "CIMBackend",
    "CIMBatchedBackend",
    "CONDUCTANCE_CACHE",
    "ConductanceCache",
    "FIDELITIES",
    "H3DFact",
    "HybridTierBackend",
    "SRAMBatchedBackend",
    "SRAMPerCellBackend",
    "EngineReport",
    "BatchEngineReport",
    "baseline_network",
]
