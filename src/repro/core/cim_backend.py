"""Statistical CIM backend: the RRAM read-out chain at algorithm speed.

Device-granular crossbar simulation (:class:`repro.cim.CrossbarArray`)
costs one Gaussian per cell per read - prohibitive inside capacity sweeps
with millions of MVMs.  This backend reproduces the same *read-out
statistics* at one Gaussian per output:

1. additive Gaussian noise with sigma from a
   :class:`~repro.cim.rram.noise.NoiseParameters` preset (validated against
   the crossbar's closed-form column error in the integration tests);
2. a static per-column offset, frozen per trial (``begin_trial`` resamples
   it - physically, re-programming the arrays);
3. rectification (single-ended current sensing);
4. the adaptive VTGT threshold
   (:class:`~repro.resonator.stochastic.ThresholdPolicy`);
5. the per-column SAR ADC (:class:`~repro.cim.adc.SARADC`).

The projection MVM receives the reconstructed ADC codes (the 4-bit words
that cross the TSVs in step III of Fig. 3) and adds tier-2 read noise.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cim.adc import SARADC
from repro.cim.rram.noise import NoiseParameters
from repro.resonator.backends import (
    CodebookBatch,
    ExactBackend,
    MVMBackend,
    batch_geometry,
    codebooks_per_trial,
)
from repro.resonator.stochastic import ThresholdPolicy
from repro.utils.rng import RandomState, as_rng
from repro.vsa.codebook import Codebook


class CIMBackend(MVMBackend):
    """H3DFact similarity/projection MVMs with hardware statistics.

    Parameters
    ----------
    noise:
        Aggregate read-out noise preset (default: the testchip calibration).
    adc:
        Per-column converter (default 4-bit SAR, the design point).
    policy:
        VTGT calibration; ``None`` disables thresholding.
    adc_full_scale_zscore:
        Converter range in crosstalk sigmas (see
        :class:`~repro.resonator.stochastic.StochasticThresholdBackend`).
    projection_noise:
        Whether the projection tier adds read noise too (it is RRAM as
        well); the sign activation absorbs almost all of it.
    """

    deterministic = False

    def __init__(
        self,
        *,
        noise: Optional[NoiseParameters] = None,
        adc: Optional[SARADC] = None,
        policy: Optional[ThresholdPolicy] = ThresholdPolicy(),
        adc_full_scale_zscore: float = 8.0,
        projection_noise: bool = True,
        rng: RandomState = None,
    ) -> None:
        self.noise = noise if noise is not None else NoiseParameters.testchip()
        self.adc = adc if adc is not None else SARADC(bits=4)
        self.policy = policy
        self.adc_full_scale_zscore = adc_full_scale_zscore
        self.projection_noise = projection_noise
        self._rng = as_rng(rng)
        self._exact = ExactBackend()
        self._offsets: Dict[int, np.ndarray] = {}
        self.deterministic = not self.noise.stochastic and self.adc.deterministic

    # -- trial lifecycle ----------------------------------------------------

    def begin_trial(self) -> None:
        """Resample static column offsets (arrays re-programmed)."""
        self._offsets.clear()

    def _offset_for(self, codebook: Codebook) -> Optional[np.ndarray]:
        if self.noise.offset_z == 0:
            return None
        key = id(codebook)
        if key not in self._offsets:
            sigma = self.noise.offset_sigma(codebook.dim)
            self._offsets[key] = self._rng.normal(
                0.0, sigma, size=codebook.size
            ).astype(np.float32)
        return self._offsets[key]

    # -- MVMs ------------------------------------------------------------------

    # The batch methods below are the single authoritative implementation
    # of the read-out chain; the scalar methods run a one-row batch (the
    # seeded noise stream is unchanged: Generator.normal draws identical
    # values for size=(M,) and size=(1, M)).

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        """One-row batch of :meth:`similarity_batch` (same noise stream)."""
        return self.similarity_batch(codebook, np.asarray(query)[None])[0]

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        """One-row batch of :meth:`project_batch` (same noise stream)."""
        return self.project_batch(codebook, np.asarray(weights)[None])[0]

    # -- batched MVMs (Sec. IV-A: SRAM-buffered batch operation) ------------

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        """Vectorized read-out chain over a ``(trials, dim)`` query matrix.

        Per-trial codebooks keep independent frozen column offsets (each
        trial's arrays carry their own programming error); a shared codebook
        models one programmed array streaming the whole batch, so its offset
        draw is common to every row.
        """
        values = self._exact.similarity_batch(codebooks, queries)
        dim, size = batch_geometry(codebooks)
        sqrt_dim = np.sqrt(dim)
        if self.noise.sigma_z > 0:
            values = values + self._rng.normal(
                0.0, self.noise.similarity_sigma(dim), size=values.shape
            ).astype(np.float32)
        if self.noise.offset_z != 0:
            books = codebooks_per_trial(codebooks, len(values))
            offsets = np.stack([self._offset_for(book) for book in books])
            values = values + offsets
        values = np.maximum(values, 0.0)  # single-ended sensing
        if self.policy is not None:
            threshold = self.policy.threshold(dim, size, self.noise.sigma_z)
            values = np.where(values >= threshold, values, 0.0)
        full_scale = self.adc_full_scale_zscore * sqrt_dim
        return self.adc.convert(values, full_scale=full_scale)

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        """Exact projection plus (optionally) aggregate projection noise."""
        values = self._exact.project_batch(codebooks, weights)
        if self.projection_noise and self.noise.sigma_z > 0:
            _, size = batch_geometry(codebooks)
            scale = self.noise.sigma_z * np.sqrt(size)
            values = values + self._rng.normal(
                0.0, scale, size=values.shape
            ).astype(np.float32)
        return values

    def __repr__(self) -> str:
        return (
            f"CIMBackend(noise={self.noise.name!r}, adc={self.adc!r}, "
            f"policy={self.policy!r})"
        )
