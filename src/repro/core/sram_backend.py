"""Tier-1 SRAM/XNOR MVM backends and the heterogeneous hybrid composition.

:class:`SRAMBatchedBackend` runs the resonator's similarity MVM the way
the paper's digital tier does (Sec. III-A/III-B): queries and codebooks
bit-packed 64 lanes per word, XNOR via XOR on the bit encoding, and the
"-1's counter" identity ``dot = n - 2k`` evaluated by a popcount per
codebook column (:mod:`repro.cim.sram.batched`).  The projection MVM is
the digital adder tree on the same stored bit-planes: an exact integer
matmul (executed as a float64 GEMM, exact for integer sums below 2**53,
immune to BLAS blocking order).  Everything is deterministic and integer
-valued, so seeded batched runs are bit-identical to the per-trial
sequential loop (``H3DFACT_ENGINE=sequential``) *and* to the per-cell
reference units - :class:`SRAMPerCellBackend` wraps those directly and
the equivalence is pinned by ``tests/test_sram_backend.py``.

:class:`HybridTierBackend` composes two backends into one heterogeneous
stack - similarity on one tier, projection on another - so a single
factorization run can span tiers like the paper's 3D integration.  The
engine's ``fidelity="hybrid"`` point pairs the digital SRAM similarity
tier with the full RRAM crossbar projection tier, the GEM3D-style
SRAM-(e)DRAM-flavoured mixed stack used as a Table II / ablation
companion configuration (PAPERS.md: GEM3D-CIM).

Op accounting
-------------
The SRAM backends count the work the timing/energy models charge for:
``xnor_words`` / ``popcount_words`` (packed words streamed through the
XOR + popcount pipeline), ``dot_products`` (counter-identity columns) and
``projection_macs`` (adder-tree multiply-accumulates).  The counts are
exact functions of the MVM shapes, identical however the batch is packed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cim.sram.batched import (
    PACKED_CODEBOOK_CACHE,
    PackedCodebook,
    PackedCodebookCache,
    pack_bipolar,
    xnor_popcount_mvm,
)
from repro.cim.sram.counter import NegOnesCounter
from repro.resonator.backends import (
    CodebookBatch,
    MVMBackend,
    batch_geometry,
    codebooks_per_trial,
)
from repro.vsa.codebook import Codebook


class SRAMBatchedBackend(MVMBackend):
    """Word-parallel digital tier-1 MVMs (module docstring).

    Parameters
    ----------
    cache:
        Packed-codebook store; defaults to the process-wide
        :data:`~repro.cim.sram.batched.PACKED_CODEBOOK_CACHE`.
    """

    deterministic = True

    def __init__(self, *, cache: Optional[PackedCodebookCache] = None) -> None:
        self.cache = cache if cache is not None else PACKED_CODEBOOK_CACHE
        # Id-keyed fast path in front of the content-keyed store: the
        # resonator hits one codebook thousands of times per run, and
        # re-fingerprinting the full matrix per MVM would cost more than
        # the MVM itself.  Entries pin their codebook so the id key
        # cannot be recycled.
        self._packed: Dict[int, Tuple[Codebook, PackedCodebook]] = {}
        # Float64 projection operands, id-keyed and pinned like the exact
        # backend's matrix cache (the resonator reuses one codebook for
        # thousands of MVMs).
        self._proj: Dict[int, Tuple[Codebook, np.ndarray]] = {}
        self._proj_stacks: Dict[
            Tuple[int, ...], Tuple[List[Codebook], np.ndarray]
        ] = {}
        #: Packed words streamed through the XNOR (XOR) gates.
        self.xnor_words = 0
        #: Packed words popcounted by the -1's counters.
        self.popcount_words = 0
        #: Counter-identity dot products (one per codebook column).
        self.dot_products = 0
        #: Integer multiply-accumulates of the projection adder tree.
        self.projection_macs = 0

    # -- packed / projection operands --------------------------------------

    def packed_for(self, codebook: Codebook) -> PackedCodebook:
        """This backend's frozen tier-1 bit-planes of ``codebook``."""
        key = id(codebook)
        entry = self._packed.get(key)
        if entry is None or entry[0] is not codebook:
            entry = (codebook, self.cache.get(codebook))
            if len(self._packed) > 16:
                self._packed.clear()
            self._packed[key] = entry
        return entry[1]

    def _proj_matrix(self, codebook: Codebook) -> np.ndarray:
        key = id(codebook)
        entry = self._proj.get(key)
        # The entry pins the codebook so the id key cannot be recycled.
        if entry is None or entry[0] is not codebook:
            entry = (codebook, codebook.matrix.astype(np.float64))
            if len(self._proj) > 16:
                self._proj.clear()
            self._proj[key] = entry
        return entry[1]

    def _proj_stack(self, books: Sequence[Codebook]) -> np.ndarray:
        key = tuple(id(book) for book in books)
        entry = self._proj_stacks.get(key)
        if entry is None:
            stack = np.stack([self._proj_matrix(book) for book in books])
            if len(self._proj_stacks) > 4:
                self._proj_stacks.clear()
            self._proj_stacks[key] = (list(books), stack)
            return stack
        return entry[1]

    # -- MVMs --------------------------------------------------------------
    # The batch methods are the single authoritative implementation; the
    # scalar methods run a one-row batch, so sequential and batched
    # engines execute the very same kernels (bit-identity for free).

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        """One-row batch of :meth:`similarity_batch` (same kernel)."""
        return self.similarity_batch(codebook, np.asarray(query)[None])[0]

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        """One-row batch of :meth:`project_batch` (same kernel)."""
        return self.project_batch(codebook, np.asarray(weights)[None])[0]

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        """Packed XNOR + popcount similarities, int64 ``(trials, size)``."""
        queries = np.asarray(queries)
        trials = len(queries)
        dim, size = batch_geometry(codebooks)
        packed_queries = pack_bipolar(queries)
        if isinstance(codebooks, Codebook):
            packed = self.packed_for(codebooks)
            sims = xnor_popcount_mvm(packed.items, packed_queries, dim)
        else:
            books = codebooks_per_trial(codebooks, trials)
            sims = np.empty((trials, size), dtype=np.int64)
            for t, book in enumerate(books):
                sims[t] = xnor_popcount_mvm(
                    self.packed_for(book).items,
                    packed_queries[t : t + 1],
                    dim,
                )[0]
        words = packed_queries.shape[-1]
        self.xnor_words += trials * size * words
        self.popcount_words += trials * size * words
        self.dot_products += trials * size
        return sims

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        """Adder-tree projection ``X a``: exact integers, int64 output."""
        weights = np.asarray(weights, dtype=np.float64)
        trials = len(weights)
        dim, size = batch_geometry(codebooks)
        if isinstance(codebooks, Codebook):
            values = weights @ self._proj_matrix(codebooks).T
        else:
            books = codebooks_per_trial(codebooks, trials)
            stack = self._proj_stack(books)
            values = np.matmul(stack, weights[:, :, None])[:, :, 0]
        self.projection_macs += trials * dim * size
        return values.astype(np.int64)

    def __repr__(self) -> str:
        return f"SRAMBatchedBackend(cache={self.cache!r})"


class SRAMPerCellBackend(MVMBackend):
    """Reference tier-1 backend built from the per-cell units.

    Similarity routes through :class:`~repro.cim.sram.counter.NegOnesCounter`
    (one counter column at a time, operands validated as bipolar) and the
    projection through an explicit int64 adder tree.  Batch execution
    inherits the base class's per-trial loop.  This is the semantic ground
    truth the vectorized backend must match bit for bit - slow, simple,
    and only used by tests and the equivalence suite.
    """

    deterministic = True

    def __init__(self) -> None:
        self._counters: Dict[int, NegOnesCounter] = {}

    def _counter(self, width: int) -> NegOnesCounter:
        counter = self._counters.get(width)
        if counter is None:
            counter = NegOnesCounter(width)
            self._counters[width] = counter
        return counter

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        """Counter-identity dots, one -1's counter column per item."""
        counter = self._counter(codebook.dim)
        return counter.similarity_vector(codebook.matrix, np.asarray(query))

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        """Int64 adder-tree projection ``X a`` over rounded weights."""
        weights = np.asarray(weights)
        matrix = codebook.matrix.astype(np.int64)
        return matrix @ np.rint(weights).astype(np.int64)

    def __repr__(self) -> str:
        return "SRAMPerCellBackend()"


class HybridTierBackend(MVMBackend):
    """Heterogeneous-tier composition: similarity and projection on
    different backends, one resonator run spanning the 3D stack.

    The trial-lifecycle hooks (``begin_trial`` / ``bind_trials`` /
    ``select_trials``) forward to both tiers so stochastic members keep
    their per-trial noise streams - the packing-independence contract of
    :class:`~repro.core.crossbar_backend.CIMBatchedBackend` survives the
    composition, and with it the cross-engine bit-identity of seeded runs.
    """

    def __init__(
        self,
        *,
        similarity_backend: MVMBackend,
        projection_backend: MVMBackend,
    ) -> None:
        self.similarity_backend = similarity_backend
        self.projection_backend = projection_backend
        self.deterministic = (
            similarity_backend.deterministic and projection_backend.deterministic
        )
        self.supports_complex = (
            similarity_backend.supports_complex
            and projection_backend.supports_complex
        )

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        """Similarity on the similarity tier."""
        return self.similarity_backend.similarity(codebook, query)

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        """Projection on the projection tier."""
        return self.projection_backend.project(codebook, weights)

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        """Batched similarity on the similarity tier."""
        return self.similarity_backend.similarity_batch(codebooks, queries)

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        """Batched projection on the projection tier."""
        return self.projection_backend.project_batch(codebooks, weights)

    def begin_trial(self) -> None:
        """Advance the per-trial state of both tiers."""
        self.similarity_backend.begin_trial()
        self.projection_backend.begin_trial()

    def bind_trials(self, seeds: Sequence[int]) -> None:
        """Bind per-trial seed streams on both tiers."""
        self.similarity_backend.bind_trials(seeds)
        self.projection_backend.bind_trials(seeds)

    def select_trials(self, rows: np.ndarray) -> None:
        """Narrow both tiers to the still-active trial rows."""
        self.similarity_backend.select_trials(rows)
        self.projection_backend.select_trials(rows)

    def similarity_flops(self, codebooks: CodebookBatch) -> int:
        """Flop count of one similarity MVM on the similarity tier."""
        return self.similarity_backend.similarity_flops(codebooks)

    def project_flops(self, codebooks: CodebookBatch) -> int:
        """Flop count of one projection MVM on the projection tier."""
        return self.projection_backend.project_flops(codebooks)

    def __repr__(self) -> str:
        return (
            f"HybridTierBackend(similarity={self.similarity_backend!r}, "
            f"projection={self.projection_backend!r})"
        )
