"""Full-fidelity CIM crossbar backend, vectorized over a trial batch.

:class:`CIMBatchedBackend` is the highest-fidelity MVM backend: where
:class:`repro.core.cim_backend.CIMBackend` injects *aggregate* read-out
statistics (one Gaussian per output, nominal arrays), this backend runs
the resonator's two MVMs on **simulated programmed crossbars** - per-cell
lognormal programming variability, stuck-at faults, write-verify
quantization, per-subarray (tiled) sensing with per-tile ADC conversion
and digital accumulation, DAC-quantized multi-bit projection inputs, and
per-read device noise - while still advancing a whole ``(trials, dim)``
batch through stacked matrix kernels (:mod:`repro.cim.rram.batched`).

Fidelity chain (similarity MVM, Fig. 3 step II):

1. tile the ``dim x size`` codebook onto ``rows x cols`` subarrays;
2. per row tile: exact integer crossbar partial sums on the programmed
   (not nominal) differential conductances;
3. per-read column noise - the device term aggregates the programmed
   cells' read noise exactly (column variance is precomputed at program
   time), plus a *peripheral residual* that tops total read-out noise up
   to the calibrated :class:`~repro.cim.rram.noise.NoiseParameters` preset
   (measured testchip spread = device statistics + sense-amp offsets / IR
   drop / PVT; the residual is the quadrature difference);
4. single-ended sensing rectifies each tile's partial sum;
5. each tile's SAR ADC converts its column block
   (full scale ``adc_full_scale_zscore * sqrt(rows)``, the per-subarray
   working range), and tier-1 accumulates the digital words;
6. the adaptive VTGT threshold zeroes sub-threshold accumulated
   similarities (:class:`~repro.resonator.stochastic.ThresholdPolicy`).

The projection MVM (step III) DAC-quantizes the similarity words onto the
chain's integer grid (lossless for chain-fed weights), runs them through
an independently-programmed tier-2 crossbar, and adds input-dependent
read noise; its output feeds the 1-bit sign activation directly
(differential sensing + comparator - no projection ADC).

Determinism contract
--------------------
* **Programming** is a pure function of codebook *content* (hash-seeded;
  :func:`~repro.cim.rram.batched.conductance_rng`), cached process-wide
  with byte-budget LRU eviction keyed the same way as the serving
  registry's content hashes, so repeated codebooks amortize programming
  and eviction never changes results.
* **Per-read noise** is drawn from *per-trial streams*: the replay layer
  binds one stream per request seed (:meth:`MVMBackend.bind_trials
  <repro.resonator.backends.MVMBackend.bind_trials>`), and the batched
  network reports which trial each stacked row belongs to
  (:meth:`MVMBackend.select_trials
  <repro.resonator.backends.MVMBackend.select_trials>`).  Each trial
  therefore consumes its own noise sequence regardless of batch packing.
* **Arithmetic** is exact: conductances live on an integer grid and DAC
  codes are integers, so all matmuls are exact integer sums in float64 -
  immune to BLAS blocking order.

Together these make a seeded batch run *bit-identical* to the per-trial
sequential loop (``H3DFACT_ENGINE=sequential``) - the guarantee Table II's
H3D column and Fig. 6a/6b rely on, pinned by
``tests/test_crossbar_backend.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cim.adc import SARADC
from repro.cim.rram.batched import (
    ProgrammedConductances,
    TiledArrayGeometry,
    dac_codes,
    program_codebook,
)
from repro.cim.rram.device import RRAMDeviceModel
from repro.cim.rram.noise import NoiseParameters
from repro.errors import ConfigurationError
from repro.resonator.backends import (
    CodebookBatch,
    MVMBackend,
    batch_geometry,
    codebooks_per_trial,
)
from repro.resonator.stochastic import ThresholdPolicy
from repro.utils.rng import RandomState, as_rng, fresh_seed
from repro.vsa.codebook import Codebook, codebook_fingerprint

#: Spawn-key tag separating a trial's noise stream from its init stream
#: (both may be derived from the same request seed).
_NOISE_STREAM_TAG = 0x7C1


class ConductanceCache:
    """Byte-budget LRU of programmed conductances, keyed by content.

    The key is ``(codebook content hash, device corner, geometry, grid,
    program seed)`` - the same "same arrays would be programmed"
    equivalence the serving registry uses, extended by the physical
    configuration.  Because programming is deterministic in that key,
    eviction is invisible to results: a returning codebook re-programs to
    bit-identical conductances (it only pays the programming time again,
    exactly like an evicted registry entry).
    """

    def __init__(self, capacity_bytes: int = 512 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[Tuple, ProgrammedConductances]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self,
        codebook: Codebook,
        *,
        device: RRAMDeviceModel,
        geometry: TiledArrayGeometry,
        grid_bits: int,
        program_seed: int,
    ) -> ProgrammedConductances:
        """Programmed conductances for the key, programming on first sight."""
        from repro.telemetry import get_log

        fingerprint = codebook_fingerprint(codebook)
        key = (fingerprint, device, geometry, grid_bits, program_seed)
        log = get_log()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if cached is not None:
            if log.enabled:
                log.emit("cache.hit", cache="conductance", key=fingerprint[:16])
            return cached
        # Program outside the lock (pure function of the key).
        programmed = program_codebook(
            codebook.matrix,
            fingerprint,
            device=device,
            geometry=geometry,
            grid_bits=grid_bits,
            program_seed=program_seed,
        )
        evicted_count = 0
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                self._entries[key] = programmed
                self._bytes += programmed.nbytes
                while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                    _, evicted = self._entries.popitem(last=False)
                    self._bytes -= evicted.nbytes
                    self.evictions += 1
                    evicted_count += 1
            result = self._entries[key]
        if log.enabled:
            log.emit("cache.miss", cache="conductance", key=fingerprint[:16])
            for _ in range(evicted_count):
                log.emit("cache.eviction", cache="conductance")
        return result

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ConductanceCache(entries={len(self)}, bytes={self._bytes}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


#: Process-wide default cache: every backend instance (sequential per-trial
#: backends included) shares one program-once store, mirroring one
#: fabricated stack serving all traffic.
CONDUCTANCE_CACHE = ConductanceCache()


class _StackedConductances:
    """Stacked tensors for a per-trial programmed-codebook batch.

    Built once per (codebook tuple) and LRU-cached by object identity, the
    same pattern as the exact backend's ``_StackCache``: compactions of
    the batched network's active set rebuild at most ``log2(T)`` times.
    """

    def __init__(self, progs: Sequence[ProgrammedConductances]) -> None:
        self.g_sim = np.stack([p.g_sim for p in progs])
        self.sim_read_sigma = np.stack([p.sim_read_sigma for p in progs])
        self.g_proj = np.stack([p.g_proj for p in progs])
        self.gsq_proj = np.stack([p.gsq_proj for p in progs])


class CIMBatchedBackend(MVMBackend):
    """Tiled, batched crossbar MVMs at device fidelity (module docstring).

    Parameters
    ----------
    device:
        RRAM technology corner programmed into both tiers.
    noise:
        Calibrated *total* read-out preset; the part not explained by
        device statistics becomes the peripheral residual (quadrature).
        Default: the testchip calibration, as everywhere else.
    adc:
        Per-tile column converter (default 4-bit SAR, the design point).
    policy:
        VTGT calibration; ``None`` disables the threshold.
    adc_full_scale_zscore:
        Per-tile converter range in units of ``sqrt(rows)`` (the
        subarray's crosstalk scale).
    geometry:
        Physical subarray tiling (default 256 x 256, Sec. IV-A).
    grid_bits:
        Write-verify conductance grid resolution.
    projection_noise:
        Model tier-2 read noise too (the sign activation absorbs most).
    program_seed:
        Seed mixed into the content-keyed programming RNG ("which chip").
    rng:
        Master stream used only to derive per-trial noise streams when no
        request seeds are bound.
    cache:
        Conductance store; defaults to the process-wide
        :data:`CONDUCTANCE_CACHE`.
    """

    deterministic = False

    def __init__(
        self,
        *,
        device: Optional[RRAMDeviceModel] = None,
        noise: Optional[NoiseParameters] = None,
        adc: Optional[SARADC] = None,
        policy: Optional[ThresholdPolicy] = ThresholdPolicy(),
        adc_full_scale_zscore: float = 8.0,
        geometry: Optional[TiledArrayGeometry] = None,
        grid_bits: int = 8,
        projection_noise: bool = True,
        program_seed: int = 0,
        rng: RandomState = None,
        cache: Optional[ConductanceCache] = None,
    ) -> None:
        self.device = device if device is not None else RRAMDeviceModel()
        self.noise = noise if noise is not None else NoiseParameters.testchip()
        self.adc = adc if adc is not None else SARADC(bits=4)
        self.policy = policy
        self.adc_full_scale_zscore = adc_full_scale_zscore
        self.geometry = geometry if geometry is not None else TiledArrayGeometry()
        self.grid_bits = int(grid_bits)
        self.projection_noise = projection_noise
        self.program_seed = int(program_seed)
        self.cache = cache if cache is not None else CONDUCTANCE_CACHE
        # Device-explained per-read sigma in z-units (per sqrt(dim)); the
        # calibrated preset's excess becomes the peripheral residual.
        dev = self.device
        self._device_read_z = float(
            dev.sigma_read * np.sqrt(dev.g_on**2 + dev.g_off**2) / dev.delta_g
        )
        self._residual_z = float(
            np.sqrt(max(0.0, self.noise.sigma_z**2 - self._device_read_z**2))
        )
        #: Effective total per-read sigma in z-units (threshold calibration).
        self.total_read_z = float(
            np.sqrt(self._device_read_z**2 + self._residual_z**2)
        )
        # The master seed is drawn *lazily*, only if unbound streams are
        # ever needed: a backend whose trials are always bound to request
        # seeds consumes nothing from the caller's rng, so building one
        # backend (batched) or one per trial (sequential) leaves a shared
        # experiment stream in the same state - a requirement for
        # multi-cell sweeps to stay bit-identical across engines.
        self._rng_source = as_rng(rng)
        self._master_seed: Optional[int] = None
        self._streams: List[np.random.Generator] = []
        self._bound = False
        self._rows: Optional[np.ndarray] = None
        self._sigma_cache: Dict[int, Tuple[ProgrammedConductances, np.ndarray]] = {}
        self._stacks: "OrderedDict[Tuple[int, ...], Tuple[List, _StackedConductances]]" = (
            OrderedDict()
        )
        self.deterministic = (
            self.device.sigma_read == 0
            and self._residual_z == 0
            and self.adc.deterministic
        )

    # -- trial streams (see module docstring: determinism contract) --------

    def bind_trials(self, seeds: Sequence[int]) -> None:
        """Give each trial its own noise stream, derived from its seed."""
        self._streams = [
            np.random.default_rng(
                np.random.SeedSequence(
                    entropy=int(seed), spawn_key=(_NOISE_STREAM_TAG,)
                )
            )
            for seed in seeds
        ]
        self._bound = True
        self._rows = None

    def select_trials(self, rows: np.ndarray) -> None:
        """Declare which global trial each row of the next calls maps to."""
        self._rows = np.asarray(rows)

    def _ensure_streams(self, upto: int) -> None:
        if self._master_seed is None:
            self._master_seed = fresh_seed(self._rng_source)
        while len(self._streams) < upto:
            self._streams.append(
                np.random.default_rng(
                    np.random.SeedSequence(
                        entropy=self._master_seed,
                        spawn_key=(_NOISE_STREAM_TAG, len(self._streams)),
                    )
                )
            )

    def _row_streams(self, count: int) -> List[np.random.Generator]:
        rows = self._rows
        if rows is None:
            rows = np.arange(count)
        elif len(rows) != count:
            # A stale/mismatched mapping must never silently remap trials
            # onto each other's noise streams - that would quietly void
            # the packing-independence contract.
            raise ConfigurationError(
                f"select_trials declared {len(rows)} rows but the batch "
                f"has {count}; re-declare the row mapping (or begin_trial "
                "to reset it) before changing batch shape"
            )
        if not self._bound:
            self._ensure_streams(int(rows.max()) + 1 if count else 0)
        return [self._streams[int(t)] for t in rows]

    def begin_trial(self) -> None:
        """Reset the trial-row mapping; arrays stay programmed (cached).

        Called once per factorization: conductances are program-once
        (content-keyed), and bound per-trial streams survive so a
        bind_trials -> factorize sequence keeps its replay identity.
        """
        self._rows = None

    # -- programmed arrays -------------------------------------------------

    def programmed_for(self, codebook: Codebook) -> ProgrammedConductances:
        """This backend's frozen conductance realization of ``codebook``."""
        return self.cache.get(
            codebook,
            device=self.device,
            geometry=self.geometry,
            grid_bits=self.grid_bits,
            program_seed=self.program_seed,
        )

    def _tile_sigma(self, prog: ProgrammedConductances) -> np.ndarray:
        """Per-tile per-column total read sigma (device + residual)."""
        key = id(prog)
        entry = self._sigma_cache.get(key)
        # The entry pins `prog` (same pattern as the stacked-tensor
        # cache): an id-based key must never outlive its object, or a
        # recycled address could serve another codebook's sigmas.
        if entry is None or entry[0] is not prog:
            slices = self.geometry.row_slices(prog.dim)
            tile_rows = np.array(
                [s.stop - s.start for s in slices], dtype=np.float64
            )
            sigma = np.sqrt(
                prog.sim_read_sigma**2
                + (self._residual_z**2) * tile_rows[:, None]
            )
            if len(self._sigma_cache) > 16:
                self._sigma_cache.clear()
            self._sigma_cache[key] = (prog, sigma)
            return sigma
        return entry[1]

    def _stacked(self, books: Sequence[Codebook]) -> _StackedConductances:
        key = tuple(id(book) for book in books)
        entry = self._stacks.get(key)
        if entry is not None:
            self._stacks.move_to_end(key)
            return entry[1]
        progs = [self.programmed_for(book) for book in books]
        stacked = _StackedConductances(progs)
        while len(self._stacks) >= 4:
            self._stacks.popitem(last=False)
        # Hold the codebooks so the id-based key stays pinned.
        self._stacks[key] = (list(books), stacked)
        return stacked

    # -- similarity chain scales ------------------------------------------

    def _tile_full_scale(self) -> float:
        """Per-tile ADC full scale in similarity units."""
        return self.adc_full_scale_zscore * float(np.sqrt(self.geometry.rows))

    def weight_step(self) -> float:
        """LSB of the accumulated similarity words (the DAC grid)."""
        return self._tile_full_scale() / self.adc.levels

    def _max_code(self, dim: int) -> int:
        """Largest accumulated code: all row tiles saturated."""
        return self.adc.levels * self.geometry.num_row_tiles(dim)

    # -- MVMs --------------------------------------------------------------
    # The batch methods are the single authoritative implementation; the
    # scalar methods run a one-row batch against trial stream 0, which is
    # exactly what the per-trial sequential loop binds (replay layer).

    def similarity(self, codebook: Codebook, query: np.ndarray) -> np.ndarray:
        """One-row batch of :meth:`similarity_batch` on trial stream 0."""
        return self.similarity_batch(codebook, np.asarray(query)[None])[0]

    def project(self, codebook: Codebook, weights: np.ndarray) -> np.ndarray:
        """One-row batch of :meth:`project_batch` on trial stream 0."""
        return self.project_batch(codebook, np.asarray(weights)[None])[0]

    def similarity_batch(
        self, codebooks: CodebookBatch, queries: np.ndarray
    ) -> np.ndarray:
        """Tiled crossbar read-out over a ``(trials, dim)`` query matrix."""
        queries = np.asarray(queries, dtype=np.float64)
        trials = len(queries)
        dim, size = batch_geometry(codebooks)
        slices = self.geometry.row_slices(dim)
        n_tiles = len(slices)
        shared = isinstance(codebooks, Codebook)
        if shared:
            prog = self.programmed_for(codebooks)
            unit_scale = prog.unit_scale
            sigma = self._tile_sigma(prog)[None, :, :]  # (1, tiles, M)
        else:
            books = codebooks_per_trial(codebooks, trials)
            stacked = self._stacked(books)
            unit_scale = self.programmed_for(books[0]).unit_scale
            tile_rows = np.array(
                [s.stop - s.start for s in slices], dtype=np.float64
            )
            sigma = np.sqrt(
                stacked.sim_read_sigma**2
                + (self._residual_z**2) * tile_rows[None, :, None]
            )  # (T, tiles, M)
        # Exact integer partial sums per row tile (grid units).
        partial = np.empty((trials, n_tiles, size), dtype=np.float64)
        for t, rows in enumerate(slices):
            if shared:
                partial[:, t, :] = queries[:, rows] @ prog.g_sim[rows]
            else:
                partial[:, t, :] = np.matmul(
                    queries[:, None, rows], stacked.g_sim[:, rows, :]
                )[:, 0, :]
        values = partial * unit_scale
        # Per-read noise, one stream per trial (packing-independent).
        if self.total_read_z > 0:
            streams = self._row_streams(trials)
            eps = np.empty_like(values)
            for r, stream in enumerate(streams):
                eps[r] = stream.normal(0.0, 1.0, size=(n_tiles, size))
            values = values + eps * sigma
        # Single-ended sensing rectifies each tile's partial sum, the
        # tile's SAR ADC converts its column block, tier-1 accumulates.
        values = np.maximum(values, 0.0)
        values = self.adc.convert(values, full_scale=self._tile_full_scale())
        sims = values.sum(axis=1)
        if self.policy is not None:
            threshold = self.policy.threshold(dim, size, self.total_read_z)
            sims = np.where(sims >= threshold, sims, 0.0)
        return sims

    def project_batch(
        self, codebooks: CodebookBatch, weights: np.ndarray
    ) -> np.ndarray:
        """Tier-2 crossbar projection of DAC-quantized similarity words."""
        weights = np.asarray(weights, dtype=np.float64)
        trials = len(weights)
        dim, size = batch_geometry(codebooks)
        step = self.weight_step()
        codes = dac_codes(weights, step=step, max_code=self._max_code(dim))
        shared = isinstance(codebooks, Codebook)
        if shared:
            prog = self.programmed_for(codebooks)
            unit_scale = prog.unit_scale
            clean_units = codes @ prog.g_proj  # exact integers
        else:
            books = codebooks_per_trial(codebooks, trials)
            stacked = self._stacked(books)
            unit_scale = self.programmed_for(books[0]).unit_scale
            clean_units = np.matmul(codes[:, None, :], stacked.g_proj)[:, 0, :]
        values = clean_units * (unit_scale * step)
        if self.projection_noise and (
            self.device.sigma_read > 0 or self._residual_z > 0
        ):
            # Input-dependent device term: column variance aggregates the
            # applied codes against the programmed squared conductances
            # (exact integer matmul), plus the peripheral residual at the
            # statistical backend's crosstalk scale.
            sq = codes**2
            if shared:
                var_units = sq @ prog.gsq_proj
            else:
                var_units = np.matmul(sq[:, None, :], stacked.gsq_proj)[:, 0, :]
            sigma = np.sqrt(
                (self.device.sigma_read * unit_scale * step) ** 2 * var_units
                + (self._residual_z**2) * size
            )
            streams = self._row_streams(trials)
            eps = np.empty_like(values)
            for r, stream in enumerate(streams):
                eps[r] = stream.normal(0.0, 1.0, size=dim)
            values = values + eps * sigma
        return values

    def __repr__(self) -> str:
        return (
            f"CIMBatchedBackend(device={self.device!r}, "
            f"noise={self.noise.name!r}, adc={self.adc!r}, "
            f"geometry={self.geometry!r}, grid_bits={self.grid_bits})"
        )
