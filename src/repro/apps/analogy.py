"""Analogical reasoning with holographic role-filler records.

The classic VSA demonstration ("What is the dollar of Mexico?", Kanerva):
a record binds role vectors to filler vectors and superposes the pairs,

    record = (role_1 (*) filler_1) [+] (role_2 (*) filler_2) [+] ...

Unbinding a *filler* from one record yields that record's role, and
unbinding that role from another record yields the analogous filler.  The
engine answers ``analogy(record_a, filler_a, record_b) -> filler_b`` with
cleanup against the filler codebook; the factorizer is the general tool
when the query requires decomposing a *product* of roles instead of a
single binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodebookError, DimensionError
from repro.utils.rng import RandomState, as_rng
from repro.vsa.codebook import Codebook
from repro.vsa.ops import DEFAULT_DTYPE, bind, bundle, sign_with_tiebreak


@dataclass
class Record:
    """One bound role-filler record (e.g. a country description)."""

    name: str
    vector: np.ndarray
    assignment: Dict[str, str]


class AnalogyEngine:
    """Builds records over shared role/filler codebooks and answers queries.

    Parameters
    ----------
    roles:
        Role names (``"capital"``, ``"currency"``, ...).
    fillers:
        The universe of filler labels across all roles.
    dim:
        Hypervector dimension.
    """

    def __init__(
        self,
        roles: Sequence[str],
        fillers: Sequence[str],
        *,
        dim: int = 1024,
        rng: RandomState = None,
    ) -> None:
        if not roles or not fillers:
            raise CodebookError("roles and fillers must be non-empty")
        generator = as_rng(rng)
        self.role_book = Codebook.random(
            "roles", dim, len(roles), rng=generator, labels=list(roles)
        )
        self.filler_book = Codebook.random(
            "fillers", dim, len(fillers), rng=generator, labels=list(fillers)
        )
        self._roles = {name: i for i, name in enumerate(roles)}
        self._fillers = {name: i for i, name in enumerate(fillers)}
        self._rng = generator

    @property
    def dim(self) -> int:
        return self.role_book.dim

    # -- record construction ---------------------------------------------------

    def encode_record(self, name: str, assignment: Dict[str, str]) -> Record:
        """Superpose the role (*) filler bindings of ``assignment``."""
        if not assignment:
            raise CodebookError(f"record {name!r} needs at least one pair")
        bindings: List[np.ndarray] = []
        for role, filler in assignment.items():
            if role not in self._roles:
                raise CodebookError(f"unknown role {role!r}")
            if filler not in self._fillers:
                raise CodebookError(f"unknown filler {filler!r}")
            bindings.append(
                bind(
                    self.role_book.vector(self._roles[role]),
                    self.filler_book.vector(self._fillers[filler]),
                )
            )
        vector = bundle(bindings, rng=self._rng)
        return Record(name=name, vector=vector, assignment=dict(assignment))

    # -- queries -----------------------------------------------------------------

    def filler_of(self, record: Record, role: str) -> str:
        """Direct lookup: unbind a role, clean up against fillers."""
        if role not in self._roles:
            raise CodebookError(f"unknown role {role!r}")
        unbound = bind(record.vector, self.role_book.vector(self._roles[role]))
        index, _ = self.filler_book.cleanup(unbound)
        return self.filler_book.label(index)

    def role_of(self, record: Record, filler: str) -> str:
        """Reverse lookup: unbind a filler, clean up against roles."""
        if filler not in self._fillers:
            raise CodebookError(f"unknown filler {filler!r}")
        unbound = bind(
            record.vector, self.filler_book.vector(self._fillers[filler])
        )
        index, _ = self.role_book.cleanup(unbound)
        return self.role_book.label(index)

    def analogy(self, record_a: Record, filler_a: str, record_b: Record) -> str:
        """"``filler_a`` is to ``record_a`` as X is to ``record_b``" -> X.

        Computed in superposition without symbolic intermediate steps:
        ``record_b (*) record_a (*) filler_a`` carries the answer filler
        plus cross-talk, exactly Kanerva's "dollar of Mexico" construction.
        """
        query = bind(
            record_b.vector,
            record_a.vector,
            self.filler_book.vector(self._fillers[filler_a]),
        )
        index, _ = self.filler_book.cleanup(query)
        return self.filler_book.label(index)
