"""Tree search by factorization: decoding a path through a decision tree.

A depth-``L`` path with branching factor ``B`` is encoded as the binding of
its per-level choices, each level protected by the permutation operation
(Sec. II-A's sequence-encoding primitive):

    path = rho^0(c_0) (*) rho^1(c_1) (*) ... (*) rho^(L-1)(c_{L-1})

Because ``rho^l`` applied to a codebook is itself a valid codebook, this is
exactly a factorization problem with one codebook per tree level - the
resonator searches *all* ``B^L`` leaves in superposition instead of walking
the tree node by node, the "tree search" use-case of Sec. V-E.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import H3DFact
from repro.errors import CodebookError, ConfigurationError
from repro.utils.rng import RandomState, as_rng
from repro.vsa.codebook import Codebook, CodebookSet
from repro.vsa.ops import DEFAULT_DTYPE, permute


class TreePathDecoder:
    """Encodes and decodes tree paths holographically.

    Parameters
    ----------
    depth:
        Number of levels (choices along a path).
    branching:
        Choices per level.
    dim:
        Hypervector dimension.
    engine:
        Factorizer; defaults to the stochastic H3DFact engine.
    """

    def __init__(
        self,
        depth: int,
        branching: int,
        *,
        dim: int = 1024,
        engine: Optional[H3DFact] = None,
        rng: RandomState = None,
    ) -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if branching < 2:
            raise ConfigurationError(f"branching must be >= 2, got {branching}")
        generator = as_rng(rng)
        self.depth = depth
        self.branching = branching
        #: One base codebook of branch choices, shared across levels.
        self.base = Codebook.random("choices", dim, branching, rng=generator)
        #: Level codebooks: the base codebook permuted by the level index.
        level_books = []
        for level in range(depth):
            matrix = np.stack(
                [
                    permute(self.base.matrix[:, b], level)
                    for b in range(branching)
                ],
                axis=1,
            ).astype(DEFAULT_DTYPE)
            level_books.append(Codebook(f"level{level}", matrix))
        self.codebooks = CodebookSet(level_books)
        self.engine = engine if engine is not None else H3DFact(rng=generator)

    @property
    def num_leaves(self) -> int:
        return self.branching**self.depth

    def encode_path(self, choices: Sequence[int]) -> np.ndarray:
        """Bind the per-level (permuted) choice vectors into a path vector."""
        if len(choices) != self.depth:
            raise CodebookError(
                f"{len(choices)} choices for a depth-{self.depth} tree"
            )
        for choice in choices:
            if not 0 <= choice < self.branching:
                raise CodebookError(
                    f"choice {choice} out of range [0, {self.branching})"
                )
        return self.codebooks.compose(list(choices))

    def decode_path(
        self,
        path_vector: np.ndarray,
        *,
        max_iterations: int = 500,
    ) -> Tuple[List[int], int]:
        """Factorize a path vector back into per-level choices.

        Returns the decoded choices and the iterations used.
        """
        result = self.engine.factorize(
            np.asarray(path_vector),
            codebooks=self.codebooks,
            max_iterations=max_iterations,
        )
        return list(result.indices), result.iterations
