"""Integer factorization in holographic space (Sec. V-E's third example).

Each candidate factor ``k`` gets a random item vector; a composite
``n = p * q`` is encoded as ``vec(p) (*) vec(q)``.  Recovering ``(p, q)``
from the encoding is then literally a two-factor resonator problem.  This
is *symbolic* integer factorization - it decodes the holographic encoding,
it does not break RSA - but it exercises exactly the search-in-superposition
machinery on a non-perceptual combinatorial task, and it scales with the
capacity results of Table II (the candidate tables are the codebooks).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import H3DFact
from repro.errors import CodebookError, ConfigurationError
from repro.utils.rng import RandomState, as_rng
from repro.vsa.codebook import Codebook, CodebookSet


class IntegerFactorizer:
    """Factors composites over a fixed table of candidate factors.

    Parameters
    ----------
    candidates:
        The candidate factor values (e.g. the primes below 100).  Both
        factors draw from this table.
    dim:
        Hypervector dimension.
    """

    def __init__(
        self,
        candidates: Sequence[int],
        *,
        dim: int = 1024,
        engine: Optional[H3DFact] = None,
        rng: RandomState = None,
    ) -> None:
        values = list(dict.fromkeys(int(c) for c in candidates))
        if len(values) < 2:
            raise ConfigurationError(
                f"need at least two candidate factors, got {values}"
            )
        if any(v < 2 for v in values):
            raise ConfigurationError("candidate factors must be >= 2")
        generator = as_rng(rng)
        self.candidates = values
        labels = [str(v) for v in values]
        self.codebooks = CodebookSet(
            [
                Codebook.random("p", dim, len(values), rng=generator, labels=labels),
                Codebook.random("q", dim, len(values), rng=generator, labels=labels),
            ]
        )
        self.engine = engine if engine is not None else H3DFact(rng=generator)
        self._index = {v: i for i, v in enumerate(values)}

    def encode(self, p: int, q: int) -> np.ndarray:
        """Holographic encoding of the composite ``p * q``."""
        if p not in self._index or q not in self._index:
            raise CodebookError(
                f"factors must come from the candidate table; got {p}, {q}"
            )
        return self.codebooks.compose([self._index[p], self._index[q]])

    def factor(
        self,
        encoding: np.ndarray,
        *,
        max_iterations: int = 500,
    ) -> Tuple[int, int]:
        """Recover the two factors from a composite encoding."""
        result = self.engine.factorize(
            np.asarray(encoding),
            codebooks=self.codebooks,
            max_iterations=max_iterations,
        )
        p_index, q_index = result.indices
        return self.candidates[p_index], self.candidates[q_index]

    def factor_number(
        self,
        n: int,
        *,
        max_iterations: int = 500,
    ) -> Optional[Tuple[int, int]]:
        """Factor an integer by encoding-and-decoding; verify arithmetic.

        Returns ``None`` when ``n`` has no factorization over the
        candidate table (checked arithmetically, since the holographic
        decode can only return candidate pairs).
        """
        for p in self.candidates:
            if n % p == 0 and (n // p) in self._index:
                encoding = self.encode(p, n // p)
                decoded_p, decoded_q = self.factor(
                    encoding, max_iterations=max_iterations
                )
                if decoded_p * decoded_q == n:
                    return decoded_p, decoded_q
                return None
        return None


def primes_below(limit: int) -> List[int]:
    """Primes below ``limit`` (sieve); the natural candidate table."""
    if limit <= 2:
        return []
    sieve = np.ones(limit, dtype=bool)
    sieve[:2] = False
    for value in range(2, int(limit**0.5) + 1):
        if sieve[value]:
            sieve[value * value :: value] = False
    return [int(v) for v in np.nonzero(sieve)[0]]
