"""Extension applications (Sec. V-E).

The paper positions H3DFact beyond visual perception: "factorization plays
a fundamental role in perception and cognition (e.g., analogical reasoning,
tree search, and integer factorization)".  This package implements those
three extensions on top of the same engine:

* :mod:`repro.apps.analogy` - role-filler analogical reasoning over bound
  key-value records;
* :mod:`repro.apps.tree` - decoding a path through a tree encoded with
  permuted per-level choices;
* :mod:`repro.apps.integer` - factoring the holographic encoding of a
  composite number back into its factor encodings.
"""

from repro.apps.analogy import AnalogyEngine, Record
from repro.apps.integer import IntegerFactorizer
from repro.apps.tree import TreePathDecoder

__all__ = ["AnalogyEngine", "Record", "IntegerFactorizer", "TreePathDecoder"]
