"""Command-line interface: ``h3dfact <experiment> [options]``.

Runs any of the paper's experiments and prints the same rows/series the
paper reports.  ``h3dfact all`` runs everything at default scale.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    AblationConfig,
    FhrrPointConfig,
    Fig1cConfig,
    Fig5Config,
    Fig6aConfig,
    Fig6bConfig,
    Fig7Config,
    Table2Config,
    Table3Config,
    run_ablation,
    run_fhrr_point,
    run_fig1c,
    run_fig5,
    run_fig6a,
    run_fig6b,
    run_fig7,
    run_table2,
    run_table3,
)
from repro.service.bench import ServeBenchConfig, run_serve_bench


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_fidelity(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fidelity",
        choices=("crossbar", "statistical", "sram", "hybrid"),
        default=None,
        help=(
            "H3D MVM model: full tiled crossbar simulation (default), the "
            "aggregate statistical noise model, the all-digital SRAM "
            "tier-1 baseline (exact XNOR + popcount MVMs), or the "
            "GEM3D-style hybrid stack (SRAM similarity, crossbar "
            "projection)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="h3dfact",
        description="H3DFact (DATE 2024) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1c", help="operation breakdown + accuracy scaling")
    _add_common(p)

    p = sub.add_parser("table2", help="accuracy and operational capacity")
    _add_common(p)
    _add_fidelity(p)
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--full", action="store_true", help="paper-scale grid")

    p = sub.add_parser(
        "fhrr", help="FHRR phasor-resonator accuracy point (Table II companion)"
    )
    _add_common(p)
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--full", action="store_true", help="paper-scale grid")

    p = sub.add_parser("table3", help="hardware PPA comparison")
    p.add_argument(
        "--measure-accuracy",
        action="store_true",
        help="re-measure the accuracy column instead of the snapshot",
    )

    p = sub.add_parser("fig5", help="thermal analysis")
    p.add_argument("--grid", type=int, default=30)

    p = sub.add_parser("fig6a", help="ADC precision convergence")
    _add_common(p)
    _add_fidelity(p)
    p.add_argument("--trials", type=int, default=None)

    p = sub.add_parser("fig6b", help="RRAM testchip noise validation")
    _add_common(p)
    _add_fidelity(p)
    p.add_argument("--trials", type=int, default=None)

    p = sub.add_parser("fig7", help="RAVEN perception task")
    _add_common(p)
    p.add_argument("--train-panels", type=int, default=None)
    p.add_argument("--test-panels", type=int, default=None)

    p = sub.add_parser("ablation", help="design-choice sweeps")
    _add_common(p)
    _add_fidelity(p)
    p.add_argument("--trials", type=int, default=None)

    p = sub.add_parser(
        "serve-bench", help="micro-batching service throughput + parity"
    )
    _add_common(p)
    p.add_argument("--requests", type=int, default=32)
    p.add_argument("--batch", type=int, default=32, help="max batch size")
    p.add_argument("--dim", type=int, default=1024)
    p.add_argument("--factors", type=int, default=3)
    p.add_argument("--size", type=int, default=64, help="codebook size")
    p.add_argument("--iterations", type=int, default=30, help="sweep budget")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument(
        "--algebra",
        choices=("bipolar", "fhrr"),
        default="bipolar",
        help="holographic algebra of the request stream",
    )

    sub.add_parser("all", help="run every experiment at default scale")
    return parser


def _run_one(command: str, args: argparse.Namespace) -> str:
    if command == "fig1c":
        return run_fig1c(Fig1cConfig(seed=args.seed)).render()
    if command == "table2":
        if getattr(args, "full", False):
            config = Table2Config.paper()
        else:
            config = Table2Config(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        if getattr(args, "fidelity", None):
            config.fidelity = args.fidelity
        return run_table2(config).render()
    if command == "fhrr":
        if getattr(args, "full", False):
            config = FhrrPointConfig.paper()
        else:
            config = FhrrPointConfig(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        return run_fhrr_point(config).render()
    if command == "table3":
        return run_table3(
            Table3Config(measure_accuracy=args.measure_accuracy)
        ).render()
    if command == "fig5":
        return run_fig5(Fig5Config(grid=args.grid)).render()
    if command == "fig6a":
        config = Fig6aConfig(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        if getattr(args, "fidelity", None):
            config.fidelity = args.fidelity
        return run_fig6a(config).render()
    if command == "fig6b":
        config = Fig6bConfig(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        if getattr(args, "fidelity", None):
            config.fidelity = args.fidelity
        return run_fig6b(config).render()
    if command == "fig7":
        config = Fig7Config(seed=args.seed)
        if args.train_panels is not None:
            config.train_panels = args.train_panels
        if args.test_panels is not None:
            config.test_panels = args.test_panels
        return run_fig7(config).render()
    if command == "ablation":
        config = AblationConfig(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        if getattr(args, "fidelity", None):
            config.fidelity = args.fidelity
        return run_ablation(config).render()
    if command == "serve-bench":
        return run_serve_bench(
            ServeBenchConfig(
                dim=args.dim,
                num_factors=args.factors,
                codebook_size=args.size,
                requests=args.requests,
                max_batch_size=args.batch,
                max_iterations=args.iterations,
                workers=args.workers,
                seed=args.seed,
                algebra=args.algebra,
            )
        ).render()
    raise ValueError(f"unknown command {command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "all":
        outputs = []
        defaults = build_parser()
        for command in (
            "fig1c",
            "table2",
            "fhrr",
            "table3",
            "fig5",
            "fig6a",
            "fig6b",
            "fig7",
            "serve-bench",
        ):
            sub_args = defaults.parse_args([command])
            outputs.append(f"===== {command} =====")
            outputs.append(_run_one(command, sub_args))
            outputs.append("")
        print("\n".join(outputs))
        return 0
    print(_run_one(args.command, args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
