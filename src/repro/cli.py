"""Command-line interface: ``h3dfact <experiment> [options]``.

Runs any of the paper's experiments and prints the same rows/series the
paper reports.  ``h3dfact all`` runs everything at default scale.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    AblationConfig,
    FhrrPointConfig,
    Fig1cConfig,
    Fig5Config,
    Fig6aConfig,
    Fig6bConfig,
    Fig7Config,
    Table2Config,
    Table3Config,
    run_ablation,
    run_fhrr_point,
    run_fig1c,
    run_fig5,
    run_fig6a,
    run_fig6b,
    run_fig7,
    run_table2,
    run_table3,
)
from repro.service.bench import ServeBenchConfig, run_serve_bench


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_fidelity(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fidelity",
        choices=("crossbar", "statistical", "sram", "hybrid"),
        default=None,
        help=(
            "H3D MVM model: full tiled crossbar simulation (default), the "
            "aggregate statistical noise model, the all-digital SRAM "
            "tier-1 baseline (exact XNOR + popcount MVMs), or the "
            "GEM3D-style hybrid stack (SRAM similarity, crossbar "
            "projection)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="h3dfact",
        description="H3DFact (DATE 2024) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1c", help="operation breakdown + accuracy scaling")
    _add_common(p)

    p = sub.add_parser("table2", help="accuracy and operational capacity")
    _add_common(p)
    _add_fidelity(p)
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--full", action="store_true", help="paper-scale grid")

    p = sub.add_parser(
        "fhrr", help="FHRR phasor-resonator accuracy point (Table II companion)"
    )
    _add_common(p)
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--full", action="store_true", help="paper-scale grid")

    p = sub.add_parser("table3", help="hardware PPA comparison")
    p.add_argument(
        "--measure-accuracy",
        action="store_true",
        help="re-measure the accuracy column instead of the snapshot",
    )

    p = sub.add_parser("fig5", help="thermal analysis")
    p.add_argument("--grid", type=int, default=30)

    p = sub.add_parser("fig6a", help="ADC precision convergence")
    _add_common(p)
    _add_fidelity(p)
    p.add_argument("--trials", type=int, default=None)

    p = sub.add_parser("fig6b", help="RRAM testchip noise validation")
    _add_common(p)
    _add_fidelity(p)
    p.add_argument("--trials", type=int, default=None)

    p = sub.add_parser("fig7", help="RAVEN perception task")
    _add_common(p)
    p.add_argument("--train-panels", type=int, default=None)
    p.add_argument("--test-panels", type=int, default=None)

    p = sub.add_parser("ablation", help="design-choice sweeps")
    _add_common(p)
    _add_fidelity(p)
    p.add_argument("--trials", type=int, default=None)

    p = sub.add_parser(
        "serve-bench", help="micro-batching service throughput + parity"
    )
    _add_common(p)
    p.add_argument("--requests", type=int, default=32)
    p.add_argument("--batch", type=int, default=32, help="max batch size")
    p.add_argument("--dim", type=int, default=1024)
    p.add_argument("--factors", type=int, default=3)
    p.add_argument("--size", type=int, default=64, help="codebook size")
    p.add_argument("--iterations", type=int, default=30, help="sweep budget")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument(
        "--algebra",
        choices=("bipolar", "fhrr"),
        default="bipolar",
        help="holographic algebra of the request stream",
    )

    p = sub.add_parser(
        "serve", help="HTTP serving tier over sharded worker processes"
    )
    _add_common(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8373, help="0 = ephemeral")
    p.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker processes (0 = single-process in-process transport)",
    )
    p.add_argument("--batch", type=int, default=32, help="max batch size")
    p.add_argument(
        "--capacity", type=int, default=256, help="per-shard queue bound"
    )
    p.add_argument(
        "--backpressure",
        choices=("block", "error"),
        default="block",
        help="full-queue policy",
    )
    p.add_argument(
        "--smoke",
        type=int,
        default=None,
        metavar="N",
        help="serve N seeded self-requests on an ephemeral port, print "
        "the deterministic result rows, and exit (CI mode)",
    )
    p.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append JSONL lifecycle events to PATH (sets "
        "H3DFACT_TELEMETRY so worker processes inherit it)",
    )

    p = sub.add_parser(
        "cluster", help="multi-host serving control plane (repro.cluster)"
    )
    csub = p.add_subparsers(dest="cluster_command", required=True)

    c = csub.add_parser(
        "serve",
        help="run a coordinator (optionally self-hosting N serving nodes)",
    )
    _add_common(c)
    c.add_argument("--host", default="127.0.0.1")
    c.add_argument("--port", type=int, default=8374, help="0 = ephemeral")
    c.add_argument(
        "--nodes",
        type=int,
        default=0,
        metavar="N",
        help="also fork N serving node processes that join this "
        "coordinator (0 = coordinator only; nodes join from outside)",
    )
    c.add_argument(
        "--shards-per-node",
        type=int,
        default=0,
        help="worker processes inside each self-hosted node "
        "(0 = in-process scheduler per node)",
    )
    c.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=5.0,
        help="seconds of heartbeat silence before a node is expired",
    )
    c.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append JSONL lifecycle events to PATH (sets "
        "H3DFACT_TELEMETRY so node processes inherit it)",
    )

    c = csub.add_parser(
        "status",
        help="fleet view: membership + merged node metrics "
        "(counters summed, histograms merged bucket-wise)",
    )
    c.add_argument("url", help="coordinator base URL (http://host:port)")
    c.add_argument(
        "--json",
        action="store_true",
        help="print the merged fleet metrics as JSON",
    )

    p = sub.add_parser(
        "loadgen", help="closed-loop load generator (latency/throughput)"
    )
    _add_common(p)
    p.add_argument(
        "--url",
        default=None,
        help="target an already-running server (default: self-hosted)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=2,
        help="self-hosted worker processes (0 = in-process; ignored with --url)",
    )
    p.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="N",
        help="self-host an N-node cluster (subprocess nodes + coordinator) "
        "and drive it through the routing ClusterClient",
    )
    p.add_argument(
        "--cluster-url",
        default=None,
        metavar="URL",
        help="drive an already-running cluster via its coordinator URL",
    )
    p.add_argument(
        "--replication",
        type=int,
        default=2,
        help="codebook replica fan-out R for cluster runs",
    )
    p.add_argument(
        "--concurrency",
        default="1,8,64",
        help="comma-separated closed-loop concurrency levels",
    )
    p.add_argument("--requests", type=int, default=64, help="per level")
    p.add_argument("--dim", type=int, default=256)
    p.add_argument("--factors", type=int, default=3)
    p.add_argument("--size", type=int, default=32, help="codebook size")
    p.add_argument(
        "--sets", type=int, default=4, help="distinct codebook sets"
    )
    p.add_argument("--iterations", type=int, default=30, help="sweep budget")
    p.add_argument(
        "--algebra",
        choices=("bipolar", "fhrr"),
        default="bipolar",
        help="holographic algebra of the request stream",
    )
    p.add_argument(
        "--fidelity",
        choices=("baseline", "statistical", "crossbar", "sram", "hybrid"),
        default="baseline",
        help="execution profile requests carry",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable report (BENCH-style records)",
    )
    p.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append JSONL lifecycle events to PATH (sets "
        "H3DFACT_TELEMETRY so worker processes inherit it)",
    )

    p = sub.add_parser(
        "telemetry", help="summarize / validate a JSONL telemetry log"
    )
    p.add_argument("path", help="JSONL event log to read")
    p.add_argument(
        "--trace",
        default=None,
        metavar="TRACE_ID",
        help="render one trace's events as a relative-time waterfall",
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help="check the schema contract; exit non-zero on violations",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the summary as JSON instead of text",
    )

    sub.add_parser("all", help="run every experiment at default scale")
    return parser


def _enable_telemetry(path: Optional[str]) -> None:
    """Point :data:`repro.telemetry.TELEMETRY_ENV` at ``path`` (if given).

    Setting the environment variable (rather than calling
    :func:`repro.telemetry.configure`) is what lets spawned worker
    processes inherit the sink and append to the same JSONL file.
    """
    if path is None:
        return
    import os

    from repro.telemetry import TELEMETRY_ENV

    os.environ[TELEMETRY_ENV] = path


def _run_telemetry(args: argparse.Namespace) -> str:
    """``h3dfact telemetry``: summarize / validate / waterfall a JSONL log."""
    import json as _json

    from repro.telemetry import (
        read_events,
        summarize,
        trace_waterfall,
        validate_events,
    )

    events = read_events(args.path)
    if args.validate:
        problems = validate_events(events)
        if problems:
            raise SystemExit(
                "\n".join(
                    [f"h3dfact telemetry: {len(problems)} problem(s) in "
                     f"{args.path}"]
                    + [f"  {problem}" for problem in problems]
                )
            )
        return (
            f"h3dfact telemetry: {args.path} valid "
            f"({len(events)} events, 0 problems)"
        )
    if args.trace is not None:
        return "\n".join(trace_waterfall(events, args.trace))
    summary = summarize(events)
    if args.json:
        return _json.dumps(summary.to_dict(), indent=2, sort_keys=True)
    return summary.render()


def _make_transport(shards: int, batch: int, capacity: int, backpressure: str):
    """Serving transport for the CLI: sharded pool, or in-process at 0."""
    from repro.service.scheduler import BatchPolicy, FactorizationService
    from repro.service.transport import InProcessTransport
    from repro.service.workers import ShardedWorkerPool, WorkerPoolConfig

    if shards <= 0:
        return InProcessTransport(
            FactorizationService(
                policy=BatchPolicy(
                    max_batch_size=batch,
                    queue_capacity=capacity,
                    backpressure=backpressure,
                )
            )
        )
    return ShardedWorkerPool(
        WorkerPoolConfig(
            shards=shards,
            max_batch_size=batch,
            queue_capacity=capacity,
            backpressure=backpressure,
        )
    )


def _run_serve(args: argparse.Namespace) -> str:
    """``h3dfact serve``: run the HTTP front door (or a seeded smoke)."""
    from repro.service.http import H3DFactHTTPServer, HTTPTransport
    from repro.service.http.loadgen import LoadGenConfig, run_loadgen

    _enable_telemetry(args.telemetry)
    transport = _make_transport(
        args.shards, args.batch, args.capacity, args.backpressure
    )
    if args.smoke is not None:
        # CI mode: ephemeral port, seeded self-traffic, deterministic rows.
        with H3DFactHTTPServer(
            transport, host=args.host, port=0, own_transport=True
        ) as server:
            report = run_loadgen(
                HTTPTransport(server.url),
                LoadGenConfig(
                    requests=args.smoke,
                    concurrency=(min(8, args.smoke),),
                    seed=args.seed,
                ),
            )
        lines = ["h3dfact serve --smoke: HTTP serving tier self-test"]
        lines.append(
            f"  shards={args.shards} batch={args.batch} "
            f"capacity={args.capacity} backpressure={args.backpressure} "
            f"seed={args.seed}"
        )
        for level in report.levels:
            lines.append(
                f"  served={level.requests - level.errors}/{level.requests} "
                f"solved={level.solved} digest={level.digest[:16]}"
            )
            lines.append(
                f"    {level.throughput_rps:.1f} req/s over HTTP "
                "[machine-dependent]"
            )
        if args.telemetry is not None:
            from repro.telemetry import reset as _telemetry_reset

            _telemetry_reset()  # flush + close the JSONL sink before exit
        return "\n".join(lines)
    server = H3DFactHTTPServer(
        transport, host=args.host, port=args.port, own_transport=True
    )
    print(f"h3dfact serving on {server.url} (ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if args.telemetry is not None:
            from repro.telemetry import reset as _telemetry_reset

            _telemetry_reset()  # flush + close the JSONL sink before exit
    return "h3dfact serve: stopped"


def _run_cluster(args: argparse.Namespace) -> str:
    """``h3dfact cluster serve|status``: control plane + fleet view."""
    import json as _json

    if args.cluster_command == "serve":
        from repro.cluster import ClusterCoordinator, LocalCluster
        from repro.service.http import H3DFactHTTPServer

        _enable_telemetry(args.telemetry)
        if args.nodes > 0:
            cluster = LocalCluster(
                args.nodes,
                processes=True,
                shards_per_node=args.shards_per_node,
                heartbeat_timeout=args.heartbeat_timeout,
                host=args.host,
                port=args.port,
            )
            print(
                f"h3dfact cluster: coordinator on {cluster.coordinator_url} "
                f"with {args.nodes} node(s) (ctrl-C to stop)"
            )
            try:
                cluster.coordinator_server._thread.join()
            except KeyboardInterrupt:
                pass
            finally:
                cluster.close()
            return "h3dfact cluster: stopped"
        coordinator = ClusterCoordinator(
            heartbeat_timeout=args.heartbeat_timeout
        )
        server = H3DFactHTTPServer(
            None, host=args.host, port=args.port, coordinator=coordinator
        )
        print(
            f"h3dfact cluster: coordinator on {server.url} "
            "(nodes join via /cluster/register; ctrl-C to stop)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return "h3dfact cluster: stopped"

    # status: membership from the coordinator, /metrics from every node,
    # merged into one fleet view.
    from repro.cluster import ShardMap, merge_metrics
    from repro.service.http import HTTPTransport, RetryPolicy

    coordinator = HTTPTransport(
        args.url, retry=RetryPolicy(max_attempts=2, backoff_seconds=(0.05,))
    )
    try:
        membership = coordinator.request_json("GET", "/cluster/status")
        shard_map = ShardMap.from_payload(
            coordinator.request_json("GET", "/shardmap")
        )
    finally:
        coordinator.close()
    payloads, node_ids, unreachable = [], [], []
    for node in shard_map.nodes:
        transport = HTTPTransport(
            node.url, retry=RetryPolicy(max_attempts=2, backoff_seconds=(0.05,))
        )
        try:
            payloads.append(transport.request_json("GET", "/metrics"))
            node_ids.append(node.node_id)
        except Exception as error:
            unreachable.append((node.node_id, str(error)))
        finally:
            transport.close()
    merged = (
        merge_metrics(payloads, node_ids=node_ids) if payloads else {}
    )
    if args.json:
        return _json.dumps(
            {
                "membership": membership,
                "fleet": merged,
                "unreachable": [node_id for node_id, _ in unreachable],
            },
            indent=2,
            sort_keys=True,
        )
    lines = [
        f"h3dfact cluster status: epoch={membership['epoch']} "
        f"nodes={len(membership['nodes'])} "
        f"heartbeat_timeout={membership['heartbeat_timeout']}s"
    ]
    for entry in membership["nodes"]:
        lines.append(
            f"  {entry['node_id']}: {entry['url']} "
            f"(last heartbeat {entry['age_seconds']:.1f}s ago)"
        )
    for node_id, error in unreachable:
        lines.append(f"  {node_id}: UNREACHABLE ({error})")
    counters = membership.get("counters", {})
    lines.append(
        "  membership: "
        + " ".join(f"{key}={value}" for key, value in sorted(counters.items()))
    )
    if merged:
        endpoints = merged.get("endpoints", {})
        served = sum(
            endpoints.get(path, 0) for path in ("/eval", "/batch_eval")
        )
        latency = merged.get("latency", {})
        lines.append(
            f"  fleet: served={served} requests across {len(node_ids)} "
            "node(s) [counters summed]"
        )
        if latency.get("samples"):
            lines.append(
                f"  fleet latency (merged histogram): "
                f"p50<={latency['p50_ms']:.0f}ms p95<={latency['p95_ms']:.0f}ms "
                f"p99<={latency['p99_ms']:.0f}ms over {latency['samples']} "
                "samples"
            )
        telemetry = merged.get("telemetry", {})
        if telemetry:
            lines.append(
                f"  fleet telemetry: emitted={telemetry.get('emitted', 0)} "
                f"dropped={telemetry.get('dropped', 0)}"
            )
    return "\n".join(lines)


def _run_loadgen(args: argparse.Namespace) -> str:
    """``h3dfact loadgen``: sweep concurrency levels, report percentiles."""
    import json as _json

    from repro.service.http import H3DFactHTTPServer, HTTPTransport
    from repro.service.http.loadgen import LoadGenConfig, run_loadgen

    _enable_telemetry(args.telemetry)
    levels = tuple(
        int(token) for token in str(args.concurrency).split(",") if token
    )
    config = LoadGenConfig(
        dim=args.dim,
        num_factors=args.factors,
        codebook_size=args.size,
        codebook_sets=args.sets,
        requests=args.requests,
        concurrency=levels,
        max_iterations=args.iterations,
        seed=args.seed,
        algebra=args.algebra,
        fidelity=args.fidelity,
    )
    cluster_n = getattr(args, "cluster", None)
    cluster_url = getattr(args, "cluster_url", None)
    if cluster_n is not None and cluster_url is not None:
        raise SystemExit("h3dfact loadgen: pass --cluster OR --cluster-url")
    if cluster_url is not None:
        from repro.cluster import ClusterClient

        client = ClusterClient(
            cluster_url, replication=args.replication, jitter_seed=args.seed
        )
        try:
            report = run_loadgen(client, config)
        finally:
            client.close()
    elif cluster_n is not None:
        from repro.cluster import LocalCluster

        with LocalCluster(cluster_n, processes=True) as cluster:
            client = cluster.client(
                replication=args.replication, jitter_seed=args.seed
            )
            try:
                report = run_loadgen(client, config)
            finally:
                client.close()
    elif args.url is not None:
        report = run_loadgen(HTTPTransport(args.url), config)
    else:
        transport = _make_transport(args.shards, 32, 256, "block")
        with H3DFactHTTPServer(transport, own_transport=True) as server:
            report = run_loadgen(HTTPTransport(server.url), config)
    if args.telemetry is not None:
        from repro.telemetry import reset as _telemetry_reset

        _telemetry_reset()  # flush + close the JSONL sink before exit
    if args.json:
        return _json.dumps(report.to_json(), indent=2, sort_keys=True)
    return report.render()


def _run_one(command: str, args: argparse.Namespace) -> str:
    if command == "fig1c":
        return run_fig1c(Fig1cConfig(seed=args.seed)).render()
    if command == "table2":
        if getattr(args, "full", False):
            config = Table2Config.paper()
        else:
            config = Table2Config(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        if getattr(args, "fidelity", None):
            config.fidelity = args.fidelity
        return run_table2(config).render()
    if command == "fhrr":
        if getattr(args, "full", False):
            config = FhrrPointConfig.paper()
        else:
            config = FhrrPointConfig(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        return run_fhrr_point(config).render()
    if command == "table3":
        return run_table3(
            Table3Config(measure_accuracy=args.measure_accuracy)
        ).render()
    if command == "fig5":
        return run_fig5(Fig5Config(grid=args.grid)).render()
    if command == "fig6a":
        config = Fig6aConfig(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        if getattr(args, "fidelity", None):
            config.fidelity = args.fidelity
        return run_fig6a(config).render()
    if command == "fig6b":
        config = Fig6bConfig(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        if getattr(args, "fidelity", None):
            config.fidelity = args.fidelity
        return run_fig6b(config).render()
    if command == "fig7":
        config = Fig7Config(seed=args.seed)
        if args.train_panels is not None:
            config.train_panels = args.train_panels
        if args.test_panels is not None:
            config.test_panels = args.test_panels
        return run_fig7(config).render()
    if command == "ablation":
        config = AblationConfig(seed=args.seed)
        if args.trials is not None:
            config.trials = args.trials
        if getattr(args, "fidelity", None):
            config.fidelity = args.fidelity
        return run_ablation(config).render()
    if command == "serve-bench":
        return run_serve_bench(
            ServeBenchConfig(
                dim=args.dim,
                num_factors=args.factors,
                codebook_size=args.size,
                requests=args.requests,
                max_batch_size=args.batch,
                max_iterations=args.iterations,
                workers=args.workers,
                seed=args.seed,
                algebra=args.algebra,
            )
        ).render()
    if command == "serve":
        return _run_serve(args)
    if command == "cluster":
        return _run_cluster(args)
    if command == "loadgen":
        return _run_loadgen(args)
    if command == "telemetry":
        return _run_telemetry(args)
    raise ValueError(f"unknown command {command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "all":
        outputs = []
        defaults = build_parser()
        for command in (
            "fig1c",
            "table2",
            "fhrr",
            "table3",
            "fig5",
            "fig6a",
            "fig6b",
            "fig7",
            "serve-bench",
        ):
            sub_args = defaults.parse_args([command])
            outputs.append(f"===== {command} =====")
            outputs.append(_run_one(command, sub_args))
            outputs.append("")
        print("\n".join(outputs))
        return 0
    print(_run_one(args.command, args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
