"""Trained linear front-end: images -> approximate product hypervectors.

Plays the role of the paper's ResNet-18: given a panel image, predict the
holographic product vector of the underlying scene.  Training is a ridge
regression solved in closed form (numpy only): with features ``A`` and
target product vectors ``Y`` (bipolar),

    W = (A^T A + lambda I)^-1 A^T Y,

and inference sign-clips ``phi(x) W`` back to bipolar space.  The predicted
vectors match the true products on most - not all - components, exactly the
"approximate product vector" artifact of Fig. 7 that H3DFact disentangles.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PerceptionError
from repro.perception.features import FeatureExtractor
from repro.perception.raven import RavenDataset
from repro.utils.rng import RandomState, as_rng
from repro.vsa.encoding import SceneEncoder
from repro.vsa.ops import DEFAULT_DTYPE, sign_with_tiebreak


class LinearFrontend:
    """Ridge-trained map from panel images to product hypervectors."""

    def __init__(
        self,
        encoder: SceneEncoder,
        *,
        extractor: Optional[FeatureExtractor] = None,
        ridge_lambda: float = 0.5,
    ) -> None:
        if ridge_lambda <= 0:
            raise PerceptionError(
                f"ridge_lambda must be positive, got {ridge_lambda}"
            )
        self.encoder = encoder
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        self.ridge_lambda = ridge_lambda
        self._weights: Optional[np.ndarray] = None

    @property
    def trained(self) -> bool:
        return self._weights is not None

    # -- training ------------------------------------------------------------

    def fit(self, dataset: RavenDataset) -> float:
        """Train on a dataset; returns the training bit-accuracy."""
        features = self.extractor.extract_batch(dataset.images)
        targets = np.stack(
            [self.encoder.encode(scene) for scene in dataset.scenes]
        ).astype(np.float64)
        gram = features.T @ features
        gram[np.diag_indices_from(gram)] += self.ridge_lambda
        self._weights = np.linalg.solve(gram, features.T @ targets)
        predictions = self.predict_batch(dataset.images)
        return float(
            np.mean(predictions == np.sign(targets).astype(predictions.dtype))
        )

    # -- inference -------------------------------------------------------------

    def predict(self, image: np.ndarray, *, rng: RandomState = None) -> np.ndarray:
        """Predict the (bipolar) product vector for one image."""
        if not self.trained:
            raise PerceptionError("front-end must be fit() before predict()")
        features = self.extractor.extract(image)
        raw = features @ self._weights
        return sign_with_tiebreak(raw, rng=rng, dtype=DEFAULT_DTYPE)

    def predict_batch(
        self, images: np.ndarray, *, rng: RandomState = None
    ) -> np.ndarray:
        if not self.trained:
            raise PerceptionError("front-end must be fit() before predict()")
        features = self.extractor.extract_batch(images)
        raw = features @ self._weights
        generator = as_rng(rng)
        return np.stack(
            [sign_with_tiebreak(row, rng=generator) for row in raw]
        )

    def bit_accuracy(self, dataset: RavenDataset) -> float:
        """Fraction of product-vector bits predicted correctly."""
        predictions = self.predict_batch(dataset.images)
        targets = np.stack(
            [self.encoder.encode(scene) for scene in dataset.scenes]
        )
        return float(np.mean(predictions == targets))
