"""End-to-end neuro-symbolic pipeline (Fig. 7).

Image -> trained linear front-end -> approximate product hypervector ->
H3DFact factorization -> attribute estimates.  The report carries the
paper's metric (attribute estimation accuracy, 99.4 % on RAVEN) plus
per-attribute and whole-scene accuracies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.engine import H3DFact
from repro.errors import PerceptionError
from repro.perception.frontend import LinearFrontend
from repro.perception.raven import RAVEN_ATTRIBUTES, RavenDataset
from repro.utils.rng import RandomState, as_rng
from repro.vsa.encoding import SceneEncoder
from repro.vsa.scene import AttributeScene


@dataclass
class PerceptionReport:
    """Fig. 7 metrics."""

    #: Fraction of (panel, attribute) pairs estimated correctly - the
    #: paper's "99.4 % accuracy of attributes estimation".
    attribute_accuracy: float
    #: Fraction of panels with every attribute correct.
    scene_accuracy: float
    per_attribute_accuracy: Dict[str, float]
    #: Front-end quality: product-vector bit accuracy on the test set.
    frontend_bit_accuracy: float
    mean_iterations: float
    panels: int

    def render(self) -> str:
        lines = [
            "Holographic perception (Fig. 7)",
            f"  panels                {self.panels}",
            f"  front-end bit acc.    {100 * self.frontend_bit_accuracy:.1f} %",
            f"  attribute accuracy    {100 * self.attribute_accuracy:.1f} % "
            f"(paper: 99.4 %)",
            f"  whole-scene accuracy  {100 * self.scene_accuracy:.1f} %",
            f"  mean iterations       {self.mean_iterations:.1f}",
        ]
        for name, acc in self.per_attribute_accuracy.items():
            lines.append(f"    {name:<10} {100 * acc:.1f} %")
        return "\n".join(lines)


class NeuroSymbolicPipeline:
    """Front-end + factorizer, trained and evaluated on RAVEN panels."""

    def __init__(
        self,
        *,
        dim: int = 1024,
        engine: Optional[H3DFact] = None,
        image_size: int = 48,
        rng: RandomState = None,
    ) -> None:
        self._rng = as_rng(rng)
        self.encoder = SceneEncoder(RAVEN_ATTRIBUTES, dim=dim, rng=self._rng)
        self.frontend = LinearFrontend(self.encoder)
        self.engine = engine if engine is not None else H3DFact(rng=self._rng)
        self.image_size = image_size
        self._trained = False

    def train(self, train_panels: int = 3200, *, noise_std: float = 0.01) -> float:
        """Generate a training set and fit the front-end."""
        dataset = RavenDataset.generate(
            train_panels,
            image_size=self.image_size,
            noise_std=noise_std,
            rng=self._rng,
        )
        accuracy = self.frontend.fit(dataset)
        self._trained = True
        return accuracy

    def _factorize_best(
        self,
        product: np.ndarray,
        *,
        max_iterations: int,
        restarts: int = 3,
    ):
        """Factorize with restarts; keep the decode that best recomposes.

        Noisy product vectors have no exact fixed point, so a stochastic
        trajectory occasionally locks onto a neighbouring composition.
        Confidence is the similarity between the recomposed candidate and
        the observed product - exactly the quantity a final clean
        similarity pass provides in hardware - and restarts keep the best.
        """
        best_indices = None
        best_score = -np.inf
        best_iterations = 0
        dim = self.encoder.dim
        for _ in range(max(restarts, 1)):
            result = self.engine.factorize(
                product,
                codebooks=self.encoder.codebooks,
                max_iterations=max_iterations,
                stable_decode_window=8,
            )
            recomposed = self.encoder.codebooks.compose(list(result.indices))
            score = float(
                recomposed.astype(np.int32) @ product.astype(np.int32)
            )
            if score > best_score:
                best_score = score
                best_indices = result.indices
                best_iterations = result.iterations
            # A decode explaining >60 % of the bits is already far above
            # the ~50 % chance floor; stop early.
            if best_score > 0.6 * dim:
                break
        return best_indices, best_iterations

    def infer_scene(self, image: np.ndarray) -> AttributeScene:
        """Full pipeline on one image."""
        if not self._trained:
            raise PerceptionError("pipeline must be train()ed before inference")
        product = self.frontend.predict(image, rng=self._rng)
        indices, _ = self._factorize_best(product, max_iterations=200)
        return self.encoder.decode_indices(list(indices))

    def evaluate(
        self,
        test_panels: int = 200,
        *,
        noise_std: float = 0.01,
        max_iterations: int = 200,
    ) -> PerceptionReport:
        """Generate a test set and measure attribute-estimation accuracy."""
        if not self._trained:
            raise PerceptionError("pipeline must be train()ed before evaluate()")
        dataset = RavenDataset.generate(
            test_panels,
            image_size=self.image_size,
            noise_std=noise_std,
            rng=self._rng,
        )
        bit_accuracy = self.frontend.bit_accuracy(dataset)
        attr_names = [spec.name for spec in RAVEN_ATTRIBUTES]
        attr_hits = {name: 0 for name in attr_names}
        scene_hits = 0
        iterations: List[int] = []
        for panel in dataset.panels:
            product = self.frontend.predict(panel.image, rng=self._rng)
            indices, used_iterations = self._factorize_best(
                product, max_iterations=max_iterations
            )
            iterations.append(used_iterations)
            decoded = self.encoder.decode_indices(list(indices))
            truth = panel.scene.as_dict()
            guess = decoded.as_dict()
            all_correct = True
            for name in attr_names:
                if guess[name] == truth[name]:
                    attr_hits[name] += 1
                else:
                    all_correct = False
            scene_hits += all_correct
        n = len(dataset.panels)
        per_attribute = {name: attr_hits[name] / n for name in attr_names}
        return PerceptionReport(
            attribute_accuracy=float(np.mean(list(per_attribute.values()))),
            scene_accuracy=scene_hits / n,
            per_attribute_accuracy=per_attribute,
            frontend_bit_accuracy=bit_accuracy,
            mean_iterations=float(np.mean(iterations)),
            panels=n,
        )
