"""Synthetic RAVEN-style panels.

RAVEN [34] panels contain objects described by type, size, color and
position.  The generator produces single-object panels over the same
attribute vocabulary; each panel carries its ground-truth
:class:`~repro.vsa.scene.AttributeScene` so attribute-estimation accuracy
(the Fig. 7 metric: 99.4 %) is directly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PerceptionError
from repro.utils.rng import RandomState, as_rng
from repro.vsa.scene import AttributeScene, AttributeSpec

#: RAVEN single-object attribute vocabulary (types/sizes/colors follow the
#: dataset's discretization; positions are the four quadrants).
RAVEN_ATTRIBUTES: Tuple[AttributeSpec, ...] = (
    AttributeSpec("type", ("triangle", "square", "pentagon", "hexagon", "circle")),
    AttributeSpec("size", ("tiny", "small", "medium", "large")),
    AttributeSpec("color", ("white", "light", "dark", "black")),
    AttributeSpec("position", ("top-left", "top-right", "bottom-left", "bottom-right")),
)


@dataclass(frozen=True)
class RavenPanel:
    """One panel: the symbolic scene plus its rendered image."""

    scene: AttributeScene
    image: np.ndarray  # (H, W) float32 in [0, 1]

    def __post_init__(self) -> None:
        if self.image.ndim != 2:
            raise PerceptionError(
                f"panel image must be 2-D, got {self.image.ndim}-D"
            )


@dataclass
class RavenDataset:
    """A collection of panels with train/test helpers."""

    panels: List[RavenPanel]

    def __post_init__(self) -> None:
        if not self.panels:
            raise PerceptionError("dataset must contain at least one panel")

    def __len__(self) -> int:
        return len(self.panels)

    def __getitem__(self, index: int) -> RavenPanel:
        return self.panels[index]

    @property
    def images(self) -> np.ndarray:
        return np.stack([p.image for p in self.panels])

    @property
    def scenes(self) -> List[AttributeScene]:
        return [p.scene for p in self.panels]

    def split(self, train_fraction: float) -> Tuple["RavenDataset", "RavenDataset"]:
        if not 0.0 < train_fraction < 1.0:
            raise PerceptionError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        cut = int(round(train_fraction * len(self.panels)))
        cut = min(max(cut, 1), len(self.panels) - 1)
        return RavenDataset(self.panels[:cut]), RavenDataset(self.panels[cut:])

    @classmethod
    def generate(
        cls,
        count: int,
        *,
        image_size: int = 32,
        noise_std: float = 0.02,
        rng: RandomState = None,
    ) -> "RavenDataset":
        """Generate ``count`` random panels (all attribute combinations may
        appear; sampling is uniform per attribute)."""
        from repro.perception.features import render_panel

        if count <= 0:
            raise PerceptionError(f"count must be positive, got {count}")
        generator = as_rng(rng)
        panels = []
        for _ in range(count):
            scene = AttributeScene.random(RAVEN_ATTRIBUTES, rng=generator)
            image = render_panel(
                scene, image_size=image_size, noise_std=noise_std, rng=generator
            )
            panels.append(RavenPanel(scene=scene, image=image))
        return cls(panels)
