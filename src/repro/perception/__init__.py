"""Holographic visual perception (Fig. 7): images -> attributes.

The paper's neuro-symbolic demo pairs a neural network front-end (ResNet-18
on RAVEN panels) with H3DFact: the network maps an image to an approximate
product hypervector; the factorizer disentangles it into attribute vectors.
This package substitutes the proprietary front-end with a synthetic
RAVEN-style scene generator, a deterministic renderer, and a closed-form
(ridge-regression) trained linear map from pixels to product vectors -
producing exactly the artifact the factorizer consumes: a sign-clipped,
imperfect product vector with front-end noise.
"""

from repro.perception.raven import (
    RAVEN_ATTRIBUTES,
    RavenDataset,
    RavenPanel,
)
from repro.perception.features import FeatureExtractor, render_panel
from repro.perception.frontend import LinearFrontend
from repro.perception.pipeline import NeuroSymbolicPipeline, PerceptionReport

__all__ = [
    "RAVEN_ATTRIBUTES",
    "RavenDataset",
    "RavenPanel",
    "FeatureExtractor",
    "render_panel",
    "LinearFrontend",
    "NeuroSymbolicPipeline",
    "PerceptionReport",
]
