"""Panel rendering and pixel-feature extraction (pure numpy)."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import PerceptionError
from repro.utils.rng import RandomState, as_rng
from repro.vsa.scene import AttributeScene

#: Fill intensities per color value (white objects still have an outline
#: darker than the background, so they remain visible).
_COLOR_LEVELS = {"white": 0.25, "light": 0.5, "dark": 0.75, "black": 1.0}

#: Object radius as a fraction of the quadrant, per size value (RAVEN's
#: size attribute spans 0.4-0.9 of the cell; shapes stay resolvable).
_SIZE_SCALES = {"tiny": 0.45, "small": 0.60, "medium": 0.75, "large": 0.90}

#: Quadrant centers in unit coordinates (x, y with y growing downward).
_POSITIONS = {
    "top-left": (0.25, 0.25),
    "top-right": (0.75, 0.25),
    "bottom-left": (0.25, 0.75),
    "bottom-right": (0.75, 0.75),
}

#: Number of polygon sides per type (circle handled separately).
_TYPE_SIDES = {"triangle": 3, "square": 4, "pentagon": 5, "hexagon": 6}


def _polygon_mask(
    xx: np.ndarray, yy: np.ndarray, cx: float, cy: float, radius: float, sides: int
) -> np.ndarray:
    """Filled regular polygon via the support-function inequality.

    A point is inside the regular ``sides``-gon of circumradius ``radius``
    iff its distance along every face normal is below the apothem.
    """
    dx = xx - cx
    dy = yy - cy
    apothem = radius * np.cos(np.pi / sides)
    inside = np.ones_like(xx, dtype=bool)
    for k in range(sides):
        angle = 2 * np.pi * k / sides + np.pi / 2
        inside &= dx * np.cos(angle) + dy * np.sin(angle) <= apothem
    return inside


def render_panel(
    scene: AttributeScene,
    *,
    image_size: int = 32,
    noise_std: float = 0.02,
    rng: RandomState = None,
) -> np.ndarray:
    """Render a scene to a grayscale image in [0, 1].

    Deterministic geometry plus optional additive pixel noise (sensor
    noise); the *trained* front-end must generalize over this noise, which
    is what makes the predicted product vectors imperfect - the property
    the factorizer is evaluated against.
    """
    if image_size < 8:
        raise PerceptionError(f"image_size must be >= 8, got {image_size}")
    values = scene.as_dict()
    for key in ("type", "size", "color", "position"):
        if key not in values:
            raise PerceptionError(f"scene misses attribute {key!r}: {scene}")
    cx, cy = _POSITIONS[values["position"]]
    radius = 0.25 * _SIZE_SCALES[values["size"]]
    level = _COLOR_LEVELS[values["color"]]

    axis = (np.arange(image_size) + 0.5) / image_size
    xx, yy = np.meshgrid(axis, axis)
    if values["type"] == "circle":
        mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= radius**2
    else:
        mask = _polygon_mask(xx, yy, cx, cy, radius, _TYPE_SIDES[values["type"]])

    image = np.zeros((image_size, image_size), dtype=np.float32)
    image[mask] = level
    if noise_std > 0:
        generator = as_rng(rng)
        image = image + generator.normal(0.0, noise_std, image.shape).astype(
            np.float32
        )
    return np.clip(image, 0.0, 1.0)


class FeatureExtractor:
    """Fixed nonlinear visual features with a linear readout.

    Stands in for the convolutional trunk: a deterministic feature map
    whose linear readout (trained in :class:`~repro.perception.frontend.
    LinearFrontend`) plays the role of the network's final layer.  Because
    binding is multiplicative, the target product vector depends jointly on
    all attributes; the intensity-*binned* mask channels below make each
    (color, shape, position, size) combination nearly orthogonal in feature
    space, which is what lets a linear readout hit it - the same job the
    CNN's nonlinear trunk does in the paper.
    """

    #: Soft intensity bins centered on the renderer's color levels.
    INTENSITY_BINS = (0.25, 0.5, 0.75, 1.0)
    BIN_WIDTH = 0.125

    def __init__(self, pool: int = 4) -> None:
        if pool < 1:
            raise PerceptionError(f"pool must be >= 1, got {pool}")
        self.pool = pool

    def _bin_masks(self, image: np.ndarray) -> np.ndarray:
        """Soft indicator channel per intensity bin, shape (bins, H, W)."""
        masks = []
        for center in self.INTENSITY_BINS:
            masks.append(
                np.exp(-0.5 * ((image - center) / self.BIN_WIDTH) ** 2)
            )
        return np.stack(masks)

    @staticmethod
    def _pool2d(channels: np.ndarray, p: int) -> np.ndarray:
        """Average-pool the trailing two axes by factor ``p``."""
        *lead, h, w = channels.shape
        return channels.reshape(*lead, h // p, p, w // p, p).mean(axis=(-3, -1))

    def extract(self, image: np.ndarray) -> np.ndarray:
        """Feature vector: multi-scale pooled mask channels + edges.

        Full-resolution channels are avoided on purpose: pooling keeps the
        feature (and hence the ridge Gram matrix) small enough to train in
        seconds even for 48-64 px renders, while the 2x-pooled masks retain
        the shape boundary information that separates polygon types.
        """
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise PerceptionError(f"image must be 2-D, got {image.ndim}-D")
        h, w = image.shape
        masks = self._bin_masks(image)
        features = []
        if h % 2 == 0 and w % 2 == 0:
            features.append(self._pool2d(masks, 2).ravel())
            features.append(self._pool2d(image[None], 2).ravel())
        else:
            features.append(masks.ravel())
            features.append(image.ravel())
        p = self.pool
        if h % p == 0 and w % p == 0:
            features.append(self._pool2d(masks, p).ravel())
        grad_x = np.abs(np.diff(image, axis=1)).sum(axis=1)
        grad_y = np.abs(np.diff(image, axis=0)).sum(axis=0)
        features.extend(
            [grad_x, grad_y, np.array([image.mean(), image.std(), 1.0])]
        )
        return np.concatenate(features)

    def extract_batch(self, images: np.ndarray) -> np.ndarray:
        return np.stack([self.extract(img) for img in np.asarray(images)])

    def feature_dim(self, image_size: int) -> int:
        probe = np.zeros((image_size, image_size), dtype=np.float32)
        return self.extract(probe).size
