"""Client-side cluster routing: the Transport over a whole fleet.

:class:`ClusterClient` is the fourth :class:`~repro.service.transport.Transport`
implementation, and the contract is unchanged: seeded requests answer
**bit-identically** whether they run in-process, against one HTTP node,
or across an N-node cluster - topology is an operational choice, never a
numerical one.  The digest-parity suite pins this.

Mechanics, per request:

1. route by the codebook fingerprint
   (:func:`~repro.service.transport.request_routing_key`) through the
   current :class:`~repro.cluster.shardmap.ShardMap` - replica set of R
   nodes, one picked deterministically from the request id
   (:meth:`ShardMap.spread <repro.cluster.shardmap.ShardMap.spread>`);
2. send over that node's :class:`~repro.service.http.client.HTTPTransport`
   with the map's epoch stamped on the body;
3. on failure, classify: ``stale_shardmap`` / connection loss /
   ``worker_lost`` / ``unknown_codebook`` / backpressure are recoverable
   - refresh the shard map from the coordinator, replay any codebook
   registrations the rebalance moved
   (:class:`~repro.cluster.replication.RegistrationLedger`), and try
   again (an unreachable node is excluded until a refresh removes it).
   Anything else propagates typed.

Registrations fan out to all R replicas up front, so single-node deaths
leave every hot codebook set resident somewhere and the retry path is a
re-route, not a re-program.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.cluster.replication import RegistrationLedger
from repro.cluster.shardmap import NodeInfo, ShardMap
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ServiceError,
    StaleShardMapError,
    TransportError,
    UnknownCodebookError,
    WorkerLostError,
)
from repro.service.http.client import HTTPTransport, RetryPolicy
from repro.service.registry import codebook_fingerprint
from repro.service.request import FactorizationRequest, FactorizationResponse
from repro.service.transport import (
    ResponseOrError,
    Transport,
    request_routing_key,
)
from repro.telemetry import get_log
from repro.vsa.codebook import CodebookSet

#: Failures the cluster loop recovers from by refreshing + re-routing.
_RECOVERABLE = (
    StaleShardMapError,
    TransportError,
    WorkerLostError,
    UnknownCodebookError,
    BackpressureError,
)


@dataclass
class ClusterStats:
    """Routing/recovery counters for one cluster client."""

    #: Requests routed (evaluate calls plus scatter positions).
    routed: int = 0
    #: Shard-map fetches (initial + refreshes).
    refreshes: int = 0
    #: Codebook registrations replayed after rebalances.
    replays: int = 0
    #: Requests re-routed after a recoverable failure.
    rerouted: int = 0
    #: Per-node routed counts (observability for the replication spread).
    per_node: Dict[str, int] = field(default_factory=dict)


class ClusterClient(Transport):
    """Transport that routes over every node of a cluster.

    Parameters
    ----------
    coordinator_url:
        Base URL of the coordinator serving ``/shardmap``.  Omit it only
        with a static ``shard_map`` (refreshes then become no-ops, so a
        dead node stays dead - external orchestration's problem).
    shard_map:
        Initial map, skipping the startup fetch (tests and static
        fleets).
    replication:
        Replica fan-out R for codebook registrations; routing spreads
        over the same R nodes.  Clamped per-key to the cluster size.
    retry:
        Cluster-level recovery policy: attempts = distinct
        route-refresh-reroute rounds per request; the backoff ladder
        (with full jitter) sleeps between rounds.
    node_retry:
        Per-node HTTP policy.  Deliberately short by default (2 attempts)
        - the cluster loop is the real retry authority, and hammering a
        dead node delays failover.
    timeout:
        Default serving deadline forwarded with every request.
    jitter_seed:
        Seeds backoff jitter for reproducible timing (results are
        bit-identical regardless).
    """

    def __init__(
        self,
        coordinator_url: Optional[str] = None,
        *,
        shard_map: Optional[ShardMap] = None,
        replication: int = 2,
        retry: Optional[RetryPolicy] = None,
        node_retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if coordinator_url is None and shard_map is None:
            raise ConfigurationError(
                "ClusterClient needs a coordinator_url or a static shard_map"
            )
        if replication <= 0:
            raise ConfigurationError(
                f"replication must be positive, got {replication}"
            )
        self.replication = int(replication)
        self.retry = retry if retry is not None else RetryPolicy()
        self.node_retry = (
            node_retry
            if node_retry is not None
            else RetryPolicy(max_attempts=2, backoff_seconds=(0.02, 0.05))
        )
        self.timeout = timeout
        self._jitter_seed = jitter_seed
        self.stats = ClusterStats()
        self._lock = threading.RLock()
        self._ledger = RegistrationLedger()
        self._transports: Dict[str, HTTPTransport] = {}
        self._coordinator = (
            HTTPTransport(
                coordinator_url,
                retry=self.node_retry,
                jitter_seed=jitter_seed,
            )
            if coordinator_url is not None
            else None
        )
        if shard_map is not None:
            self._map = shard_map
        else:
            self._map = self._fetch_map()

    # -- shard map -----------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        """The routing map currently in use."""
        return self._map

    @property
    def epoch(self) -> int:
        """The epoch of the map currently in use."""
        return self._map.epoch

    def _fetch_map(self) -> ShardMap:
        assert self._coordinator is not None
        payload = self._coordinator.request_json("GET", "/shardmap")
        with self._lock:
            self.stats.refreshes += 1
        return ShardMap.from_payload(payload)

    def refresh(self, *, reason: str = "manual") -> ShardMap:
        """Re-fetch the shard map and replay registrations it moved.

        With a static map (no coordinator) this only re-runs the replay
        diff - useful after manual registrations, harmless otherwise.
        Safe to call concurrently; the whole reconcile runs under the
        client lock.
        """
        with self._lock:
            if self._coordinator is not None:
                new_map = self._fetch_map()
                if new_map.epoch >= self._map.epoch:
                    self._map = new_map
            current = self._map
            # Nodes gone from the map may return as fresh processes with
            # empty registries; drop their transports and placement claims.
            for node_id in list(self._transports):
                if node_id not in current:
                    self._transports.pop(node_id).close()
                    self._ledger.forget_node(node_id)
            replayed = 0
            for key, node_id in self._ledger.missing(
                current, self.replication
            ):
                node = current.node(node_id)
                self._node_transport(node, current.epoch).register_codebooks(
                    self._ledger.codebooks(key)
                )
                self._ledger.record(key, node_id)
                replayed += 1
            self.stats.replays += replayed
            log = get_log()
            if log.enabled:
                log.emit(
                    "cluster.refresh",
                    epoch=current.epoch,
                    reason=reason,
                    replayed=replayed,
                )
            return current

    # -- node transports -----------------------------------------------------

    def _node_transport(self, node: NodeInfo, epoch: int) -> HTTPTransport:
        with self._lock:
            transport = self._transports.get(node.node_id)
            if transport is None:
                transport = HTTPTransport(
                    node.url,
                    retry=self.node_retry,
                    timeout=self.timeout,
                    jitter_seed=self._jitter_seed,
                )
                self._transports[node.node_id] = transport
        transport.epoch = epoch
        return transport

    def _pick(
        self,
        request: FactorizationRequest,
        shard_map: ShardMap,
        banned: Set[str],
    ) -> NodeInfo:
        """Route one request: replica set, deterministic spread, bans last.

        The spread choice is a pure function of (key, request id), so
        identically-seeded workloads route identically run over run; bans
        (unreachable nodes awaiting a map refresh) rotate to the next
        replica and never change results, only which node computes them.
        """
        key = request_routing_key(request)
        replicas = shard_map.replicas(
            key, self.replication, fidelity=request.fidelity
        )
        pick = ShardMap.spread(
            key, request.request_id or str(request.seed), len(replicas)
        )
        for offset in range(len(replicas)):
            node = replicas[(pick + offset) % len(replicas)]
            if node.node_id not in banned:
                return node
        # Every replica is banned: try the primary pick anyway rather than
        # failing without an attempt (the ban list resets per call round).
        return replicas[pick]

    def _record_route(self, node: NodeInfo) -> None:
        with self._lock:
            self.stats.routed += 1
            self.stats.per_node[node.node_id] = (
                self.stats.per_node.get(node.node_id, 0) + 1
            )

    # -- Transport implementation --------------------------------------------

    def evaluate(
        self,
        request: FactorizationRequest,
        *,
        timeout: Optional[float] = None,
    ) -> FactorizationResponse:
        """Route, send, and recover until the retry budget is spent."""
        log = get_log()
        banned: Set[str] = set()
        attempt = 0
        while True:
            attempt += 1
            shard_map = self._map
            node = self._pick(request, shard_map, banned)
            transport = self._node_transport(node, shard_map.epoch)
            try:
                response = transport.evaluate(request, timeout=timeout)
            except _RECOVERABLE as error:
                if attempt >= self.retry.max_attempts:
                    raise
                self._recover(error, node, banned)
                continue
            self._record_route(node)
            if log.enabled:
                log.emit(
                    "cluster.route",
                    trace_id=response.trace_id or request.trace_id,
                    node=node.node_id,
                    epoch=shard_map.epoch,
                    attempt=attempt,
                )
            return response

    def _recover(
        self,
        error: ServiceError,
        node: NodeInfo,
        banned: Set[str],
    ) -> None:
        """Refresh/replay/ban according to what just failed."""
        with self._lock:
            self.stats.rerouted += 1
        if isinstance(error, TransportError):
            # Unreachable node: skip it until a refresh drops it from the
            # map (or its heartbeat resurrects it).
            banned.add(node.node_id)
        if isinstance(error, UnknownCodebookError):
            # The node lost (or never had) the set - e.g. a restart under
            # the same id.  Disown the placement so the refresh's replay
            # re-programs it.
            self._ledger.forget_node(node.node_id)
        self.refresh(reason=type(error).__name__)

    def evaluate_scatter(
        self,
        requests: Sequence[FactorizationRequest],
        *,
        timeout: Optional[float] = None,
    ) -> List[ResponseOrError]:
        """Scatter a batch across the fleet; exactly one outcome per slot.

        Requests group by routed node and the groups run concurrently
        (one thread per node).  Failed positions reroute after a
        refresh, like :meth:`evaluate`; exhausted positions keep their
        last typed error.  Slot order always mirrors ``requests``.
        """
        results: List[Optional[ResponseOrError]] = [None] * len(requests)
        open_positions = list(range(len(requests)))
        banned: Set[str] = set()
        attempt = 0
        while open_positions:
            attempt += 1
            shard_map = self._map
            groups: Dict[str, List[int]] = {}
            chosen: Dict[str, NodeInfo] = {}
            for position in open_positions:
                node = self._pick(requests[position], shard_map, banned)
                groups.setdefault(node.node_id, []).append(position)
                chosen[node.node_id] = node

            def _one_group(node_id: str) -> List[ResponseOrError]:
                node = chosen[node_id]
                positions = groups[node_id]
                transport = self._node_transport(node, shard_map.epoch)
                try:
                    return transport.evaluate_scatter(
                        [requests[position] for position in positions],
                        timeout=timeout,
                    )
                except _RECOVERABLE as error:
                    return [error] * len(positions)

            node_ids = sorted(groups)
            if len(node_ids) == 1:
                outcomes = {node_ids[0]: _one_group(node_ids[0])}
            else:
                with ThreadPoolExecutor(
                    max_workers=len(node_ids),
                    thread_name_prefix="h3dfact-cluster",
                ) as pool:
                    futures = {
                        node_id: pool.submit(_one_group, node_id)
                        for node_id in node_ids
                    }
                    outcomes = {
                        node_id: future.result()
                        for node_id, future in futures.items()
                    }

            still_open: List[int] = []
            recovered: Optional[ServiceError] = None
            for node_id in node_ids:
                node = chosen[node_id]
                for position, outcome in zip(
                    groups[node_id], outcomes[node_id]
                ):
                    if not isinstance(outcome, BaseException):
                        results[position] = outcome
                        self._record_route(node)
                        continue
                    if (
                        isinstance(outcome, _RECOVERABLE)
                        and attempt < self.retry.max_attempts
                    ):
                        still_open.append(position)
                        recovered = outcome
                        if isinstance(outcome, TransportError):
                            banned.add(node.node_id)
                        if isinstance(outcome, UnknownCodebookError):
                            self._ledger.forget_node(node.node_id)
                    else:
                        results[position] = outcome
            open_positions = sorted(still_open)
            if open_positions and recovered is not None:
                with self._lock:
                    self.stats.rerouted += len(open_positions)
                self.refresh(reason=type(recovered).__name__)
        return list(results)  # type: ignore[arg-type]

    def register_codebooks(self, codebooks: CodebookSet) -> str:
        """Register onto all R replica owners; returns the content key.

        The key is computed client-side with the same content hash the
        registry uses, so routing never needs a server round trip first;
        each replica's answer is asserted against it (a mismatch would
        mean a wire corruption, not a version skew).
        """
        key = codebook_fingerprint(codebooks)
        self._ledger.remember(key, codebooks)
        shard_map = self._map
        replicas = shard_map.replicas(key, self.replication)
        for node in replicas:
            answer = self._node_transport(
                node, shard_map.epoch
            ).register_codebooks(codebooks)
            if answer != key:
                raise ServiceError(
                    f"node {node.node_id!r} registered codebooks under "
                    f"{answer!r}, expected {key!r}"
                )
            self._ledger.record(key, node.node_id)
        log = get_log()
        if log.enabled:
            log.emit(
                "cluster.replicate",
                key=key,
                nodes=[node.node_id for node in replicas],
                epoch=shard_map.epoch,
            )
        return key

    def health(self) -> Dict[str, Any]:
        """Fleet liveness: the map plus every node's /health (best effort)."""
        shard_map = self._map
        nodes = {}
        for node in shard_map.nodes:
            try:
                nodes[node.node_id] = self._node_transport(
                    node, shard_map.epoch
                ).health()
            except ServiceError as error:
                nodes[node.node_id] = {
                    "status": "unreachable",
                    "error": str(error),
                }
        status = (
            "ok"
            if all(entry.get("status") == "ok" for entry in nodes.values())
            else "degraded"
        )
        return {
            "status": status,
            "transport": {"transport": "cluster", "epoch": shard_map.epoch},
            "nodes": nodes,
        }

    def metrics(self) -> Dict[str, Any]:
        """Fleet counters: merged node metrics plus this client's stats."""
        from repro.cluster.status import merge_metrics

        shard_map = self._map
        payloads = []
        node_ids = []
        for node in shard_map.nodes:
            try:
                payloads.append(
                    self._node_transport(node, shard_map.epoch).metrics()
                )
                node_ids.append(node.node_id)
            except ServiceError:
                continue
        merged = (
            merge_metrics(payloads, node_ids=node_ids) if payloads else {}
        )
        with self._lock:
            client = {
                "routed": self.stats.routed,
                "refreshes": self.stats.refreshes,
                "replays": self.stats.replays,
                "rerouted": self.stats.rerouted,
                "per_node": dict(self.stats.per_node),
            }
        return {
            "transport": "cluster",
            "epoch": shard_map.epoch,
            "client": client,
            "fleet": merged,
        }

    def close(self) -> None:
        """Drop every node connection (and the coordinator's)."""
        with self._lock:
            for transport in self._transports.values():
                transport.close()
            self._transports.clear()
        if self._coordinator is not None:
            self._coordinator.close()
