"""Hot-codebook replication bookkeeping for the cluster client.

Programming a codebook set onto a node is the expensive, amortized step
(the crossbar-programming analogy the serving tier is built around), so
the cluster must both *fan it out* - registering a hot set on R replica
nodes at registration time - and *replay* it after rebalances, when the
ring hands a fingerprint's arc to a node that has never seen the set.

:class:`RegistrationLedger` is the client-side memory that makes both
idempotent and minimal: it remembers every codebook set the client has
registered (key -> :class:`~repro.vsa.codebook.CodebookSet`) and which
node ids already hold each one.  After a shard-map refresh,
:meth:`missing` diffs the desired placement (the new map's replica sets)
against that memory and returns only the programming calls actually
required - an unchanged map replays nothing.

Registration on the server side is content-addressed (the key *is* the
fingerprint), so replaying to a node that silently already holds the set
is harmless; the ledger exists to avoid the wire cost, not for
correctness.  A node id that drops out of the map keeps its ledger entry:
if the same id rejoins (process restart), :meth:`forget_node` must be
called to force reprogramming, and the
:class:`~repro.cluster.client.ClusterClient` does exactly that on every
refresh for ids that left the map.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Set, Tuple

from repro.cluster.shardmap import ShardMap
from repro.vsa.codebook import CodebookSet


class RegistrationLedger:
    """What has been registered where (client-side, thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sets: Dict[str, CodebookSet] = {}
        self._placed: Dict[str, Set[str]] = {}

    def remember(self, key: str, codebooks: CodebookSet) -> None:
        """Record a codebook set the client wants resident in the cluster."""
        with self._lock:
            self._sets[key] = codebooks
            self._placed.setdefault(key, set())

    def record(self, key: str, node_id: str) -> None:
        """Mark ``key`` as programmed onto ``node_id``."""
        with self._lock:
            self._placed.setdefault(key, set()).add(node_id)

    def placed(self, key: str) -> Tuple[str, ...]:
        """Node ids currently believed to hold ``key`` (sorted)."""
        with self._lock:
            return tuple(sorted(self._placed.get(key, ())))

    def keys(self) -> Tuple[str, ...]:
        """All remembered codebook keys (sorted)."""
        with self._lock:
            return tuple(sorted(self._sets))

    def codebooks(self, key: str) -> CodebookSet:
        """The remembered set for ``key`` (raises ``KeyError`` if unknown)."""
        with self._lock:
            return self._sets[key]

    def forget_node(self, node_id: str) -> None:
        """Drop all placement claims on ``node_id``.

        Called when a node leaves the map: if the same id later rejoins
        it is a fresh process with an empty registry, so everything it
        should hold must be reprogrammed.
        """
        with self._lock:
            for placed in self._placed.values():
                placed.discard(node_id)

    def missing(
        self, shard_map: ShardMap, factor: int
    ) -> List[Tuple[str, str]]:
        """The programming calls a new map requires: ``(key, node_id)`` pairs.

        For every remembered key, diff its replica set under ``shard_map``
        against the nodes already holding it.  Pairs come back sorted so
        replay order is deterministic (and so tests can pin it).
        """
        with self._lock:
            wanted = []
            for key in sorted(self._sets):
                placed = self._placed.get(key, set())
                for node in shard_map.replicas(key, factor):
                    if node.node_id not in placed:
                        wanted.append((key, node.node_id))
            return wanted

    def __len__(self) -> int:
        return len(self._sets)

    def __repr__(self) -> str:
        return f"RegistrationLedger(keys={len(self._sets)})"
