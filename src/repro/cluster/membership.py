"""Cluster membership: the coordinator and the node-side heartbeat agent.

Two halves of one protocol, both deliberately small:

* :class:`ClusterCoordinator` is the control plane's only stateful piece:
  a registry of live :class:`~repro.cluster.shardmap.NodeInfo` records
  plus a monotonic epoch.  Nodes join via ``register``, prove liveness
  via ``heartbeat``, and are expired after ``heartbeat_timeout`` seconds
  of silence (checked lazily on every read - no reaper thread to leak).
  Every membership change bumps the epoch; reads hand out the versioned
  :class:`~repro.cluster.shardmap.ShardMap`.  The coordinator holds *no*
  request-path state, so losing it stalls rebalances but never serving.
* :class:`ClusterNodeAgent` runs inside each serving node: it announces
  the node's URL to the coordinator, heartbeats on a daemon thread, and
  tracks the newest epoch it has heard (from heartbeat answers *and* from
  request bodies, so a node converges as fast as its busiest client).
  The HTTP server consults :attr:`ClusterNodeAgent.epoch` to reject
  requests routed with an older map (the ``stale_shardmap`` envelope).

The coordinator can also be seeded statically
(:meth:`ClusterCoordinator.static`) for fleets managed by external
orchestration: expiry is disabled and the map is pinned at epoch 1.

JSON-facing ``handle_*`` / ``*_payload`` methods let the HTTP layer
dispatch coordinator routes without importing this package's types -
the service tier stays cluster-agnostic.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.cluster.shardmap import NodeInfo, ShardMap
from repro.telemetry import get_log


class _Member:
    """Coordinator-side record: a node plus its last-heard timestamp."""

    __slots__ = ("info", "last_seen")

    def __init__(self, info: NodeInfo, last_seen: float) -> None:
        self.info = info
        self.last_seen = last_seen


class ClusterCoordinator:
    """Versioned membership registry behind ``/shardmap``.

    Parameters
    ----------
    heartbeat_timeout:
        Seconds of heartbeat silence after which a node is expired
        (membership change, epoch bump).  ``None`` disables expiry - the
        static seed-config mode.
    vnodes:
        Virtual nodes per member on the placement ring (forwarded into
        every :class:`ShardMap` this coordinator hands out).
    clock:
        Monotonic time source; tests inject a fake to script expiry.
    """

    def __init__(
        self,
        *,
        heartbeat_timeout: Optional[float] = 5.0,
        vnodes: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        self.heartbeat_timeout = heartbeat_timeout
        self.vnodes = int(vnodes)
        self._clock = clock
        self._lock = threading.Lock()
        self._members: Dict[str, _Member] = {}
        self._epoch = 0
        self._joins = 0
        self._leaves = 0
        self._expired = 0
        self._heartbeats = 0

    @classmethod
    def static(
        cls, nodes: Sequence[NodeInfo], *, vnodes: int = 64
    ) -> "ClusterCoordinator":
        """A coordinator pinned to a fixed membership (no expiry).

        The seed-config mode: external orchestration owns the fleet, so
        the map is epoch 1 forever and heartbeats are accepted but
        meaningless.
        """
        coordinator = cls(heartbeat_timeout=None, vnodes=vnodes)
        for info in nodes:
            coordinator.register(info)
        return coordinator

    # -- internals (callers hold no lock) ------------------------------------

    def _bump_locked(self) -> int:
        self._epoch += 1
        log = get_log()
        if log.enabled:
            log.emit(
                "cluster.epoch",
                epoch=self._epoch,
                nodes=sorted(self._members),
            )
        return self._epoch

    def _expire_locked(self, now: float) -> List[str]:
        """Drop members whose heartbeat went silent; one epoch bump total."""
        if self.heartbeat_timeout is None:
            return []
        stale = [
            node_id
            for node_id, member in self._members.items()
            if now - member.last_seen > self.heartbeat_timeout
        ]
        if not stale:
            return []
        log = get_log()
        for node_id in stale:
            del self._members[node_id]
            self._expired += 1
            if log.enabled:
                log.emit(
                    "cluster.leave",
                    node=node_id,
                    epoch=self._epoch + 1,
                    reason="expired",
                )
        self._bump_locked()
        return stale

    # -- protocol ------------------------------------------------------------

    def register(self, info: NodeInfo) -> int:
        """Join (or refresh) a node; returns the resulting epoch.

        Re-registering an identical record only refreshes the liveness
        timestamp - the epoch moves only when placement could change, so
        a restart-happy node cannot stampede clients into refetch loops.
        """
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            member = self._members.get(info.node_id)
            changed = member is None or member.info != info
            self._members[info.node_id] = _Member(info, now)
            if changed:
                self._joins += 1
                log = get_log()
                if log.enabled:
                    log.emit(
                        "cluster.join",
                        node=info.node_id,
                        url=info.url,
                        epoch=self._epoch + 1,
                    )
                self._bump_locked()
            return self._epoch

    def heartbeat(self, node_id: str) -> Tuple[int, bool]:
        """Record liveness; returns ``(epoch, known)``.

        ``known=False`` tells an expired-but-alive node (e.g. one that
        paused past the timeout) to re-register - heartbeats never
        implicitly resurrect membership, so a resurrection is always a
        visible epoch bump.
        """
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            self._heartbeats += 1
            member = self._members.get(node_id)
            if member is None:
                return self._epoch, False
            member.last_seen = now
            return self._epoch, True

    def leave(self, node_id: str, *, reason: str = "leave") -> int:
        """Graceful departure; returns the resulting epoch."""
        with self._lock:
            self._expire_locked(self._clock())
            if node_id in self._members:
                del self._members[node_id]
                self._leaves += 1
                log = get_log()
                if log.enabled:
                    log.emit(
                        "cluster.leave",
                        node=node_id,
                        epoch=self._epoch + 1,
                        reason=reason,
                    )
                self._bump_locked()
            return self._epoch

    def shard_map(self) -> ShardMap:
        """The current versioned map (expiry applied first)."""
        with self._lock:
            self._expire_locked(self._clock())
            return ShardMap(
                [member.info for member in self._members.values()],
                epoch=self._epoch,
                vnodes=self.vnodes,
            )

    @property
    def epoch(self) -> int:
        """Current membership epoch (0 until the first join)."""
        with self._lock:
            return self._epoch

    # -- JSON facade (what the HTTP routes dispatch to) ----------------------

    def shardmap_payload(self) -> Dict[str, Any]:
        """GET ``/shardmap`` body."""
        return self.shard_map().to_payload()

    def handle_register(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST ``/cluster/register`` body -> ``{"epoch", "heartbeat_timeout"}``."""
        epoch = self.register(NodeInfo.from_payload(payload))
        return {"epoch": epoch, "heartbeat_timeout": self.heartbeat_timeout}

    def handle_heartbeat(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST ``/cluster/heartbeat`` body -> ``{"epoch", "known"}``."""
        node_id = payload.get("node_id")
        if not node_id:
            raise ConfigurationError("heartbeat body needs a 'node_id'")
        epoch, known = self.heartbeat(str(node_id))
        return {"epoch": epoch, "known": known}

    def handle_leave(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST ``/cluster/leave`` body -> ``{"epoch"}``."""
        node_id = payload.get("node_id")
        if not node_id:
            raise ConfigurationError("leave body needs a 'node_id'")
        return {"epoch": self.leave(str(node_id))}

    def status_payload(self) -> Dict[str, Any]:
        """GET ``/cluster/status`` body: membership + protocol counters."""
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            return {
                "epoch": self._epoch,
                "heartbeat_timeout": self.heartbeat_timeout,
                "nodes": [
                    {
                        **member.info.to_payload(),
                        "age_seconds": now - member.last_seen,
                    }
                    for member in sorted(
                        self._members.values(),
                        key=lambda member: member.info.node_id,
                    )
                ],
                "counters": {
                    "joins": self._joins,
                    "leaves": self._leaves,
                    "expired": self._expired,
                    "heartbeats": self._heartbeats,
                },
            }


class ClusterNodeAgent:
    """A serving node's membership half: announce, heartbeat, track epoch.

    Constructed alongside the node's HTTP server and announced once the
    server knows its bound URL.  The heartbeat loop runs on a daemon
    thread; when the coordinator answers ``known=False`` (the node was
    expired while alive, e.g. a long GC-like stall) the agent re-registers
    itself - rejoining is automatic, but always epoch-visible.
    """

    def __init__(
        self,
        node_id: str,
        coordinator_url: str,
        *,
        fidelities: Sequence[str] = (),
        heartbeat_seconds: float = 0.5,
        transport_factory: Optional[Callable[[str], Any]] = None,
    ) -> None:
        if heartbeat_seconds <= 0:
            raise ConfigurationError(
                f"heartbeat_seconds must be positive, got {heartbeat_seconds}"
            )
        self.node_id = str(node_id)
        self.coordinator_url = coordinator_url
        self.fidelities = tuple(fidelities)
        self.heartbeat_seconds = heartbeat_seconds
        self.url: Optional[str] = None
        self._epoch = 0
        self._epoch_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if transport_factory is None:
            from repro.service.http.client import HTTPTransport, RetryPolicy

            transport_factory = lambda url: HTTPTransport(  # noqa: E731
                url, retry=RetryPolicy(max_attempts=2, jitter="none")
            )
        self._transport = transport_factory(coordinator_url)

    @property
    def epoch(self) -> int:
        """Newest membership epoch this node has heard of."""
        with self._epoch_lock:
            return self._epoch

    def observe_epoch(self, epoch: Optional[int]) -> None:
        """Fast-forward from an epoch seen in a request body.

        A client that refreshed before our heartbeat landed knows the
        future; adopting its epoch immediately tightens the stale window
        to one round trip.  Epochs never move backwards.
        """
        if epoch is None:
            return
        with self._epoch_lock:
            if epoch > self._epoch:
                self._epoch = int(epoch)

    def info(self) -> NodeInfo:
        """This node's membership record (requires :meth:`announce`)."""
        if self.url is None:
            raise ConfigurationError(
                f"node {self.node_id!r} has not announced a url yet"
            )
        return NodeInfo(self.node_id, self.url, self.fidelities)

    # -- lifecycle -----------------------------------------------------------

    def _register(self) -> None:
        answer = self._transport.request_json(
            "POST", "/cluster/register", self.info().to_payload()
        )
        self.observe_epoch(answer.get("epoch"))

    def announce(self, url: str) -> "ClusterNodeAgent":
        """Register ``url`` with the coordinator and start heartbeating."""
        self.url = url
        self._register()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"h3dfact-heartbeat-{self.node_id}",
                daemon=True,
            )
            self._thread.start()
        return self

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_seconds):
            try:
                answer = self._transport.request_json(
                    "POST", "/cluster/heartbeat", {"node_id": self.node_id}
                )
            except Exception:
                # Coordinator unreachable: keep serving, keep trying.  The
                # data plane never depends on the control plane being up.
                continue
            self.observe_epoch(answer.get("epoch"))
            if not answer.get("known", True):
                try:
                    self._register()
                except Exception:
                    continue

    def close(self, *, leave: bool = True) -> None:
        """Stop heartbeating and (best-effort) deregister."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if leave:
            try:
                self._transport.request_json(
                    "POST", "/cluster/leave", {"node_id": self.node_id}
                )
            except Exception:
                pass
        self._transport.close()
