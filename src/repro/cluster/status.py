"""Fleet-wide metrics aggregation: one view over N ``/metrics`` payloads.

The serving tier's ``/metrics`` endpoint is per-process by design; a
cluster operator wants the fleet.  This module merges node payloads into
one view with the only rules that are statistically honest:

* **counters** (ints) sum;
* **fixed-bucket histograms** (the ``{"bounds", "counts", "count",
  "mean"}`` shape of :meth:`repro.telemetry.metrics.Histogram.to_dict`)
  merge bucket-wise - counts add exactly, the mean recombines weighted
  by count, and percentiles are re-derived from the merged buckets;
* **non-additive scalars** (means, percentile samples, rates, uptimes)
  are *dropped*, not averaged - averaging per-node percentiles is the
  classic aggregation lie, and the merged histogram already answers the
  question correctly.

This is why the HTTP server grew a fixed-bucket latency histogram next
to its percentile window: the window is more precise per node, but only
the histogram survives aggregation.  ``h3dfact cluster status`` is the
CLI face of :func:`merge_metrics`.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Scalar keys that cannot be merged by addition (dropped from the
#: fleet view; read them per node instead).
_NON_ADDITIVE = re.compile(r"(^|_)(mean|p\d+|rate|uptime|age|timeout)")

_HISTOGRAM_KEYS = frozenset(("bounds", "counts", "count", "mean"))

#: Sentinel distinguishing "drop this key" from a legitimate ``None``.
_DROP = object()


def _is_histogram(value: Any) -> bool:
    """True for the JSON form of a fixed-bucket histogram."""
    return isinstance(value, dict) and _HISTOGRAM_KEYS.issubset(value.keys())


def merge_histograms(payloads: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge histogram dicts bucket-wise (bounds must match exactly).

    Counts add, the total adds, and the mean recombines as a
    count-weighted average - all exact, because the buckets are fixed at
    construction fleet-wide (:data:`~repro.telemetry.metrics.LATENCY_MS_BUCKETS`
    and friends are constants, not per-node choices).
    """
    if not payloads:
        raise ConfigurationError("no histograms to merge")
    bounds = list(payloads[0]["bounds"])
    counts = [0] * len(payloads[0]["counts"])
    total = 0
    weighted = 0.0
    for payload in payloads:
        if list(payload["bounds"]) != bounds:
            raise ConfigurationError(
                f"histogram bounds differ across nodes: {bounds} vs "
                f"{payload['bounds']}"
            )
        if len(payload["counts"]) != len(counts):
            raise ConfigurationError("histogram bucket counts differ in length")
        for index, count in enumerate(payload["counts"]):
            counts[index] += int(count)
        total += int(payload["count"])
        weighted += float(payload["mean"]) * int(payload["count"])
    return {
        "bounds": bounds,
        "counts": counts,
        "count": total,
        "mean": weighted / total if total else 0.0,
    }


def histogram_percentiles(
    histogram: Dict[str, Any],
    fractions: Sequence[float] = (0.50, 0.95, 0.99),
) -> Dict[str, float]:
    """Nearest-rank percentile estimates from a histogram's JSON form.

    Mirrors :meth:`repro.telemetry.metrics.Histogram.percentile`: each
    estimate is the upper bound of the bucket holding the ranked
    observation (the last finite bound for overflow ranks).  Keys are
    ``p50`` / ``p95`` / ... plus ``samples``.
    """
    bounds = histogram["bounds"]
    counts = histogram["counts"]
    total = int(histogram["count"])
    answer: Dict[str, float] = {"samples": total}
    for fraction in fractions:
        name = f"p{int(round(fraction * 100))}"
        if not total:
            answer[name] = 0.0
            continue
        rank = min(total - 1, max(0, int(fraction * total)))
        cumulative = 0
        value = float(bounds[-1])
        for index, count in enumerate(counts):
            cumulative += count
            if rank < cumulative:
                value = float(bounds[min(index, len(bounds) - 1)])
                break
        answer[name] = value
    return answer


def _merge_values(key: str, values: List[Any]) -> Any:
    """Merge one key's values across nodes (``_DROP`` = omit the key)."""
    present = [value for value in values if value is not None]
    if not present:
        return None
    if all(_is_histogram(value) for value in present):
        return merge_histograms(present)
    if all(isinstance(value, dict) for value in present):
        merged = {}
        for child in sorted({name for value in present for name in value}):
            outcome = _merge_values(
                child, [value.get(child) for value in present]
            )
            if outcome is not _DROP:
                merged[child] = outcome
        return merged
    if all(isinstance(value, bool) for value in present):
        return any(present)
    if all(isinstance(value, int) for value in present):
        return sum(present)
    if all(isinstance(value, (int, float)) for value in present):
        if _NON_ADDITIVE.search(key):
            return _DROP
        return sum(float(value) for value in present)
    if all(isinstance(value, str) for value in present):
        distinct = sorted(set(present))
        return distinct[0] if len(distinct) == 1 else distinct
    # Lists (e.g. per-shard detail) and mixed types do not aggregate.
    return _DROP


def merge_metrics(
    payloads: Sequence[Dict[str, Any]],
    *,
    node_ids: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """One fleet view over per-node ``/metrics`` payloads.

    Generic counter/histogram merging via :func:`_merge_values`, plus the
    latency special case: the per-node percentile windows (``latency``,
    ``latency_by_path``) are replaced by percentiles re-derived from the
    merged ``latency_histogram``, the only latency statistic that
    aggregates without lying.
    """
    if not payloads:
        raise ConfigurationError("no node metrics to merge")
    merged = {}
    for key in sorted({name for payload in payloads for name in payload}):
        if key in ("latency", "latency_by_path", "node"):
            continue
        if key == "epoch":
            # Node epochs converge via heartbeat; the fleet view reports
            # the newest (summing version numbers would be nonsense).
            merged["epoch"] = max(
                int(payload.get("epoch", 0)) for payload in payloads
            )
            continue
        outcome = _merge_values(
            key, [payload.get(key) for payload in payloads]
        )
        if outcome is not _DROP:
            merged[key] = outcome
    histogram = merged.get("latency_histogram")
    if _is_histogram(histogram):
        merged["latency"] = {
            f"{name}_ms" if name.startswith("p") else name: value
            for name, value in histogram_percentiles(histogram).items()
        }
    merged["nodes"] = (
        sorted(node_ids) if node_ids is not None else len(payloads)
    )
    return merged
