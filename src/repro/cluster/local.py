"""Self-hosted localhost clusters: N nodes + coordinator in one call.

:class:`LocalCluster` boots the whole control plane on 127.0.0.1
ephemeral ports: a coordinator-only
:class:`~repro.service.http.server.H3DFactHTTPServer` plus N serving
nodes, each announcing itself and heartbeating.  Two node modes:

* **threaded** (default): nodes are servers in this process - cheap,
  fast to boot, right for protocol and determinism tests.  "Crashing" a
  threaded node (:meth:`LocalCluster.kill_node`) closes its socket and
  silences its heartbeat *without* a graceful leave, so the coordinator
  must expire it - the same observable sequence as a real death.
* **subprocess** (``processes=True``): each node is a forked process
  running :func:`_node_main` - real parallelism across cores (the
  cluster throughput bench needs this; threaded nodes share one GIL) and
  real SIGKILL (the fault suite kills a node mid-load and asserts the
  retrying client still returns exactly one response per request id).

Node processes bind port 0 and *announce* their ephemeral URL, so no
port coordination is needed; the parent just waits for membership to
reach N.  ``h3dfact loadgen --cluster N`` is the CLI face of this class.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Any, Dict, List, Optional

from repro.cluster.client import ClusterClient
from repro.cluster.membership import ClusterCoordinator, ClusterNodeAgent
from repro.errors import ConfigurationError
from repro.service.http.server import H3DFactHTTPServer


def _build_transport(options: Dict[str, Any]):
    """A node's serving transport from picklable options.

    ``shards=0`` (the default) is the in-process scheduler - the right
    choice for subprocess nodes, where the *node* is already the unit of
    parallelism and nested worker pools would only multiply processes.
    """
    from repro.service.scheduler import BatchPolicy, FactorizationService
    from repro.service.transport import InProcessTransport
    from repro.service.workers import ShardedWorkerPool, WorkerPoolConfig

    shards = int(options.get("shards", 0))
    policy = dict(
        max_batch_size=int(options.get("batch", 8)),
        queue_capacity=int(options.get("capacity", 256)),
        backpressure=str(options.get("backpressure", "block")),
    )
    if shards <= 0:
        return InProcessTransport(FactorizationService(policy=BatchPolicy(**policy)))
    return ShardedWorkerPool(WorkerPoolConfig(shards=shards, **policy))


def _node_main(
    node_id: str, coordinator_url: str, options: Dict[str, Any]
) -> None:
    """Entry point of one subprocess node (importable, so fork and spawn
    start methods both work).

    Builds the transport, binds an ephemeral port, announces the bound
    URL to the coordinator, then serves until SIGTERM (graceful: leaves
    the cluster) or SIGKILL (the fault tests' case: the coordinator must
    notice via heartbeat expiry).
    """
    transport = _build_transport(options)
    agent = ClusterNodeAgent(
        node_id,
        coordinator_url,
        fidelities=tuple(options.get("fidelities", ())),
        heartbeat_seconds=float(options.get("heartbeat_seconds", 0.25)),
    )
    server = H3DFactHTTPServer(
        transport,
        host=str(options.get("host", "127.0.0.1")),
        own_transport=True,
        node=agent,
    )

    def _terminate(signum: int, frame: Any) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    try:
        agent.announce(server.url)
        server.serve_forever()
    except SystemExit:
        pass
    finally:
        server.close()


class _ThreadedNode:
    """One in-process node: transport + server + membership agent."""

    def __init__(
        self, node_id: str, coordinator_url: str, options: Dict[str, Any]
    ) -> None:
        self.node_id = node_id
        self.agent = ClusterNodeAgent(
            node_id,
            coordinator_url,
            fidelities=tuple(options.get("fidelities", ())),
            heartbeat_seconds=float(options.get("heartbeat_seconds", 0.25)),
        )
        self.server = H3DFactHTTPServer(
            _build_transport(options),
            host=str(options.get("host", "127.0.0.1")),
            own_transport=True,
            node=self.agent,
        ).start()
        self.agent.announce(self.server.url)

    def crash(self) -> None:
        """Die without saying goodbye: no /cluster/leave, socket closed."""
        self.server.node = None  # the server must not leave on our behalf
        self.agent.close(leave=False)
        self.server.close()

    def close(self) -> None:
        """Graceful shutdown (the agent's leave rides server.close)."""
        self.server.close()


class _ProcessNode:
    """One subprocess node (fork): holds the handle, kills by signal."""

    def __init__(
        self, node_id: str, coordinator_url: str, options: Dict[str, Any]
    ) -> None:
        self.node_id = node_id
        context = multiprocessing.get_context("fork")
        self.process = context.Process(
            target=_node_main,
            args=(node_id, coordinator_url, options),
            name=f"h3dfact-node-{node_id}",
            daemon=True,
        )
        self.process.start()

    def crash(self) -> None:
        """SIGKILL: no leave, no flush, no cleanup - the real failure mode."""
        if self.process.pid is not None and self.process.is_alive():
            os.kill(self.process.pid, signal.SIGKILL)
        self.process.join(timeout=10.0)

    def close(self) -> None:
        """SIGTERM for a graceful exit; escalate if the node hangs."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)


class LocalCluster:
    """A coordinator plus N serving nodes on localhost ephemeral ports.

    Parameters mirror the CLI: ``shards_per_node`` > 0 gives each node a
    nested worker pool (threaded mode only makes sense there);
    ``processes=True`` forks one OS process per node; ``port`` fixes the
    coordinator's listen port (0 = ephemeral — nodes always bind
    ephemerally and announce their URL).  ``node_options`` passes
    through to every node (batch, capacity, backpressure, fidelities,
    heartbeat_seconds).
    """

    def __init__(
        self,
        nodes: int = 3,
        *,
        processes: bool = False,
        shards_per_node: int = 0,
        heartbeat_timeout: float = 5.0,
        vnodes: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
        node_options: Optional[Dict[str, Any]] = None,
        boot_timeout: float = 30.0,
    ) -> None:
        if nodes <= 0:
            raise ConfigurationError(f"nodes must be positive, got {nodes}")
        options = dict(node_options or {})
        options.setdefault("host", host)
        options["shards"] = shards_per_node
        self.coordinator = ClusterCoordinator(
            heartbeat_timeout=heartbeat_timeout, vnodes=vnodes
        )
        self.coordinator_server = H3DFactHTTPServer(
            None, host=host, port=port, coordinator=self.coordinator
        ).start()
        self.coordinator_url = self.coordinator_server.url
        node_cls = _ProcessNode if processes else _ThreadedNode
        self.nodes: List[Any] = [
            node_cls(f"node{index}", self.coordinator_url, options)
            for index in range(nodes)
        ]
        self._await_membership(nodes, boot_timeout)

    def _await_membership(self, count: int, timeout: float) -> None:
        """Block until ``count`` nodes joined (subprocess boots race us)."""
        deadline = time.monotonic() + timeout
        while len(self.coordinator.shard_map()) < count:
            if time.monotonic() > deadline:
                raise ConfigurationError(
                    f"cluster boot timed out: "
                    f"{len(self.coordinator.shard_map())}/{count} nodes "
                    f"joined within {timeout}s"
                )
            time.sleep(0.02)

    def client(self, **kwargs: Any) -> ClusterClient:
        """A :class:`ClusterClient` pointed at this cluster's coordinator."""
        return ClusterClient(self.coordinator_url, **kwargs)

    def kill_node(self, index: int) -> str:
        """Crash node ``index`` (SIGKILL / silent close); returns its id.

        The node does *not* leave gracefully: the coordinator finds out
        through heartbeat expiry, clients through connection errors -
        exactly the sequence the fault-tolerance tests exercise.
        """
        node = self.nodes[index]
        node.crash()
        return node.node_id

    def close(self) -> None:
        """Stop every node, then the coordinator."""
        for node in self.nodes:
            try:
                node.close()
            except Exception:
                pass
        self.coordinator_server.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
