"""Multi-host serving: shard maps, membership, client-side routing.

``repro.cluster`` turns N independent ``h3dfact serve`` processes into
one logical service.  The pieces, smallest-first:

* :mod:`~repro.cluster.shardmap` - the versioned routing contract: an
  epoch, the member nodes, and consistent-hash placement of codebook
  fingerprints (minimal key movement on membership churn);
* :mod:`~repro.cluster.membership` - the coordinator (join / heartbeat /
  expiry, epoch bumps) and the node-side heartbeat agent;
* :mod:`~repro.cluster.replication` - client-side bookkeeping that fans
  hot codebook registrations out to R replicas and replays them after
  rebalances;
* :mod:`~repro.cluster.client` - :class:`ClusterClient`, the Transport
  that routes client-side, stamps epochs, and recovers from stale maps,
  node deaths and moved codebooks by refresh + re-route;
* :mod:`~repro.cluster.status` - fleet-wide ``/metrics`` merging
  (counters summed, fixed-bucket histograms merged bucket-wise);
* :mod:`~repro.cluster.local` - :class:`LocalCluster`, a whole cluster
  on localhost ephemeral ports (threaded or real subprocesses).

The invariant the whole package defends: a seeded workload's digest is
**bit-identical** across in-process, single-node HTTP, and N-node
cluster topologies - and across a node SIGKILL mid-load.  Routing decides
*where* a request computes, never *what* it computes.
"""

from __future__ import annotations

from repro.cluster.client import ClusterClient, ClusterStats
from repro.cluster.local import LocalCluster
from repro.cluster.membership import ClusterCoordinator, ClusterNodeAgent
from repro.cluster.replication import RegistrationLedger
from repro.cluster.shardmap import KNOWN_FIDELITIES, NodeInfo, ShardMap
from repro.cluster.status import (
    histogram_percentiles,
    merge_histograms,
    merge_metrics,
)

__all__ = [
    "ClusterClient",
    "ClusterCoordinator",
    "ClusterNodeAgent",
    "ClusterStats",
    "KNOWN_FIDELITIES",
    "LocalCluster",
    "NodeInfo",
    "RegistrationLedger",
    "ShardMap",
    "histogram_percentiles",
    "merge_histograms",
    "merge_metrics",
]
