"""Versioned shard maps: who owns which codebook fingerprints, fleet-wide.

A :class:`ShardMap` is the cluster's routing contract: an **epoch**
(monotonic version, bumped by the coordinator on every membership
change), the member :class:`NodeInfo` records (node id, base URL,
fidelity capabilities), and the consistent-hash placement rule built on
:class:`~repro.service.sharding.ConsistentHashRing` over the node *ids*.
Hashing ids rather than dense indices is what makes membership churn
minimal-movement: a node that joins or leaves moves only the keys on its
own ring arcs, ~1/N of the key space (the property test in
``tests/test_service_sharding.py`` pins this).

The map is a pure value: two parties holding equal maps route every key
identically, which is what lets routing live *client-side* (no proxy
hop) - the :class:`~repro.cluster.client.ClusterClient` fetches the map
from the coordinator's ``/shardmap`` endpoint, routes each request by
codebook fingerprint locally, and refreshes only when a node answers
with the typed ``stale_shardmap`` envelope.

Replication rides the same ring: :meth:`ShardMap.replicas` returns the
first R *distinct* nodes clockwise of a key, so a hot codebook set is
programmed onto R nodes and its traffic spreads over all of them (one
hot set is no longer one node's problem).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.service.sharding import ConsistentHashRing

#: Fidelity names a node may advertise (mirrors the serving profiles).
KNOWN_FIDELITIES = ("baseline", "statistical", "crossbar", "sram", "hybrid")


@dataclass(frozen=True)
class NodeInfo:
    """One serving node's identity, address and capabilities."""

    #: Stable node identifier (hashes onto the ring; survives remaps).
    node_id: str
    #: Base URL of the node's HTTP serving tier (``http://host:port``).
    url: str
    #: Fidelity profiles this node can execute; empty tuple = all of them
    #: (a homogeneous fleet never needs to spell them out).
    fidelities: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ConfigurationError("node_id must be non-empty")
        if not self.url:
            raise ConfigurationError(f"node {self.node_id!r} needs a url")
        object.__setattr__(
            self, "fidelities", tuple(str(f) for f in self.fidelities)
        )
        for fidelity in self.fidelities:
            if fidelity not in KNOWN_FIDELITIES:
                raise ConfigurationError(
                    f"node {self.node_id!r} advertises unknown fidelity "
                    f"{fidelity!r} (known: {KNOWN_FIDELITIES})"
                )

    def supports(self, fidelity: Optional[str]) -> bool:
        """True when this node can execute ``fidelity`` requests.

        ``None`` (the request did not name a profile) and an empty
        capability tuple (the node did not restrict itself) both mean
        "anything goes".
        """
        if fidelity is None or not self.fidelities:
            return True
        return fidelity in self.fidelities

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form (the ``/shardmap`` wire format)."""
        return {
            "node_id": self.node_id,
            "url": self.url,
            "fidelities": list(self.fidelities),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "NodeInfo":
        """Invert :meth:`to_payload` (re-runs validation)."""
        try:
            return cls(
                node_id=str(payload["node_id"]),
                url=str(payload["url"]),
                fidelities=tuple(payload.get("fidelities") or ()),
            )
        except (KeyError, TypeError) as error:
            raise ConfigurationError(
                f"malformed node payload: {error}"
            ) from None


class ShardMap:
    """Immutable, versioned placement of codebook keys onto nodes.

    Routing is a pure function of ``(epoch is irrelevant, nodes, vnodes)``
    - the epoch only *names* the version so nodes can reject requests
    routed with an older map (the ``stale_shardmap`` protocol).  Nodes
    are kept sorted by id so two maps built from the same membership in
    any order compare equal.
    """

    def __init__(
        self,
        nodes: Sequence[NodeInfo],
        *,
        epoch: int = 1,
        vnodes: int = 64,
    ) -> None:
        if epoch < 0:
            raise ConfigurationError(f"epoch must be >= 0, got {epoch}")
        ordered = tuple(sorted(nodes, key=lambda node: node.node_id))
        ids = [node.node_id for node in ordered]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate node ids: {ids}")
        self.epoch = int(epoch)
        self.nodes = ordered
        self.vnodes = int(vnodes)
        self._by_id = {node.node_id: node for node in ordered}
        # Rings are built lazily per fidelity-eligible subset and cached:
        # a homogeneous fleet builds exactly one.
        self._rings: Dict[Tuple[str, ...], ConsistentHashRing] = {}

    # -- membership ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._by_id

    def node(self, node_id: str) -> NodeInfo:
        """The member with ``node_id`` (raises on unknown ids)."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise ConfigurationError(
                f"no node {node_id!r} in shard map epoch {self.epoch}"
            ) from None

    def node_ids(self) -> Tuple[str, ...]:
        """All member ids, sorted."""
        return tuple(node.node_id for node in self.nodes)

    # -- routing -------------------------------------------------------------

    def _ring_for(self, fidelity: Optional[str]) -> ConsistentHashRing:
        """The ring over nodes eligible to serve ``fidelity``."""
        eligible = tuple(
            node.node_id for node in self.nodes if node.supports(fidelity)
        )
        if not eligible:
            raise ConfigurationError(
                f"no node in shard map epoch {self.epoch} supports "
                f"fidelity {fidelity!r}"
            )
        ring = self._rings.get(eligible)
        if ring is None:
            ring = ConsistentHashRing(eligible, vnodes=self.vnodes)
            self._rings[eligible] = ring
        return ring

    def route(self, key: str, *, fidelity: Optional[str] = None) -> NodeInfo:
        """The primary owner of ``key`` among ``fidelity``-capable nodes."""
        if not self.nodes:
            raise ConfigurationError(
                f"shard map epoch {self.epoch} has no nodes"
            )
        return self._by_id[self._ring_for(fidelity).route(key)]

    def replicas(
        self, key: str, factor: int, *, fidelity: Optional[str] = None
    ) -> List[NodeInfo]:
        """The replica set of ``key``: the first ``factor`` distinct owners.

        Entry 0 is the primary (identical to :meth:`route`); the factor
        is clamped to the number of eligible nodes, so a single-node
        cluster with R=2 degrades gracefully to one replica.
        """
        if not self.nodes:
            raise ConfigurationError(
                f"shard map epoch {self.epoch} has no nodes"
            )
        ring = self._ring_for(fidelity)
        return [self._by_id[owner] for owner in ring.successors(key, factor)]

    @staticmethod
    def spread(key: str, salt: str, count: int) -> int:
        """Deterministic replica pick in ``[0, count)`` for one request.

        Hashing ``key`` with a per-request ``salt`` (the request id or
        seed) spreads a hot codebook's traffic uniformly over its replica
        set while staying a pure function of the request - so two
        identically-seeded load generators route identically and the
        digest contract holds.
        """
        if count <= 1:
            return 0
        digest = hashlib.sha256(f"{key}|{salt}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % count

    # -- codec ---------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form: the GET ``/shardmap`` response body."""
        return {
            "epoch": self.epoch,
            "vnodes": self.vnodes,
            "nodes": [node.to_payload() for node in self.nodes],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ShardMap":
        """Invert :meth:`to_payload` (re-runs validation)."""
        try:
            return cls(
                [NodeInfo.from_payload(entry) for entry in payload["nodes"]],
                epoch=int(payload["epoch"]),
                vnodes=int(payload.get("vnodes", 64)),
            )
        except (KeyError, TypeError) as error:
            raise ConfigurationError(
                f"malformed shard map payload: {error}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.epoch == other.epoch
            and self.nodes == other.nodes
            and self.vnodes == other.vnodes
        )

    def __repr__(self) -> str:
        return (
            f"ShardMap(epoch={self.epoch}, nodes={list(self.node_ids())}, "
            f"vnodes={self.vnodes})"
        )
