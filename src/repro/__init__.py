"""H3DFact reproduction: holographic factorization on heterogeneous 3D CIM.

Public API entry points:

* :class:`repro.resonator.FactorizationProblem` / ``ResonatorNetwork`` -
  the factorization algorithm.
* :class:`repro.core.H3DFact` - the full engine (resonator + RRAM noise +
  architecture + PPA/thermal reporting).
* :mod:`repro.experiments` - one driver per paper table/figure.
"""

from repro.errors import ReproError
from repro.resonator.network import (
    FactorizationProblem,
    FactorizationResult,
    ResonatorNetwork,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "FactorizationProblem",
    "FactorizationResult",
    "ResonatorNetwork",
]
