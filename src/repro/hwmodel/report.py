"""Table III report: side-by-side comparison of the three designs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.designs import (
    Design,
    h3d_design,
    hybrid_2d_design,
    sram_2d_design,
)
from repro.errors import HardwareModelError
from repro.hwmodel.metrics import DesignMetrics, evaluate_design

#: Column order of the printed table (matches Table III).
COLUMNS = (
    "design",
    "adc_count",
    "tsv_count",
    "area_mm2",
    "frequency_mhz",
    "throughput_tops",
    "compute_density_tops_mm2",
    "energy_efficiency_tops_w",
    "accuracy_pct",
)


@dataclass
class Table3Report:
    """Evaluated metrics for all designs plus derived comparison ratios."""

    metrics: List[DesignMetrics]

    def __post_init__(self) -> None:
        if not self.metrics:
            raise HardwareModelError("report requires at least one design")
        self._by_style = {m.design.style.value: m for m in self.metrics}

    def metric(self, style: str) -> DesignMetrics:
        if style not in self._by_style:
            raise HardwareModelError(
                f"no design of style {style!r}; have {sorted(self._by_style)}"
            )
        return self._by_style[style]

    # -- headline ratios (abstract / Sec. V-B claims) ----------------------

    @property
    def footprint_saving_vs_hybrid(self) -> float:
        """Paper: 5.9x less silicon footprint."""
        return (
            self.metric("hybrid-2d").footprint_mm2
            / self.metric("h3d").footprint_mm2
        )

    @property
    def footprint_saving_vs_sram(self) -> float:
        """Paper: 1.25x."""
        return (
            self.metric("sram-2d").footprint_mm2 / self.metric("h3d").footprint_mm2
        )

    @property
    def density_gain_vs_sram(self) -> float:
        """Paper: 5.5x compute density (abstract) vs the hybrid 2D design."""
        return (
            self.metric("h3d").compute_density_tops_mm2
            / self.metric("hybrid-2d").compute_density_tops_mm2
        )

    @property
    def density_gain_vs_sram2d(self) -> float:
        """H3D vs fully-SRAM 2D compute density (paper: 1.2x in Sec. V-B)."""
        return (
            self.metric("h3d").compute_density_tops_mm2
            / self.metric("sram-2d").compute_density_tops_mm2
        )

    @property
    def efficiency_gain_vs_sram(self) -> float:
        """Paper: 1.2x energy efficiency vs the fully-SRAM design."""
        return (
            self.metric("h3d").tops_per_watt / self.metric("sram-2d").tops_per_watt
        )

    # -- rendering ----------------------------------------------------------

    def rows(self) -> List[Dict[str, object]]:
        return [m.row() for m in self.metrics]

    def render(self) -> str:
        rows = self.rows()
        widths = {
            col: max(len(col), *(len(str(r[col])) for r in rows)) for col in COLUMNS
        }
        header = "  ".join(col.ljust(widths[col]) for col in COLUMNS)
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                "  ".join(str(row[col]).ljust(widths[col]) for col in COLUMNS)
            )
        lines.append("")
        lines.append(
            f"footprint saving vs hybrid-2D: {self.footprint_saving_vs_hybrid:.2f}x"
            f" (paper: 5.97x)"
        )
        lines.append(
            f"footprint saving vs SRAM-2D:   {self.footprint_saving_vs_sram:.2f}x"
            f" (paper: 1.25x)"
        )
        lines.append(
            f"compute density vs hybrid-2D:  {self.density_gain_vs_sram:.2f}x"
            f" (paper: 5.5x)"
        )
        lines.append(
            f"energy efficiency vs SRAM-2D:  {self.efficiency_gain_vs_sram:.2f}x"
            f" (paper: 1.2x)"
        )
        return "\n".join(lines)


def build_table3(
    *,
    accuracy_overrides: Optional[Dict[str, float]] = None,
) -> Table3Report:
    """Evaluate the three Table III designs with the default models."""
    overrides = accuracy_overrides or {}
    designs = [sram_2d_design(), hybrid_2d_design(), h3d_design()]
    metrics = [
        evaluate_design(d, accuracy=overrides.get(d.style.value)) for d in designs
    ]
    return Table3Report(metrics=metrics)
