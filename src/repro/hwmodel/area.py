"""Area model: per-tier component roll-up (NeuroSim-style).

For each design the model itemizes every block of the Fig. 4 floorplans,
sums per tier/region, applies the 3D stacking overhead to stacked tiers,
and reports both the *footprint* (largest tier - what the package sees)
and the *total silicon* (sum over tiers).  Table III quotes footprints;
the 1.25x / 5.97x savings claims are footprint ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.designs import Design, DesignStyle
from repro.arch.tier import Tier, TierKind
from repro.errors import HardwareModelError
from repro.hwmodel import calibration as cal


@dataclass
class AreaBreakdown:
    """Per-tier, per-component areas in mm^2."""

    design_name: str
    tiers: Dict[str, Dict[str, float]]

    def tier_area(self, tier: str) -> float:
        if tier not in self.tiers:
            raise HardwareModelError(
                f"unknown tier {tier!r}; have {sorted(self.tiers)}"
            )
        return sum(self.tiers[tier].values())

    @property
    def footprint_mm2(self) -> float:
        """Die outline: the largest tier (stacked dies share the outline)."""
        return max(self.tier_area(t) for t in self.tiers)

    @property
    def total_silicon_mm2(self) -> float:
        return sum(self.tier_area(t) for t in self.tiers)

    def component(self, name: str) -> float:
        """Total area of one component class across tiers."""
        return sum(blocks.get(name, 0.0) for blocks in self.tiers.values())

    def report(self) -> str:
        lines = [f"Area breakdown - {self.design_name}"]
        for tier, blocks in self.tiers.items():
            lines.append(f"  {tier}: {self.tier_area(tier):.4f} mm^2")
            for name, area in sorted(blocks.items(), key=lambda kv: -kv[1]):
                lines.append(f"    {name:<22} {area:.4f} mm^2")
        lines.append(f"  footprint      {self.footprint_mm2:.4f} mm^2")
        lines.append(f"  total silicon  {self.total_silicon_mm2:.4f} mm^2")
        return "\n".join(lines)


class AreaModel:
    """Computes :class:`AreaBreakdown` for a :class:`~repro.arch.designs.Design`."""

    def evaluate(self, design: Design) -> AreaBreakdown:
        if design.style is DesignStyle.H3D:
            tiers = self._h3d(design)
        elif design.style is DesignStyle.HYBRID_2D:
            tiers = self._hybrid_2d(design)
        elif design.style is DesignStyle.SRAM_2D:
            tiers = self._sram_2d(design)
        else:  # pragma: no cover - enum is closed
            raise HardwareModelError(f"unknown design style {design.style}")
        return AreaBreakdown(design_name=design.name, tiers=tiers)

    # -- shared component sizes ---------------------------------------------

    @staticmethod
    def _adc_area_mm2(design: Design, node_nm: int) -> float:
        scale = cal.logic_area_scale(16, node_nm)
        return design.adc_count * cal.ADC4_AREA_16NM_UM2 * scale * 1e-6

    @staticmethod
    def _buffer_area_mm2(design: Design, node_nm: int) -> float:
        bits = design.batch_size * cal.BUFFER_WORD_COLS * cal.BUFFER_WORD_BITS
        cell = cal.SRAM_BITCELL_UM2[node_nm]
        return bits * cell / cal.SRAM_ARRAY_EFFICIENCY * 1e-6

    @staticmethod
    def _rram_cells_mm2(cells: int) -> float:
        return cells * cal.RRAM_CELL_AREA_UM2 * 1e-6

    @staticmethod
    def _rram_support_mm2(arrays: int) -> float:
        """Per-tier analog support blocks, sized for a 4-array tier."""
        scale = arrays / 4.0
        return scale * (
            cal.RRAM_TIER_PROGRAMMING_MM2
            + cal.RRAM_TIER_ISOLATION_LS_MM2
            + cal.RRAM_TIER_BIAS_DCAP_MM2
            + cal.RRAM_TIER_ACTIVATION_MM2
        )

    # -- designs --------------------------------------------------------------

    def _h3d(self, design: Design) -> Dict[str, Dict[str, float]]:
        overhead = 1.0 + cal.STACKING_AREA_OVERHEAD
        tiers: Dict[str, Dict[str, float]] = {}
        # Digital tier-1 (16 nm).
        tier1 = {
            "sar_adcs": self._adc_area_mm2(design, 16),
            "sram_buffer": self._buffer_area_mm2(design, 16),
            "rram_peripheral": cal.TIER1_RRAM_PERIPHERAL_MM2,
            "xnor_control": cal.TIER1_XNOR_CONTROL_MM2,
            "io_c4": cal.IO_REGION_MM2,
        }
        tiers["tier1"] = {k: v * overhead for k, v in tier1.items()}
        # RRAM tiers (40 nm): cells + support + TSV strips.
        per_tier_tsvs = design.tsv_count // max(len(design.stack.rram_tiers), 1)
        tsv_area = per_tier_tsvs * design.stack.tsv_spec.keepout_area * 1e6
        for tier in design.stack.rram_tiers:
            blocks = {
                "rram_cells": self._rram_cells_mm2(tier.cells),
                "analog_support": self._rram_support_mm2(tier.arrays),
                "tsv_strips": tsv_area,
            }
            tiers[tier.name] = {k: v * overhead for k, v in blocks.items()}
        return tiers

    def _hybrid_2d(self, design: Design) -> Dict[str, Dict[str, float]]:
        cim_tier = next(
            t for t in design.stack.tiers.values() if t.kind is TierKind.RRAM_CIM
        )
        die = {
            "rram_cells": self._rram_cells_mm2(cim_tier.cells),
            "analog_support": self._rram_support_mm2(cim_tier.arrays),
            "sar_adcs": self._adc_area_mm2(design, 40),
            "sram_buffer": self._buffer_area_mm2(design, 40),
            "rram_peripheral": cal.TIER1_RRAM_PERIPHERAL_MM2
            * cal.logic_area_scale(16, 40),
            "xnor_control": cal.TIER1_XNOR_CONTROL_MM2
            * cal.logic_area_scale(16, 40),
            "io_c4": cal.IO_REGION_MM2,
        }
        return {"die": die}

    def _sram_2d(self, design: Design) -> Dict[str, Dict[str, float]]:
        cim_tier = next(
            t for t in design.stack.tiers.values() if t.kind is TierKind.SRAM_CIM
        )
        cim_area = (
            cim_tier.cells
            * cal.SRAM_CIM_BITCELL_UM2
            / cal.SRAM_CIM_EFFICIENCY
            * 1e-6
        )
        die = {
            "sram_cim_arrays": cim_area,
            "adder_trees": cal.SRAM2D_ADDER_TREES_MM2,
            "sram_buffer": self._buffer_area_mm2(design, 16),
            "xnor_control": cal.TIER1_XNOR_CONTROL_MM2,
            "io_c4": cal.IO_REGION_MM2,
        }
        return {"die": die}
