"""Calibration constants for the PPA models - single source of magic numbers.

Every constant below is a *calibrated* quantity in the NeuroSim sense: the
paper estimates component areas/energies with the calibrated NeuroSim v2
framework (cross-validated against the fabricated 40 nm RRAM macros [25])
plus TSMC standard-cell data, and reports only the roll-ups (Table III).
We therefore pin per-component constants to values that (a) sit inside the
published range for the component and node, and (b) make the roll-up
reproduce Table III.  Each constant carries its provenance.

Units: areas in um^2 (converted at the edges), energies in femtojoules,
power in watts, time in seconds.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Area (um^2 unless noted)
# --------------------------------------------------------------------------

#: 1T1R RRAM cell at 40 nm.  [25] reports 2.37 Mb/mm^2 *macro* density
#: (cells + peripherals); the bare-cell figure used here (0.08 um^2)
#: corresponds to ~12.5 Mb/mm^2 cell-only, consistent with a 1T1R cell of
#: ~50 F^2 at F = 40 nm.
RRAM_CELL_AREA_UM2 = 0.08

#: 6T SRAM bit cell area by node.  16 nm: foundry ~0.074 um^2 (TSMC 16FF
#: published HD cell); 40 nm: ~0.33 um^2 (HD cell + redundancy).
SRAM_BITCELL_UM2 = {16: 0.074, 40: 0.33}

#: SRAM macro array efficiency (cells / (cells + periphery)).
SRAM_ARRAY_EFFICIENCY = 0.5

#: SRAM-CIM bitcell at 16 nm: 6T-based CIM cell with compute transistors
#: amortized in the periphery; efficiency below.
SRAM_CIM_BITCELL_UM2 = 0.074
SRAM_CIM_EFFICIENCY = 0.6

#: 4-bit SAR ADC at 16 nm (per converter).  Column-pitch SAR ADCs in
#: 16-22 nm CIM macros run 20-50 um^2; 32 um^2 reproduces the tier-1 sum.
ADC4_AREA_16NM_UM2 = 32.0

#: Logic-area scaling between nodes ~ (node ratio)^2 (ideal shrink; routing
#: limited blocks do worse, but NeuroSim uses the same assumption).
def logic_area_scale(node_from_nm: int, node_to_nm: int) -> float:
    return (node_to_nm / node_from_nm) ** 2


#: Per-RRAM-tier analog support blocks at 40 nm (Fig. 4a), mm^2 for the
#: 4-array tier: programming (set/reset drivers), isolation + WL level
#: shifters, bias + decap, activation unit.  Sized from the [25] macro
#: floorplan proportions.
RRAM_TIER_PROGRAMMING_MM2 = 0.011
RRAM_TIER_ISOLATION_LS_MM2 = 0.007
RRAM_TIER_BIAS_DCAP_MM2 = 0.0035
RRAM_TIER_ACTIVATION_MM2 = 0.0015

#: Tier-1 digital blocks at 16 nm, mm^2: RRAM peripheral digital (row
#: decoders/drivers, column mux, sequencers), XNOR unbind + -1's counters +
#: control, IO / C4 pad ring.
TIER1_RRAM_PERIPHERAL_MM2 = 0.016
TIER1_XNOR_CONTROL_MM2 = 0.012
IO_REGION_MM2 = 0.009

#: Digital adder-tree block of the SRAM-2D design (popcount accumulation
#: across 8 arrays), 16 nm.
SRAM2D_ADDER_TREES_MM2 = 0.013

#: 3D integration area overhead applied to stacked tiers: hybrid-bond pad
#: ring, alignment keep-outs, and routing congestion around TSV strips
#: (H3DAtten reports 5-10 %).
STACKING_AREA_OVERHEAD = 0.07

#: Similarity-word buffer: batch x 256 columns x 4 bits.
BUFFER_WORD_COLS = 256
BUFFER_WORD_BITS = 4

# --------------------------------------------------------------------------
# Energy (fJ)
# --------------------------------------------------------------------------

#: RRAM CIM array energy per MAC-equivalent op (read voltage 0.1 V, mean
#: cell conductance ~21 uS, 32-row phases) - node-independent (the arrays
#: are 40 nm in both RRAM designs).
RRAM_READ_FJ_PER_OP = 9.0

#: 4-bit SAR conversion energy: 16 nm ~45 fJ/conversion; 40 nm scales by
#: CV^2 (~3.5x: capacitor DAC at higher V and larger unit caps).
ADC4_CONV_FJ_16NM = 45.0
ADC_ENERGY_NODE_SCALE_40_TO_16 = 3.5

#: Digital datapath (XNOR unbind, accumulation, buffering, control) per op.
DIGITAL_FJ_PER_OP = {16: 1.44, 40: 4.20}

#: SRAM-CIM MVM energy per op at 16 nm (digital popcount accumulation -
#: no analog shortcut, hence the higher per-op energy).
SRAM_CIM_FJ_PER_OP = 18.2

#: TSV + hybrid-bond signalling energy per op for the H3D design
#: (CV^2 switching of ~22 fF verticals with driver overhead).
TSV_FJ_PER_OP = 0.30

# --------------------------------------------------------------------------
# Static power (W)
# --------------------------------------------------------------------------

#: Single-die leakage + bias static power.
STATIC_POWER_W = {
    "sram-2d": 1.6e-3,  # 16 nm leakage-dominated
    "hybrid-2d": 1.3e-3,  # 40 nm low leakage, one bias network
    # H3D: 16 nm tier-1 leakage + two RRAM tiers' bias/regulation networks
    # (the shared-peripheral scheme keeps the standby tier's bias alive).
    "h3d": 7.1e-3,
}

# --------------------------------------------------------------------------
# Timing
# --------------------------------------------------------------------------

#: 2D clock: array access + sensing path closes at 5 ns in both 2D designs
#: (Table III: 200 MHz for both).
BASE_FREQUENCY_HZ = 200e6

#: Effective driver resistance seen by vertical interconnect; the WL level
#: shifters are deliberately weak (area), so the added TSV RC lands the
#: stack at Table III's 185 MHz.
TSV_DRIVER_RESISTANCE_OHM = 18.0e3

#: MVM interval components (cycles): ceil(rows/32) row phases, 8-cycle SAR
#: slot per phase, 5-cycle pipeline fill.
ROWS_PER_PHASE = 32
ADC_SLOT_CYCLES = 8
PIPELINE_OVERHEAD_CYCLES = 5

#: SRAM-2D digital MVM: 2 rows/cycle popcount + 10-cycle tree latency.
SRAM2D_ROWS_PER_CYCLE = 2
SRAM2D_TREE_LATENCY_CYCLES = 10

# --------------------------------------------------------------------------
# Factorization accuracy at the Table III operating point (F=4, M=32,
# D=1024, 25-trial batches) - measured by benchmarks/bench_table2_accuracy
# and snapshotted here so the hardware report does not re-run minutes of
# simulation.  Regenerate with: python -m repro.cli table3 --measure-accuracy
# --------------------------------------------------------------------------

DESIGN_ACCURACY = {
    "sram-2d": 0.958,  # deterministic: limit cycles cap accuracy (paper 95.8%)
    "hybrid-2d": 0.993,  # stochastic RRAM read-out (paper 99.3%)
    "h3d": 0.993,  # same arrays, same noise (paper 99.3%)
}

# --------------------------------------------------------------------------
# PCM in-memory factorizer comparator (Sec. V-B, vs. [15])
# --------------------------------------------------------------------------

#: The PCM design dedicates one die per MVM role; its conversion interval
#: is dominated by on-die CCO-based ADCs and inter-die transfers.
PCM_FREQUENCY_HZ = 200e6
PCM_MVM_INTERVAL_CYCLES = 133  # slower conversion, same 256-row arrays
PCM_ARRAYS_ACTIVE = 4
PCM_ENERGY_FJ_PER_OP = 22.0  # PCM read current + inter-die links
PCM_STATIC_POWER_W = 2.0e-3
PCM_AREA_MM2 = 0.273  # iso-silicon with the 3-tier H3D stack
