"""PPA (power / performance / area) models for the Table III designs."""

from repro.hwmodel.area import AreaBreakdown, AreaModel
from repro.hwmodel.energy import EnergyBreakdown, EnergyModel
from repro.hwmodel.metrics import DesignMetrics, evaluate_design
from repro.hwmodel.pcm_baseline import PCMFactorizerModel, compare_with_pcm
from repro.hwmodel.report import Table3Report, build_table3
from repro.hwmodel.technology import TechnologyNode, node
from repro.hwmodel.timing import TimingModel, TimingReport

__all__ = [
    "AreaBreakdown",
    "AreaModel",
    "EnergyBreakdown",
    "EnergyModel",
    "DesignMetrics",
    "evaluate_design",
    "PCMFactorizerModel",
    "compare_with_pcm",
    "Table3Report",
    "build_table3",
    "TechnologyNode",
    "node",
    "TimingModel",
    "TimingReport",
]
