"""Timing model: clock frequency, MVM interval and throughput.

* 2D designs close timing at 200 MHz (Table III); the stack pays an RC
  penalty on every signal that crosses a TSV + hybrid bond, computed from
  the Table I geometry and the (deliberately weak) level-shifter drivers.
* The MVM interval follows the array pipeline: ``ceil(rows/32)`` row
  phases, one 8-cycle SAR slot per phase, 5 cycles of pipeline fill.
  MUX-shared ADCs (the 2D hybrid's area compromise, Sec. III-B) multiply
  the interval by the sharing factor.
* Throughput counts 2 ops (multiply + add) per cell per MVM over the
  simultaneously active arrays - 4 for H3D (single-active-tier), 8 for the
  2D designs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.designs import Design, DesignStyle
from repro.errors import HardwareModelError
from repro.hwmodel import calibration as cal


@dataclass(frozen=True)
class TimingReport:
    """Clock + throughput figures for one design."""

    design_name: str
    frequency_hz: float
    mvm_interval_cycles: int
    ops_per_mvm: int
    active_arrays: int

    @property
    def throughput_ops(self) -> float:
        """Sustained ops/s (the Table III Throughput column)."""
        return self.ops_per_mvm / self.mvm_interval_cycles * self.frequency_hz

    @property
    def mvm_latency_s(self) -> float:
        return self.mvm_interval_cycles / self.frequency_hz


class TimingModel:
    """Derives :class:`TimingReport` from a design's resources."""

    def __init__(self, base_frequency_hz: float = cal.BASE_FREQUENCY_HZ) -> None:
        if base_frequency_hz <= 0:
            raise HardwareModelError(
                f"base_frequency_hz must be positive, got {base_frequency_hz}"
            )
        self.base_frequency_hz = base_frequency_hz

    # -- frequency ------------------------------------------------------------

    def frequency(self, design: Design) -> float:
        """Clock after the vertical-interconnect RC penalty (if stacked)."""
        if not design.stack.is_3d:
            return self.base_frequency_hz
        interconnect = design.stack.interconnect()
        extra_delay = (
            cal.TSV_DRIVER_RESISTANCE_OHM * interconnect.per_signal_capacitance
        )
        period = 1.0 / self.base_frequency_hz + extra_delay
        return 1.0 / period

    # -- MVM interval ------------------------------------------------------------

    def mvm_interval_cycles(self, design: Design) -> int:
        rows = design.array_rows
        if design.style is DesignStyle.SRAM_2D:
            return int(
                np.ceil(rows / cal.SRAM2D_ROWS_PER_CYCLE)
                + cal.SRAM2D_TREE_LATENCY_CYCLES
            )
        phases = int(np.ceil(rows / cal.ROWS_PER_PHASE))
        base = phases * cal.ADC_SLOT_CYCLES + cal.PIPELINE_OVERHEAD_CYCLES
        return base * self.adc_sharing(design)

    @staticmethod
    def adc_sharing(design: Design) -> int:
        """Columns per ADC (1 = private converter per column)."""
        if design.adc_count == 0:
            return 1
        cim_cols = sum(
            t.arrays * t.array_cols
            for t in design.stack.tiers.values()
            if t.arrays
        )
        active_cols = cim_cols
        if design.style is DesignStyle.H3D:
            # Only one RRAM tier reads at a time; its columns match the
            # shared converter count exactly (per-column sensing).
            active_cols = cim_cols // max(len(design.stack.rram_tiers), 1)
        return max(1, active_cols // design.adc_count)

    # -- throughput -----------------------------------------------------------------

    @staticmethod
    def active_arrays(design: Design) -> int:
        if design.style is DesignStyle.H3D:
            per_tier = design.total_arrays // max(
                len(design.stack.rram_tiers), 1
            )
            return per_tier
        return design.total_arrays

    def evaluate(self, design: Design) -> TimingReport:
        arrays = self.active_arrays(design)
        ops_per_mvm = 2 * design.array_rows * design.array_cols * arrays
        return TimingReport(
            design_name=design.name,
            frequency_hz=self.frequency(design),
            mvm_interval_cycles=self.mvm_interval_cycles(design),
            ops_per_mvm=ops_per_mvm,
            active_arrays=arrays,
        )
