"""Technology-node descriptors and scaling rules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hwmodel import calibration as cal


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS node with the handful of parameters the models need."""

    feature_nm: int
    supply_v: float
    sram_bitcell_um2: float

    def logic_area_scale_to(self, other: "TechnologyNode") -> float:
        """Area ratio when porting a logic block from this node to other."""
        return cal.logic_area_scale(self.feature_nm, other.feature_nm)


_NODES = {
    16: TechnologyNode(feature_nm=16, supply_v=0.8, sram_bitcell_um2=cal.SRAM_BITCELL_UM2[16]),
    40: TechnologyNode(feature_nm=40, supply_v=1.1, sram_bitcell_um2=cal.SRAM_BITCELL_UM2[40]),
}


def node(feature_nm: int) -> TechnologyNode:
    """Look up a supported node (16 or 40 nm)."""
    if feature_nm not in _NODES:
        raise HardwareModelError(
            f"unsupported node {feature_nm} nm; supported: {sorted(_NODES)}"
        )
    return _NODES[feature_nm]
