"""Energy model: dynamic per-op energy + static power -> TOPS/W.

Component attribution per design style:

* RRAM designs: array read energy (node-independent - both use 40 nm
  arrays) + SAR conversions (node-dependent) + digital datapath
  (node-dependent) + TSV signalling (H3D only).
* SRAM-2D: digital CIM popcount energy (no analog accumulation, hence the
  highest per-op dynamic energy) + datapath.
* Static power: die leakage and - for the stack - the bias/regulation
  networks of both RRAM tiers, which stay powered so the standby tier can
  wake within a cycle (Sec. III-A power modes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.designs import Design, DesignStyle
from repro.errors import HardwareModelError
from repro.hwmodel import calibration as cal
from repro.hwmodel.timing import TimingModel, TimingReport


@dataclass
class EnergyBreakdown:
    """Per-component dynamic energy (fJ/op) and static power (W)."""

    design_name: str
    dynamic_fj_per_op: Dict[str, float]
    static_power_w: float
    throughput_ops: float

    @property
    def total_fj_per_op(self) -> float:
        return sum(self.dynamic_fj_per_op.values())

    @property
    def dynamic_power_w(self) -> float:
        return self.total_fj_per_op * 1e-15 * self.throughput_ops

    @property
    def total_power_w(self) -> float:
        return self.dynamic_power_w + self.static_power_w

    @property
    def tops_per_watt(self) -> float:
        if self.total_power_w == 0:
            return float("inf")
        return self.throughput_ops / 1e12 / self.total_power_w

    def report(self) -> str:
        lines = [f"Energy breakdown - {self.design_name}"]
        for name, energy in sorted(
            self.dynamic_fj_per_op.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:<16} {energy:6.2f} fJ/op")
        lines.append(f"  dynamic power  {1e3 * self.dynamic_power_w:6.2f} mW")
        lines.append(f"  static power   {1e3 * self.static_power_w:6.2f} mW")
        lines.append(f"  efficiency     {self.tops_per_watt:6.1f} TOPS/W")
        return "\n".join(lines)


class EnergyModel:
    """Computes :class:`EnergyBreakdown` for a design."""

    def __init__(self, timing: TimingModel = TimingModel()) -> None:
        self.timing = timing

    def evaluate(self, design: Design, timing: TimingReport = None) -> EnergyBreakdown:
        if timing is None:
            timing = self.timing.evaluate(design)
        if design.style is DesignStyle.SRAM_2D:
            dynamic = {
                "sram_cim": cal.SRAM_CIM_FJ_PER_OP,
                "digital": cal.DIGITAL_FJ_PER_OP[16] * 0.5,
            }
            static = cal.STATIC_POWER_W["sram-2d"]
        elif design.style is DesignStyle.HYBRID_2D:
            dynamic = {
                "rram_read": cal.RRAM_READ_FJ_PER_OP,
                "adc": self._adc_fj_per_op(design, timing, node_nm=40),
                "digital": cal.DIGITAL_FJ_PER_OP[40],
            }
            static = cal.STATIC_POWER_W["hybrid-2d"]
        elif design.style is DesignStyle.H3D:
            dynamic = {
                "rram_read": cal.RRAM_READ_FJ_PER_OP,
                "adc": self._adc_fj_per_op(design, timing, node_nm=16),
                "digital": cal.DIGITAL_FJ_PER_OP[16],
                "tsv": cal.TSV_FJ_PER_OP,
            }
            static = cal.STATIC_POWER_W["h3d"]
        else:  # pragma: no cover - enum closed
            raise HardwareModelError(f"unknown design style {design.style}")
        return EnergyBreakdown(
            design_name=design.name,
            dynamic_fj_per_op=dynamic,
            static_power_w=static,
            throughput_ops=timing.throughput_ops,
        )

    @staticmethod
    def _adc_fj_per_op(design: Design, timing: TimingReport, *, node_nm: int) -> float:
        """Conversion energy amortized over the MVM's MAC ops."""
        if design.adc_count == 0:
            return 0.0
        per_conv = cal.ADC4_CONV_FJ_16NM
        if node_nm == 40:
            per_conv *= cal.ADC_ENERGY_NODE_SCALE_40_TO_16
        row_phases = -(-design.array_rows // cal.ROWS_PER_PHASE)
        phases = row_phases * TimingModel.adc_sharing(design)
        conversions = design.adc_count * max(phases, 1)
        return per_conv * conversions / timing.ops_per_mvm
