"""Top-level design metrics: the Table III columns for one design."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.designs import Design
from repro.hwmodel import calibration as cal
from repro.hwmodel.area import AreaBreakdown, AreaModel
from repro.hwmodel.energy import EnergyBreakdown, EnergyModel
from repro.hwmodel.timing import TimingModel, TimingReport


@dataclass
class DesignMetrics:
    """All Table III performance columns for one design."""

    design: Design
    area: AreaBreakdown
    timing: TimingReport
    energy: EnergyBreakdown
    accuracy: float

    @property
    def footprint_mm2(self) -> float:
        return self.area.footprint_mm2

    @property
    def total_silicon_mm2(self) -> float:
        return self.area.total_silicon_mm2

    @property
    def frequency_mhz(self) -> float:
        return self.timing.frequency_hz / 1e6

    @property
    def throughput_tops(self) -> float:
        return self.timing.throughput_ops / 1e12

    @property
    def compute_density_tops_mm2(self) -> float:
        return self.throughput_tops / self.footprint_mm2

    @property
    def tops_per_watt(self) -> float:
        return self.energy.tops_per_watt

    @property
    def power_mw(self) -> float:
        return 1e3 * self.energy.total_power_w

    def row(self) -> Dict[str, object]:
        """Flat dict for the Table III report."""
        tech = self.design.technology_summary
        return {
            "design": self.design.name,
            "rram_nm": tech["rram_nm"],
            "rram_peripheral_nm": tech["rram_peripheral_nm"],
            "digital_nm": tech["digital_nm"],
            "unbinding": self.design.unbinding_operation,
            "mvm": self.design.mvm_operation,
            "adc_count": self.design.adc_count,
            "tsv_count": self.design.tsv_count,
            "area_mm2": round(self.footprint_mm2, 3),
            "frequency_mhz": round(self.frequency_mhz, 0),
            "throughput_tops": round(self.throughput_tops, 2),
            "compute_density_tops_mm2": round(self.compute_density_tops_mm2, 1),
            "energy_efficiency_tops_w": round(self.tops_per_watt, 1),
            "accuracy_pct": round(100 * self.accuracy, 1),
        }


def evaluate_design(
    design: Design,
    *,
    accuracy: Optional[float] = None,
    area_model: Optional[AreaModel] = None,
    timing_model: Optional[TimingModel] = None,
    energy_model: Optional[EnergyModel] = None,
) -> DesignMetrics:
    """Run the full PPA stack on one design.

    ``accuracy`` defaults to the snapshot measured by the Table II bench
    (see :data:`repro.hwmodel.calibration.DESIGN_ACCURACY`); pass a live
    measurement to override.
    """
    area_model = area_model or AreaModel()
    timing_model = timing_model or TimingModel()
    energy_model = energy_model or EnergyModel(timing_model)
    timing = timing_model.evaluate(design)
    if accuracy is None:
        accuracy = cal.DESIGN_ACCURACY.get(design.style.value, float("nan"))
    return DesignMetrics(
        design=design,
        area=area_model.evaluate(design),
        timing=timing,
        energy=energy_model.evaluate(design, timing),
        accuracy=accuracy,
    )
