"""PCM in-memory factorizer comparator (Sec. V-B, vs. Langenegger et al. [15]).

The Nature Nanotechnology in-memory factorizer maps each resonator MVM to a
2D PCM crossbar on its own die, so every iteration shuttles data between
dies and every conversion runs through slower on-die converters.  The
paper's comparison is iso-silicon-area: H3DFact achieves 1.78x throughput
and 1.48x energy efficiency at the same silicon budget.  This module models
the PCM design with the same accounting style as the main designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hwmodel import calibration as cal
from repro.hwmodel.metrics import DesignMetrics


@dataclass(frozen=True)
class PCMFactorizerModel:
    """Analytic PPA model of the 2D PCM factorizer.

    Defaults reproduce the published comparison; every parameter can be
    overridden for sensitivity studies.
    """

    frequency_hz: float = cal.PCM_FREQUENCY_HZ
    mvm_interval_cycles: int = cal.PCM_MVM_INTERVAL_CYCLES
    arrays_active: int = cal.PCM_ARRAYS_ACTIVE
    array_rows: int = 256
    array_cols: int = 256
    energy_fj_per_op: float = cal.PCM_ENERGY_FJ_PER_OP
    static_power_w: float = cal.PCM_STATIC_POWER_W
    silicon_area_mm2: float = cal.PCM_AREA_MM2

    def __post_init__(self) -> None:
        if min(
            self.frequency_hz,
            self.mvm_interval_cycles,
            self.arrays_active,
            self.energy_fj_per_op,
            self.silicon_area_mm2,
        ) <= 0:
            raise HardwareModelError("PCM model parameters must be positive")

    @property
    def ops_per_mvm(self) -> int:
        return 2 * self.array_rows * self.array_cols * self.arrays_active

    @property
    def throughput_ops(self) -> float:
        return self.ops_per_mvm / self.mvm_interval_cycles * self.frequency_hz

    @property
    def throughput_tops(self) -> float:
        return self.throughput_ops / 1e12

    @property
    def power_w(self) -> float:
        return (
            self.energy_fj_per_op * 1e-15 * self.throughput_ops
            + self.static_power_w
        )

    @property
    def tops_per_watt(self) -> float:
        return self.throughput_tops / self.power_w

    @property
    def compute_density_tops_mm2(self) -> float:
        return self.throughput_tops / self.silicon_area_mm2


@dataclass(frozen=True)
class PCMComparison:
    """Iso-area comparison outcome."""

    throughput_ratio: float
    efficiency_ratio: float
    h3d_tops: float
    pcm_tops: float
    h3d_tops_w: float
    pcm_tops_w: float

    def render(self) -> str:
        return (
            "H3DFact vs PCM in-memory factorizer (iso-silicon-area)\n"
            f"  throughput: {self.h3d_tops:.2f} vs {self.pcm_tops:.2f} TOPS "
            f"-> {self.throughput_ratio:.2f}x (paper: 1.78x)\n"
            f"  efficiency: {self.h3d_tops_w:.1f} vs {self.pcm_tops_w:.1f} "
            f"TOPS/W -> {self.efficiency_ratio:.2f}x (paper: 1.48x)"
        )


def compare_with_pcm(
    h3d_metrics: DesignMetrics,
    pcm: PCMFactorizerModel = PCMFactorizerModel(),
) -> PCMComparison:
    """Compare evaluated H3D metrics against the PCM model at iso-area.

    Iso-area scaling: the PCM design is granted the same total silicon as
    the 3-tier stack; its throughput scales with the area ratio (more
    parallel cores), its efficiency does not (per-op costs are intrinsic).
    """
    area_ratio = h3d_metrics.total_silicon_mm2 / pcm.silicon_area_mm2
    pcm_tops = pcm.throughput_tops * area_ratio
    return PCMComparison(
        throughput_ratio=h3d_metrics.throughput_tops / pcm_tops,
        efficiency_ratio=h3d_metrics.tops_per_watt / pcm.tops_per_watt,
        h3d_tops=h3d_metrics.throughput_tops,
        pcm_tops=pcm_tops,
        h3d_tops_w=h3d_metrics.tops_per_watt,
        pcm_tops_w=pcm.tops_per_watt,
    )
