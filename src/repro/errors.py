"""Exception hierarchy for the H3DFact reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class DimensionError(ConfigurationError):
    """Array shapes or vector dimensionalities do not match expectations."""


class CodebookError(ReproError):
    """A codebook lookup or construction failed."""


class ConvergenceError(ReproError):
    """A factorization run could not satisfy its convergence contract."""


class MappingError(ReproError):
    """A workload could not be mapped onto the hardware architecture."""


class HardwareModelError(ReproError):
    """The PPA (power/performance/area) model received invalid inputs."""


class ThermalModelError(ReproError):
    """The thermal solver received an invalid stack or power map."""


class PerceptionError(ReproError):
    """The perception front-end or dataset generation failed."""


class ServiceError(ReproError):
    """The factorization service was misused or is shut down."""


class BackpressureError(ServiceError):
    """The service's bounded request queue is full (reject policy)."""
