"""Exception hierarchy for the H3DFact reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class DimensionError(ConfigurationError):
    """Array shapes or vector dimensionalities do not match expectations."""


class CodebookError(ReproError):
    """A codebook lookup or construction failed."""


class ConvergenceError(ReproError):
    """A factorization run could not satisfy its convergence contract."""


class MappingError(ReproError):
    """A workload could not be mapped onto the hardware architecture."""


class HardwareModelError(ReproError):
    """The PPA (power/performance/area) model received invalid inputs."""


class ThermalModelError(ReproError):
    """The thermal solver received an invalid stack or power map."""


class PerceptionError(ReproError):
    """The perception front-end or dataset generation failed."""


class ServiceError(ReproError):
    """The factorization service was misused or is shut down."""


class BackpressureError(ServiceError):
    """The service's bounded request queue is full (reject policy)."""


class WorkerLostError(ServiceError):
    """A worker shard died while requests routed to it were in flight.

    Retryable: the pool restarts the shard (re-programming its registry
    from the control plane), so resubmitting the same seeded request
    yields the same bit-identical response.
    """


class RequestTimeoutError(ServiceError):
    """A request did not complete within its caller-supplied deadline.

    Not retryable by default: the work may still complete server-side, so
    the caller decides whether resubmission is appropriate (seeded
    requests are idempotent, making retry safe when desired).
    """


class TransportError(ServiceError):
    """A connection-level failure exhausted the HTTP client's retries.

    Distinguished from other :class:`ServiceError` subclasses so the
    cluster client can recognise "this *node* is unreachable" (fail over
    to a replica after refreshing the shard map) without string-matching;
    the server never produces this type, so it has no wire envelope.
    """


class StaleShardMapError(ServiceError):
    """A cluster request carried a shard-map epoch older than the node's.

    Retryable after a refresh: the client fetches the current shard map
    from the coordinator, re-routes (and re-replicates registrations the
    rebalance moved), and resubmits.  Seeded requests are idempotent, so
    the refreshed retry returns the same bit-identical response the old
    topology would have.
    """


class UnknownCodebookError(ServiceError):
    """A request referenced a codebook key the serving shard has not programmed.

    Retryable: after a worker restart the pool replays codebook
    registrations, so a key that raced the replay resolves on resubmit.
    A key that was never registered keeps failing until the client
    re-registers the set.
    """
