"""Benchmark regenerating Table II: accuracy + operational capacity.

Default grid is reduced for wall-clock sanity (documented in DESIGN.md);
``H3DFACT_FULL=1`` restores the paper's grid.  The printed table carries
the same rows as the paper: accuracy (%) and iterations to 99 % accuracy
("Fail" when the target is never reached).
"""

import pytest

from repro.experiments import Table2Config, run_table2
from repro.experiments.runner import full_scale
from repro.core.engine import H3DFact, baseline_network
from repro.resonator.network import FactorizationProblem


def make_config():
    if full_scale():
        return Table2Config.paper()
    return Table2Config(
        dim=1024,
        factor_counts=(3, 4),
        codebook_sizes=(16, 32, 64),
        trials=12,
        max_iterations_baseline=500,
        max_iterations_h3d=4000,
    )


@pytest.fixture(scope="module")
def table2_result(emit):
    result = run_table2(make_config())
    emit("")
    emit(result.render())
    return result


def test_table2_small_sizes_both_solve(table2_result):
    assert table2_result.cell("baseline", 3, 16).stats.accuracy >= 0.9
    assert table2_result.cell("h3d", 3, 16).stats.accuracy >= 0.9


def test_table2_h3d_wins_beyond_cliff(table2_result):
    """The paper's core claim: stochasticity extends the capacity."""
    sizes = table2_result.config.codebook_sizes
    largest = sizes[-1]
    for factors in table2_result.config.factor_counts:
        base = table2_result.cell("baseline", factors, largest).stats.accuracy
        h3d = table2_result.cell("h3d", factors, largest).stats.accuracy
        assert h3d >= base


def test_table2_capacity_gain(table2_result):
    gain = table2_result.capacity_gain(4)
    assert gain >= 1.0 or gain == float("inf")


def test_benchmark_baseline_iteration(benchmark, table2_result):
    # table2_result regenerates and prints the Table II rows; the benchmark
    # times five baseline resonator sweeps.
    assert table2_result.cells
    problem = FactorizationProblem.random(1024, 4, 64, rng=0)
    network = baseline_network(problem.codebooks, max_iterations=5, rng=0)

    def run():
        return network.factorize(problem.product, max_iterations=5)

    benchmark(run)


def test_benchmark_h3d_iteration(benchmark):
    problem = FactorizationProblem.random(1024, 4, 64, rng=0)
    engine = H3DFact(rng=0)
    network = engine.make_network(problem.codebooks, max_iterations=5)

    def run():
        return network.factorize(problem.product, max_iterations=5)

    benchmark(run)
