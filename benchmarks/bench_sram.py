"""Tier-1 SRAM/XNOR benchmarks (not a paper artifact).

The acceptance number for the digital tier: the packed XNOR + popcount
similarity MVM (:class:`repro.core.sram_backend.SRAMBatchedBackend`, uint64
bit-planes through the fused runtime-compiled kernel) must beat the float32
GEMM similarity baseline (:class:`repro.resonator.backends.ExactBackend`)
by >= 3x wall-clock at D=8192 while returning bit-identical integer
similarities - the paper's raw-speed claim for binary MVMs (Sec. III-A)
in software form.  Timings include per-call query packing, since that is
part of every real similarity step; the codebook is packed once
(pack-once store, like conductance programming).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_sram.py -q``.
"""

import time

import numpy as np
import pytest

from repro.cim.sram.batched import PackedCodebookCache
from repro.cim.sram.native import native_available
from repro.core.sram_backend import SRAMBatchedBackend
from repro.resonator.backends import ExactBackend
from repro.utils.rng import as_rng
from repro.vsa.codebook import Codebook

DIM = 8192
SIZE = 256
TRIALS = 32
REPS = 50


def _workload(seed=0):
    rng = as_rng(seed)
    matrix = (2 * rng.integers(0, 2, size=(DIM, SIZE), dtype=np.int8) - 1)
    codebook = Codebook(name="bench", matrix=matrix)
    queries = (
        2 * rng.integers(0, 2, size=(TRIALS, DIM), dtype=np.int8) - 1
    ).astype(np.float32)
    return codebook, queries


def _best_of(fn, reps=REPS):
    fn()  # warmup (compile/pack/BLAS threads)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_packed_popcount_beats_float_gemm(emit, record):
    """Acceptance: >= 3x over float GEMM at D=8192, bit-identical sims."""
    if not native_available():
        pytest.skip("no C toolchain: fused popcount kernel unavailable")
    codebook, queries = _workload()
    exact = ExactBackend()
    sram = SRAMBatchedBackend(cache=PackedCodebookCache())

    gemm = exact.similarity_batch(codebook, queries)
    packed = sram.similarity_batch(codebook, queries)
    # Bipolar similarities are integers, exact in float32 below 2**24.
    assert np.array_equal(packed, gemm.astype(np.int64))

    gemm_seconds = _best_of(lambda: exact.similarity_batch(codebook, queries))
    packed_seconds = _best_of(lambda: sram.similarity_batch(codebook, queries))
    speedup = gemm_seconds / packed_seconds
    emit(
        f"\nsram tier-1 similarity, {TRIALS} queries x (D={DIM}, M={SIZE}): "
        f"float GEMM {1e3 * gemm_seconds:.3f} ms, packed popcount "
        f"{1e3 * packed_seconds:.3f} ms -> {speedup:.1f}x"
    )
    record(
        "sram",
        benchmark="packed_popcount_vs_gemm",
        dim=DIM,
        size=SIZE,
        trials=TRIALS,
        gemm_seconds=gemm_seconds,
        packed_seconds=packed_seconds,
        speedup=speedup,
        native=True,
    )
    assert speedup >= 3.0


def test_pack_once_amortized(emit, record):
    """One codebook packs once: repeat traffic hits the backend's id fast
    path (no re-fingerprint), and a second backend sharing the content
    store re-uses the same bit-planes instead of re-packing."""
    codebook, queries = _workload()
    cache = PackedCodebookCache()
    first = SRAMBatchedBackend(cache=cache)
    for _ in range(4):
        first.similarity_batch(codebook, queries)
    second = SRAMBatchedBackend(cache=cache)
    second.similarity_batch(codebook, queries)
    emit(
        f"\npack-once store: {cache.misses} pack(s), {cache.hits} "
        "content hit(s) across two backends x 5 waves"
    )
    record(
        "sram",
        benchmark="pack_once_amortized",
        misses=cache.misses,
        hits=cache.hits,
    )
    assert cache.misses == 1
    assert cache.hits == 1
