"""Micro-batching + HTTP serving-tier benchmarks (not a paper artifact).

Two acceptance numbers for the serving layer, both appended to
``BENCH_service.json`` through the conftest recording hooks:

* coalescing 32 concurrent same-geometry requests through the scheduler
  must beat per-request sequential serving by >= 3x wall-clock, while
  returning bit-identical results (deterministic configuration,
  per-request seeds);
* the closed-loop load generator at 64 concurrent requests must show
  >= 2x throughput with 4 worker shards vs. the single-process service -
  *when the machine has >= 4 cores* (the assert is core-gated: process
  sharding cannot beat one process on a single-core box, so there the
  run records measurements and checks bit-identity only; nightly CI runs
  on 4-vCPU runners where the full assert applies).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q``.
"""

import os
import time

import pytest

from repro.core.engine import baseline_network
from repro.resonator import FactorizationProblem
from repro.service import (
    BatchPolicy,
    CodebookRegistry,
    FactorizationRequest,
    FactorizationService,
    run_group,
)
from repro.utils.rng import as_rng
from repro.vsa import CodebookSet

MAX_ITERATIONS = 40


def _make_requests(count, *, dim=1024, num_factors=3, codebook_size=63, seed=0):
    """Fixed-seed same-geometry request stream against one shared set.

    Odd codebook size: the superposition init has no sign ties, so the
    deterministic trajectories are bit-identical under every packing.
    """
    rng = as_rng(seed)
    codebooks = CodebookSet.random_uniform(dim, num_factors, codebook_size, rng=rng)
    requests = []
    for index in range(count):
        indices = tuple(
            int(rng.integers(0, codebook_size)) for _ in range(num_factors)
        )
        problem = FactorizationProblem.from_indices(codebooks, indices)
        requests.append(
            FactorizationRequest.from_problem(
                problem,
                seed=1_000 + index,
                max_iterations=MAX_ITERATIONS,
                request_id=str(index),
            )
        )
    return requests


def _factory(problem):
    return baseline_network(problem.codebooks, max_iterations=MAX_ITERATIONS)


def _serve_per_request(requests):
    """The pre-service serving model: one factorization per arrival."""
    return [
        run_group(
            _factory,
            [FactorizationProblem(
                codebooks=request.codebooks,
                product=request.product,
                true_indices=request.true_indices,
            )],
            seeds=[request.seed],
            max_iterations=request.max_iterations,
            engine="sequential",
        )[0]
        for request in requests
    ]


def _serve_coalesced(requests, *, max_batch_size=32, workers=2):
    """The same stream submitted request-by-request to the scheduler."""
    with FactorizationService(
        _factory,
        policy=BatchPolicy(max_batch_size=max_batch_size, max_wait_seconds=0.25),
        registry=CodebookRegistry(capacity=8),
        workers=workers,
    ) as service:
        futures = [service.submit(request) for request in requests]
        service.flush()
        responses = [future.result(timeout=60) for future in futures]
    return responses, service


def test_service_coalescing_speedup_32(emit, record):
    """Acceptance: >= 3x over per-request serving at 32 coalesced requests."""
    requests = _make_requests(32)

    # Warm both paths (BLAS threads, codebook caches), then measure.
    _serve_per_request(requests[:4])
    _serve_coalesced(requests[:4], max_batch_size=4)

    start = time.perf_counter()
    per_request = _serve_per_request(requests)
    per_request_seconds = time.perf_counter() - start

    start = time.perf_counter()
    responses, service = _serve_coalesced(requests)
    coalesced_seconds = time.perf_counter() - start

    speedup = per_request_seconds / coalesced_seconds
    emit(
        f"\n32-request micro-batching (D=1024, F=3, M=63, shared codebooks): "
        f"per-request {per_request_seconds:.3f} s, coalesced "
        f"{coalesced_seconds:.3f} s -> {speedup:.1f}x "
        f"(batches: {service.stats.batches}, mean size "
        f"{service.stats.mean_batch_size:.1f})"
    )
    record(
        "service",
        benchmark="coalescing_speedup_32",
        requests=len(requests),
        per_request_seconds=per_request_seconds,
        coalesced_seconds=coalesced_seconds,
        speedup=speedup,
        batches=service.stats.batches,
    )
    # Bit-identical replay: seeded deterministic trials do not depend on
    # how the scheduler packed them.
    for request, expected, response in zip(requests, per_request, responses):
        assert response.request_id == request.request_id
        assert response.result.indices == expected.indices
        assert response.result.iterations == expected.iterations
    assert service.stats.batches <= 2
    assert speedup >= 3.0


def test_registry_amortization_across_waves(emit):
    """Second wave of traffic against the same codebooks is all-hit."""
    requests = _make_requests(16)
    with FactorizationService(
        _factory,
        policy=BatchPolicy(max_batch_size=16, max_wait_seconds=0.25),
        registry=CodebookRegistry(capacity=8),
    ) as service:
        start = time.perf_counter()
        service.run(requests)
        first_wave = time.perf_counter() - start
        start = time.perf_counter()
        service.run(requests)
        second_wave = time.perf_counter() - start
        hits, misses = service.registry.stats.hits, service.registry.stats.misses
    emit(
        f"\nregistry amortization: wave 1 {first_wave:.3f} s (programs 1 set), "
        f"wave 2 {second_wave:.3f} s ({hits} hits / {misses} misses)"
    )
    # One programming event, every other lookup served from the registry.
    assert misses == 1
    assert hits == 31


def test_loadgen_shard_scaling_c64(emit, record):
    """Shard scaling at 64 concurrent requests over HTTP.

    Same seeded workload offered to two deployments: the single-process
    service and a 4-shard worker pool, both behind the HTTP server.  The
    result digests must match bit for bit unconditionally; the >= 2x
    throughput assert applies on >= 4 cores (weaker floor at 2-3, record
    only on 1 - see the module docstring).
    """
    from repro.service import InProcessTransport, ShardedWorkerPool, WorkerPoolConfig
    from repro.service.http import H3DFactHTTPServer, HTTPTransport
    from repro.service.http.loadgen import LoadGenConfig, run_loadgen

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    config = LoadGenConfig(
        dim=512,
        num_factors=3,
        codebook_size=32,
        codebook_sets=4,
        requests=64,
        concurrency=(64,),
        max_iterations=30,
        seed=11,
    )

    def measure(transport):
        with H3DFactHTTPServer(transport, own_transport=True) as server:
            client = HTTPTransport(server.url)
            # Warm sockets, registries and worker caches, then measure.
            warm = run_loadgen(
                client,
                LoadGenConfig(
                    dim=config.dim,
                    codebook_size=config.codebook_size,
                    codebook_sets=config.codebook_sets,
                    requests=8,
                    concurrency=(8,),
                    max_iterations=config.max_iterations,
                    seed=config.seed,
                ),
                timeout=120.0,
            )
            assert warm.levels[0].errors == 0
            report = run_loadgen(client, config, timeout=120.0)
        level = report.levels[0]
        assert level.errors == 0
        return level

    single = measure(InProcessTransport())
    sharded = measure(ShardedWorkerPool(WorkerPoolConfig(shards=4)))

    speedup = sharded.throughput_rps / single.throughput_rps
    emit(
        f"\nloadgen C=64 (D=512, F=3, M=32, 4 codebook sets, HTTP): "
        f"single-process {single.throughput_rps:.1f} req/s "
        f"(p95 {single.p95_ms:.1f} ms), 4 shards "
        f"{sharded.throughput_rps:.1f} req/s (p95 {sharded.p95_ms:.1f} ms) "
        f"-> {speedup:.2f}x on {cores} core(s)"
    )
    record(
        "service",
        benchmark="loadgen_shard_scaling_c64",
        cores=cores,
        requests=config.requests,
        concurrency=64,
        rps_single=single.throughput_rps,
        rps_sharded_4=sharded.throughput_rps,
        p95_ms_single=single.p95_ms,
        p95_ms_sharded_4=sharded.p95_ms,
        speedup=speedup,
        digest_match=single.digest == sharded.digest,
    )
    # Bit-identity across deployments is unconditional: sharding must
    # never change a seeded factorization.
    assert single.digest == sharded.digest
    assert single.solved == sharded.solved
    if cores >= 4:
        assert speedup >= 2.0, (
            f"4 shards gave only {speedup:.2f}x over single-process "
            f"at C=64 on {cores} cores"
        )
    elif cores >= 2:
        assert speedup >= 1.2, (
            f"4 shards gave only {speedup:.2f}x on {cores} cores"
        )
    else:
        emit(
            "\n  (1 core: shard-scaling assert skipped; measurements "
            "and bit-identity recorded)"
        )


@pytest.mark.parametrize("batch_size", [1, 8, 32])
def test_benchmark_service_batch_size(benchmark, batch_size):
    """Throughput vs max_batch_size (pytest-benchmark timing)."""
    requests = _make_requests(batch_size)

    def serve():
        with FactorizationService(
            _factory,
            policy=BatchPolicy(max_batch_size=batch_size, max_wait_seconds=0.25),
        ) as service:
            return service.run(requests)

    responses = benchmark(serve)
    assert len(responses) == batch_size
