"""FHRR algebra benchmarks (not a paper artifact).

The acceptance number for the FFT binding path: at D = 8192,
:func:`repro.vsa.fhrr.bind` (O(D log D) spectral multiply) must beat the
direct O(D^2) circulant-MVM reference
(:func:`repro.vsa.fhrr.mvm_bind_reference`) by >= 3x wall-clock while
producing the same circular convolution to float tolerance.  This is the
asymptotic win that makes FHRR binding practical at hypervector scale -
and exactly the operation an in-memory circulant crossbar would
accelerate (Langenegger et al.), so the reference doubles as the
software model of that MVM.

Also pins the phasor resonator's per-sweep cost model: the profiled FFT
flop count per unbind must match :func:`repro.vsa.fhrr.unbind_flops`.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_algebra.py -q``.
Each run appends a machine-readable record to ``BENCH_algebra.json``.
"""

import time

import numpy as np

from repro.resonator.profiler import ResonatorProfiler
from repro.resonator.network import FactorizationProblem, ResonatorNetwork
from repro.utils.rng import as_rng
from repro.vsa import fhrr

DIM = 8192
REPEATS = 5


def _measure(fn, *args, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_fft_bind_beats_mvm_reference(emit, record):
    """Acceptance: >= 3x over the O(D^2) circulant MVM at D = 8192."""
    rng = as_rng(0)
    a = fhrr.random_phasor(DIM, rng=rng)
    b = fhrr.random_phasor(DIM, rng=rng)

    # Correctness first: both paths compute the same circular convolution.
    np.testing.assert_allclose(
        fhrr.bind(a, b), fhrr.mvm_bind_reference(a, b), atol=1e-9
    )

    # Warm both paths (FFT plan/import costs, BLAS threads), then measure.
    _measure(fhrr.bind, a, b, repeats=2)
    _measure(fhrr.mvm_bind_reference, a, b, repeats=1)

    fft_seconds = _measure(fhrr.bind, a, b)
    mvm_seconds = _measure(fhrr.mvm_bind_reference, a, b)
    speedup = mvm_seconds / fft_seconds
    emit(
        f"\nFFT bind vs O(D^2) MVM reference (D={DIM}): "
        f"fft {1e3 * fft_seconds:.2f} ms, mvm {1e3 * mvm_seconds:.2f} ms "
        f"-> {speedup:.1f}x"
    )
    record(
        "algebra",
        benchmark="fft_bind_vs_mvm_reference",
        dim=DIM,
        fft_seconds=fft_seconds,
        mvm_seconds=mvm_seconds,
        speedup=speedup,
    )
    assert speedup >= 3.0


def test_phasor_resonator_cost_model(emit, record):
    """The profiler's FFT flop accounting matches the analytic formulas."""
    rng = as_rng(3)
    problem = FactorizationProblem.random(512, 3, 12, rng=rng, algebra="fhrr")
    profiler = ResonatorProfiler()
    network = ResonatorNetwork(problem.codebooks, max_iterations=20)
    network.profiler = profiler
    # A random (non-composed) product never recomposes exactly, so the
    # run exercises the full sweep budget and the totals are meaningful.
    result = network.factorize(fhrr.random_phasor(512, rng=rng))
    sweeps = result.iterations
    assert sweeps > 1
    per_sweep_unbinds = problem.codebooks.num_factors
    expected_unbind = (
        sweeps * per_sweep_unbinds * fhrr.unbind_flops(512, 3)
    )
    assert profiler.steps["unbind"].flops == expected_unbind
    expected_activation = (
        sweeps * per_sweep_unbinds * fhrr.phase_activation_flops(512)
    )
    assert profiler.steps["activation"].flops == expected_activation
    emit(
        f"\nphasor cost model: {sweeps} sweeps, unbind "
        f"{profiler.steps['unbind'].flops} flops "
        f"(= {per_sweep_unbinds} x {fhrr.unbind_flops(512, 3)}/sweep)"
    )
    record(
        "algebra",
        benchmark="phasor_cost_model",
        dim=512,
        sweeps=sweeps,
        unbind_flops=profiler.steps["unbind"].flops,
        activation_flops=profiler.steps["activation"].flops,
    )
