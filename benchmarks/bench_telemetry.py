"""Telemetry overhead benchmark (not a paper artifact).

The telemetry subsystem's performance contract: enabling the JSONL event
log must cost <= 5% loadgen throughput, and must not change a single
seeded result bit.  One seeded workload is offered through the in-process
transport with telemetry off and on (interleaved best-of-N to tame
scheduler noise), the digests are compared, and the throughput ratio is
asserted and appended to ``BENCH_telemetry.json``.

The disabled path is one ``log.enabled`` attribute check per call site,
which is why the *off* runs here are also the regression guard for the
instrumentation itself.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py -q``.
"""

import os

from repro.service import InProcessTransport
from repro.service.http.loadgen import LoadGenConfig, run_loadgen
from repro.telemetry import TELEMETRY_ENV, read_events, reset, validate_events

#: Interleaved repeats per mode; best-of keeps the assert robust to a
#: noisy neighbour without loosening the 5% contract.
REPEATS = 3

#: Maximum tolerated throughput loss with telemetry enabled.
MAX_OVERHEAD = 0.05


def _config(requests=48):
    return LoadGenConfig(
        dim=512,
        num_factors=3,
        codebook_size=32,
        codebook_sets=2,
        requests=requests,
        concurrency=(8,),
        max_iterations=30,
        seed=17,
    )


def _measure(config, telemetry_path):
    """One loadgen sweep; telemetry via env so the route matches the CLI."""
    if telemetry_path is not None:
        os.environ[TELEMETRY_ENV] = str(telemetry_path)
    else:
        os.environ.pop(TELEMETRY_ENV, None)
    reset()
    try:
        with InProcessTransport() as transport:
            report = run_loadgen(transport, config)
    finally:
        reset()
        os.environ.pop(TELEMETRY_ENV, None)
    return report.levels[0]


def test_telemetry_overhead_within_5_percent(emit, record, tmp_path):
    """Acceptance: telemetry-on loadgen keeps >= 95% of the throughput."""
    config = _config()

    # Warm caches and BLAS threads in both modes before timing anything.
    _measure(_config(requests=8), None)
    _measure(_config(requests=8), tmp_path / "warm.jsonl")

    off_levels, on_levels = [], []
    for repeat in range(REPEATS):
        off_levels.append(_measure(config, None))
        on_levels.append(
            _measure(config, tmp_path / f"overhead-{repeat}.jsonl")
        )

    off_rps = max(level.throughput_rps for level in off_levels)
    on_rps = max(level.throughput_rps for level in on_levels)
    overhead = 1.0 - on_rps / off_rps
    emit(
        f"\ntelemetry overhead (D=512, F=3, M=32, C=8, {config.requests} "
        f"requests, best of {REPEATS}): off {off_rps:.1f} req/s, "
        f"on {on_rps:.1f} req/s -> {100.0 * overhead:+.2f}%"
    )
    record(
        "telemetry",
        benchmark="loadgen_overhead_c8",
        requests=config.requests,
        repeats=REPEATS,
        rps_telemetry_off=off_rps,
        rps_telemetry_on=on_rps,
        overhead_fraction=overhead,
    )

    # Bit-identity: every repeat of both modes solved the same workload
    # to the same digest - telemetry cannot perturb results.
    digests = {
        level.digest for level in off_levels + on_levels
    }
    assert len(digests) == 1, f"digests diverged: {digests}"

    # The logs the on-runs produced are themselves valid.
    events = read_events(str(tmp_path / "overhead-0.jsonl"))
    assert validate_events(events) == []

    assert overhead <= MAX_OVERHEAD, (
        f"telemetry cost {100.0 * overhead:.1f}% throughput "
        f"(limit {100.0 * MAX_OVERHEAD:.0f}%)"
    )
