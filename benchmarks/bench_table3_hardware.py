"""Benchmark regenerating Table III + the PCM comparison + TSV ablation."""

import pytest

from repro.arch.designs import h3d_design
from repro.arch.dataflow import DataflowSimulator, StepLatency
from repro.experiments import Table3Config, run_table3
from repro.hwmodel.metrics import evaluate_design


@pytest.fixture(scope="module")
def table3_result(emit):
    result = run_table3(Table3Config())
    emit("")
    emit(result.render())
    return result


def test_table3_footprints(table3_result):
    report = table3_result.report
    assert report.metric("h3d").footprint_mm2 == pytest.approx(0.091, abs=0.004)
    assert report.metric("hybrid-2d").footprint_mm2 == pytest.approx(0.544, rel=0.03)
    assert report.metric("sram-2d").footprint_mm2 == pytest.approx(0.114, rel=0.03)


def test_table3_headline_ratios(table3_result):
    report = table3_result.report
    assert report.footprint_saving_vs_hybrid == pytest.approx(5.97, rel=0.05)
    assert report.density_gain_vs_sram == pytest.approx(5.5, rel=0.05)
    assert report.efficiency_gain_vs_sram == pytest.approx(1.2, rel=0.08)


def test_table3_pcm_ratios(table3_result):
    assert table3_result.pcm.throughput_ratio == pytest.approx(1.78, rel=0.05)
    assert table3_result.pcm.efficiency_ratio == pytest.approx(1.48, rel=0.05)


def test_tsv_ablation_buffering_benefit():
    """Sec. IV-A ablation: SRAM batching vs per-element tier thrashing."""
    design = h3d_design()
    simulator = DataflowSimulator(
        design.stack, design.mapping, latency=StepLatency.from_geometry()
    )
    batched = simulator.simulate_sweep(batch=100, factors=4)
    naive = simulator.naive_sweep_cycles(batch=100, factors=4)
    saving = naive / batched.total_cycles
    print(f"\nSRAM-buffer ablation: batched {batched.total_cycles} cycles vs "
          f"naive {naive} cycles -> {saving:.3f}x saving")
    assert saving > 1.0


def test_benchmark_table3_evaluation(benchmark, table3_result):
    # table3_result regenerates and prints the Table III rows.
    assert table3_result.report.rows()
    result = benchmark(lambda: evaluate_design(h3d_design()))
    assert result.footprint_mm2 > 0
