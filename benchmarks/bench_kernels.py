"""Micro-benchmarks of the library's core kernels (not a paper artifact).

Useful for tracking regressions in the primitives every experiment relies
on: crossbar MVMs, the CIM backend similarity chain, one resonator sweep,
and the thermal solve.
"""

import numpy as np
import pytest

from repro.cim import CrossbarArray
from repro.core import CIMBackend, H3DFact
from repro.resonator import ExactBackend, FactorizationProblem, ResonatorNetwork
from repro.vsa import Codebook


@pytest.fixture(scope="module")
def codebook():
    return Codebook.random("c", 1024, 256, rng=0)


def test_benchmark_exact_similarity(benchmark, codebook):
    backend = ExactBackend()
    query = codebook.vector(0)
    benchmark(lambda: backend.similarity(codebook, query))


def test_benchmark_cim_similarity(benchmark, codebook):
    backend = CIMBackend(rng=0)
    query = codebook.vector(0)
    benchmark(lambda: backend.similarity(codebook, query))


def test_benchmark_crossbar_mvm(benchmark):
    xb = CrossbarArray(256, 256, rng=0)
    rng = np.random.default_rng(1)
    weights = 2 * rng.integers(0, 2, size=(256, 256), dtype=np.int8) - 1
    xb.program(weights)
    x = 2 * rng.integers(0, 2, size=256, dtype=np.int8) - 1
    benchmark(lambda: xb.mvm(x))


def test_benchmark_resonator_sweep(benchmark):
    problem = FactorizationProblem.random(1024, 4, 64, rng=0)
    network = ResonatorNetwork(problem.codebooks, max_iterations=1, rng=0)
    benchmark(lambda: network.factorize(problem.product, max_iterations=1))


def test_benchmark_engine_factorize_small(benchmark):
    engine = H3DFact(rng=0)
    problem = FactorizationProblem.random(1024, 3, 8, rng=1)

    def run():
        return engine.factorize(problem, max_iterations=200)

    result = benchmark(run)
    assert result.iterations >= 1
