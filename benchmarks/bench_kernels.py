"""Micro-benchmarks of the library's core kernels (not a paper artifact).

Useful for tracking regressions in the primitives every experiment relies
on: crossbar MVMs, the CIM backend similarity chain, one resonator sweep,
the thermal solve, and - since the vectorized engine landed - the batched
MVM path and the batched-vs-sequential factorization throughput
(``test_batched_throughput_64`` asserts the >= 2x win on a 64-trial
shared-codebook batch and prints the measured numbers).
"""

import time

import numpy as np
import pytest

from repro.cim import CrossbarArray
from repro.core import CIMBackend, H3DFact
from repro.resonator import ExactBackend, FactorizationProblem, ResonatorNetwork
from repro.resonator.batch import factorize_problems, generate_problems
from repro.core.engine import baseline_network
from repro.vsa import Codebook


@pytest.fixture(scope="module")
def codebook():
    return Codebook.random("c", 1024, 256, rng=0)


def test_benchmark_exact_similarity(benchmark, codebook):
    backend = ExactBackend()
    query = codebook.vector(0)
    benchmark(lambda: backend.similarity(codebook, query))


def test_benchmark_exact_similarity_batch64(benchmark, codebook):
    """One stacked (64, dim) similarity call - the batched hot path."""
    backend = ExactBackend()
    rng = np.random.default_rng(1)
    queries = (2 * rng.integers(0, 2, size=(64, 1024), dtype=np.int8) - 1).astype(
        np.float32
    )
    benchmark(lambda: backend.similarity_batch(codebook, queries))


def test_benchmark_exact_similarity_loop64(benchmark, codebook):
    """The same 64 queries as 64 per-trial mat-vec calls (the old loop)."""
    backend = ExactBackend()
    rng = np.random.default_rng(1)
    queries = (2 * rng.integers(0, 2, size=(64, 1024), dtype=np.int8) - 1).astype(
        np.float32
    )
    benchmark(
        lambda: [backend.similarity(codebook, query) for query in queries]
    )


def test_benchmark_cim_similarity(benchmark, codebook):
    backend = CIMBackend(rng=0)
    query = codebook.vector(0)
    benchmark(lambda: backend.similarity(codebook, query))


def test_benchmark_cim_similarity_batch64(benchmark, codebook):
    backend = CIMBackend(rng=0)
    rng = np.random.default_rng(1)
    queries = (2 * rng.integers(0, 2, size=(64, 1024), dtype=np.int8) - 1).astype(
        np.float32
    )
    benchmark(lambda: backend.similarity_batch(codebook, queries))


def test_benchmark_crossbar_mvm(benchmark):
    xb = CrossbarArray(256, 256, rng=0)
    rng = np.random.default_rng(1)
    weights = 2 * rng.integers(0, 2, size=(256, 256), dtype=np.int8) - 1
    xb.program(weights)
    x = 2 * rng.integers(0, 2, size=256, dtype=np.int8) - 1
    benchmark(lambda: xb.mvm(x))


def test_benchmark_resonator_sweep(benchmark):
    problem = FactorizationProblem.random(1024, 4, 64, rng=0)
    network = ResonatorNetwork(problem.codebooks, max_iterations=1, rng=0)
    benchmark(lambda: network.factorize(problem.product, max_iterations=1))


def test_benchmark_batched_resonator_64(benchmark):
    """64 shared-codebook trials through the batched engine."""
    problems = generate_problems(
        dim=1024,
        num_factors=3,
        codebook_size=64,
        trials=64,
        rng=0,
        share_codebooks=True,
    )
    benchmark(
        lambda: factorize_problems(
            lambda p: baseline_network(p.codebooks, max_iterations=50),
            problems,
            engine="batched",
        )
    )


def test_benchmark_engine_factorize_small(benchmark):
    engine = H3DFact(rng=0)
    problem = FactorizationProblem.random(1024, 3, 8, rng=1)

    def run():
        return engine.factorize(problem, max_iterations=200)

    result = benchmark(run)
    assert result.iterations >= 1


def test_batched_throughput_64(emit):
    """The Sec. IV-A batching claim: >= 2x over the per-trial loop.

    Measures wall-clock for 64 shared-codebook trials (one programmed
    array streaming a whole batch) under both engines and asserts the
    batched engine at least doubles throughput.
    """
    # Odd codebook size: the superposition init then has no sign ties, so
    # the deterministic trajectories are bit-identical under both engines.
    problems = generate_problems(
        dim=1024,
        num_factors=3,
        codebook_size=63,
        trials=64,
        rng=0,
        share_codebooks=True,
    )

    def run(engine):
        start = time.perf_counter()
        batch = factorize_problems(
            lambda p: baseline_network(p.codebooks, max_iterations=50),
            problems,
            engine=engine,
        )
        return time.perf_counter() - start, batch

    # Warm both paths once (codebook caches, BLAS threads), then measure.
    run("batched")
    run("sequential")
    batched_seconds, batched = run("batched")
    sequential_seconds, sequential = run("sequential")
    speedup = sequential_seconds / batched_seconds
    emit(
        f"\n64-trial batch (D=1024, F=3, M=63, shared codebooks): "
        f"sequential {sequential_seconds:.3f} s, batched {batched_seconds:.3f} s "
        f"-> {speedup:.1f}x"
    )
    # Deterministic configuration: identical per-trial results either way.
    for seq_result, bat_result in zip(sequential.results, batched.results):
        assert seq_result.indices == bat_result.indices
        assert seq_result.iterations == bat_result.iterations
    assert speedup >= 2.0
