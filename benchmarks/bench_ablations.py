"""Ablation benchmarks: the design choices behind H3DFact's numbers.

Regenerates the design-space evidence DESIGN.md calls out: the
stochasticity window (noise scale), the VTGT threshold calibration, the
ADC-resolution trade, and the 2D-vs-3D thermal comparison of Sec. V-C.
"""

import pytest

from repro.experiments.ablation import AblationConfig, run_ablation
from repro.experiments import Fig5Config, run_fig5
from repro.thermal.comparison import compare_with_2d


@pytest.fixture(scope="module")
def ablation_result(emit):
    config = AblationConfig(
        dim=1024,
        num_factors=3,
        codebook_size=64,
        trials=8,
        max_iterations=1500,
        noise_scales=(0.0, 0.5, 1.0, 4.0),
        pass_counts=(1.0, 4.0, 16.0),
        adc_bits=(2, 4, 8),
    )
    result = run_ablation(config)
    emit("")
    emit(result.render())
    return result


def test_noise_window(ablation_result):
    """Stochasticity helps in a window: zero and extreme noise both lose."""
    sweep = {p.parameter: p.accuracy for p in ablation_result.noise_sweep}
    assert sweep[1.0] >= sweep[0.0]
    assert sweep[1.0] >= sweep[4.0]


def test_threshold_calibration_matters(ablation_result):
    sweep = {p.parameter: p.accuracy for p in ablation_result.threshold_sweep}
    assert sweep[4.0] >= max(sweep.values()) - 0.15


def test_adc_resolution_window(ablation_result):
    sweep = {p.parameter: p.accuracy for p in ablation_result.adc_sweep}
    # 4-bit is the design point; 2-bit loses signal fidelity.
    assert sweep[4.0] >= sweep[2.0]


def test_thermal_2d_comparison():
    fig5 = run_fig5(Fig5Config(grid=24))
    comparison = compare_with_2d(fig5.report, grid=24)
    print()
    print(comparison.render())
    # Paper: 2D at ~44 C, stack at 46.8-47.8 C -> stacking adds a few C.
    assert comparison.die_2d_max_c == pytest.approx(44.0, abs=2.0)
    assert comparison.h3d_report.stack_max_c > comparison.die_2d_max_c


def test_benchmark_ablation_point(benchmark, ablation_result, emit):
    # ablation_result regenerates and prints the full sweep tables; the
    # 2D-vs-3D thermal comparison prints alongside.
    assert ablation_result.noise_sweep
    fig5 = run_fig5(Fig5Config(grid=20))
    comparison = compare_with_2d(fig5.report, grid=20)
    emit("")
    emit(comparison.render())
    config = AblationConfig(
        dim=512,
        codebook_size=16,
        trials=4,
        max_iterations=300,
        noise_scales=(1.0,),
        pass_counts=(4.0,),
        adc_bits=(4,),
    )
    result = benchmark.pedantic(lambda: run_ablation(config), rounds=2, iterations=1)
    assert result.noise_sweep[0].accuracy >= 0.5
