"""Benchmark regenerating Fig. 6: ADC precision + testchip validation."""

import pytest

from repro.experiments import Fig6aConfig, Fig6bConfig, run_fig6a, run_fig6b


@pytest.fixture(scope="module")
def fig6a_result(emit):
    # 100 trials: affordable since the batched engine landed, and large
    # enough that the 4-bit-vs-8-bit comparison reflects statistics rather
    # than one lucky noise stream (both settings run identical problems).
    result = run_fig6a(
        Fig6aConfig(dim=1024, codebook_size=64, trials=100, max_iterations=400)
    )
    emit("")
    emit(result.render())
    return result


@pytest.fixture(scope="module")
def fig6b_result(emit):
    result = run_fig6b(Fig6bConfig(trials=60, max_iterations=40))
    emit("")
    emit(result.render())
    return result


def test_fig6a_low_precision_leads(fig6a_result):
    curve4 = fig6a_result.curves[4]
    curve8 = fig6a_result.curves[8]
    mid = slice(30, 300)
    assert curve4[mid].mean() >= curve8[mid].mean() - 0.05


def test_fig6b_99_within_budget(fig6b_result):
    assert fig6b_result.accuracy_at_25 >= 0.95


def test_fig6b_one_shot_above_chance(fig6b_result):
    # Whole-object exact decode after a single sweep (strictest metric).
    assert fig6b_result.one_shot_accuracy > 0.4


def test_benchmark_fig6b(benchmark, fig6a_result, fig6b_result):
    # The two fixtures regenerate and print the Fig. 6a/6b series.
    assert fig6b_result.accuracy_at_25 > 0.5
    assert 4 in fig6a_result.curves
    result = benchmark.pedantic(
        lambda: run_fig6b(Fig6bConfig(trials=10, max_iterations=30)),
        rounds=3,
        iterations=1,
    )
    assert result.accuracy_at_25 > 0.5
