"""Benchmark regenerating Fig. 7: RAVEN-style perception accuracy."""

import pytest

from repro.experiments import Fig7Config, run_fig7
from repro.perception import NeuroSymbolicPipeline

CONFIG = Fig7Config(
    dim=1024,
    image_size=48,
    train_panels=3200,
    test_panels=150,
    noise_std=0.01,
    max_iterations=150,
)


@pytest.fixture(scope="module")
def fig7_result(emit):
    result = run_fig7(CONFIG)
    emit("")
    emit(result.render())
    return result


def test_fig7_attribute_accuracy(fig7_result):
    # Paper: 99.4 %; the reproduced pipeline lands in the same regime.
    assert fig7_result.report.attribute_accuracy >= 0.97


def test_fig7_frontend_quality(fig7_result):
    assert fig7_result.report.frontend_bit_accuracy >= 0.95


def test_fig7_all_attributes_high(fig7_result):
    for name, acc in fig7_result.report.per_attribute_accuracy.items():
        assert acc >= 0.9, f"attribute {name} at {acc}"


def test_benchmark_inference(benchmark, fig7_result):
    # fig7_result regenerates and prints the Fig. 7 accuracy report.
    assert fig7_result.report.panels > 0
    pipeline = NeuroSymbolicPipeline(dim=512, image_size=32, rng=0)
    pipeline.train(train_panels=600, noise_std=0.01)
    from repro.perception import RavenDataset

    panel = RavenDataset.generate(1, image_size=32, rng=1)[0]
    decoded = benchmark(lambda: pipeline.infer_scene(panel.image))
    assert set(decoded.as_dict()) == {"type", "size", "color", "position"}
