"""Benchmark regenerating Fig. 5: thermal map of the 3-tier stack."""

import pytest

from repro.experiments import Fig5Config, run_fig5


@pytest.fixture(scope="module")
def fig5_result(emit):
    result = run_fig5(Fig5Config(grid=30))
    emit("")
    emit(result.render())
    return result


def test_fig5_range_near_paper(fig5_result):
    report = fig5_result.report
    assert 44.0 < report.stack_min_c < 49.0
    assert 45.0 < report.stack_max_c < 52.0


def test_fig5_southern_gradient(fig5_result):
    assert fig5_result.report.south_north_delta_c["tier2"] > 0


def test_fig5_retention(fig5_result):
    assert fig5_result.report.retention_ok


def test_benchmark_thermal_solve(benchmark, fig5_result):
    # fig5_result regenerates and prints the Fig. 5 map at full grid.
    assert fig5_result.report.stack_max_c > 25.0
    result = benchmark(lambda: run_fig5(Fig5Config(grid=20)))
    assert result.report.stack_max_c > 25.0
