"""Crossbar-fidelity benchmarks (not a paper artifact).

The acceptance number for the full-fidelity path: a 32-trial batch on the
tiled crossbar backend (:class:`repro.core.crossbar_backend.CIMBatchedBackend`)
must beat the per-trial sequential loop (``H3DFACT_ENGINE=sequential``) by
>= 3x wall-clock while returning bit-identical results - trials are
seeded, so every per-trial noise stream replays exactly under both
engines.  Also measures the program-once conductance amortization across
request waves.

The workload pins the sweep count (products outside the codebooks' image
never solve, and the budget is fixed), so the comparison measures engine
overhead rather than convergence luck.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_crossbar.py -q``.
"""

import time

import numpy as np

from repro.core.crossbar_backend import ConductanceCache
from repro.core.engine import H3DFact
from repro.resonator.network import FactorizationProblem
from repro.resonator.replay import run_group
from repro.utils.rng import as_rng
from repro.vsa.codebook import CodebookSet

TRIALS = 32
SWEEPS = 15
DIM = 1024
FACTORS = 3
CODEBOOK_SIZE = 64


def _fixed_sweep_problems(trials=TRIALS, *, seed=0):
    """Shared-codebook problems whose products never recompose exactly.

    Random (non-composed) products keep the solved check from firing, so
    every trial runs the full sweep budget under both engines.
    """
    rng = as_rng(seed)
    codebooks = CodebookSet.random_uniform(DIM, FACTORS, CODEBOOK_SIZE, rng=rng)
    return [
        FactorizationProblem(
            codebooks=codebooks,
            product=(2 * rng.integers(0, 2, size=DIM, dtype=np.int8) - 1).astype(
                np.float32
            ),
        )
        for _ in range(trials)
    ]


def _run(problems, seeds, engine):
    h3d = H3DFact(fidelity="crossbar", rng=1)
    return run_group(
        lambda p: h3d.make_network(p.codebooks, max_iterations=SWEEPS),
        problems,
        seeds=seeds,
        check_correct_every=4,
        engine=engine,
    )


def test_crossbar_batched_speedup_32(emit, record):
    """Acceptance: >= 3x over the per-trial loop at 32 full-fidelity trials."""
    problems = _fixed_sweep_problems()
    seeds = [4_000 + i for i in range(len(problems))]

    # Warm both paths (BLAS threads, conductance programming), then measure.
    _run(problems[:4], seeds[:4], "batched")
    _run(problems[:4], seeds[:4], "sequential")

    start = time.perf_counter()
    sequential = _run(problems, seeds, "sequential")
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = _run(problems, seeds, "batched")
    batched_seconds = time.perf_counter() - start

    speedup = sequential_seconds / batched_seconds
    emit(
        f"\ncrossbar fidelity, {TRIALS} trials x {SWEEPS} sweeps "
        f"(D={DIM}, F={FACTORS}, M={CODEBOOK_SIZE}): sequential "
        f"{sequential_seconds:.3f} s, batched {batched_seconds:.3f} s "
        f"-> {speedup:.1f}x"
    )
    record(
        "crossbar",
        benchmark="batched_speedup_32",
        trials=TRIALS,
        sweeps=SWEEPS,
        sequential_seconds=sequential_seconds,
        batched_seconds=batched_seconds,
        speedup=speedup,
    )
    # Bit-identical replay: each seeded trial's noise stream and exact
    # integer crossbar arithmetic are engine-independent.
    for a, b in zip(batched, sequential):
        assert a.indices == b.indices
        assert a.iterations == b.iterations
        assert a.outcome == b.outcome
    assert speedup >= 3.0


def test_conductance_programming_amortized(emit):
    """Repeated traffic against one codebook set programs it once."""
    cache = ConductanceCache()
    h3d = H3DFact(fidelity="crossbar", rng=1)
    problems = _fixed_sweep_problems(8)

    def factory(problem):
        network = h3d.make_network(problem.codebooks, max_iterations=SWEEPS)
        network.backend.cache = cache
        return network

    start = time.perf_counter()
    run_group(factory, problems, seeds=list(range(8)), engine="batched")
    first_wave = time.perf_counter() - start
    start = time.perf_counter()
    run_group(factory, problems, seeds=list(range(8)), engine="batched")
    second_wave = time.perf_counter() - start
    emit(
        f"\nconductance amortization: wave 1 {first_wave:.3f} s "
        f"(programs {cache.misses} codebooks), wave 2 {second_wave:.3f} s "
        f"({cache.hits} hits)"
    )
    # One programming event per factor codebook, everything else hits.
    assert cache.misses == FACTORS
    assert cache.hits > 0
