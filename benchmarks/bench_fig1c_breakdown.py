"""Benchmark regenerating Fig. 1c: op breakdown + baseline accuracy cliff.

Run with ``pytest benchmarks/bench_fig1c_breakdown.py --benchmark-only``.
The benchmark times one profiled resonator run; the printed report is the
figure's content.
"""

import pytest

from repro.experiments import Fig1cConfig, run_fig1c

CONFIG = Fig1cConfig(
    dim=1024,
    profile_codebook_size=64,
    profile_iterations=30,
    scaling_sizes=(8, 16, 32, 64, 128),
    scaling_trials=10,
    scaling_max_iterations=300,
)


@pytest.fixture(scope="module")
def fig1c_result(emit):
    result = run_fig1c(CONFIG)
    emit("")
    emit(result.render())
    return result


def test_fig1c_mvm_dominates(fig1c_result):
    assert fig1c_result.mvm_op_fraction > 0.7


def test_fig1c_accuracy_cliff(fig1c_result):
    accuracies = fig1c_result.baseline_accuracy
    assert accuracies[8] > accuracies[128]


def bench_profiled_run():
    config = Fig1cConfig(
        dim=1024,
        profile_codebook_size=64,
        profile_iterations=10,
        scaling_sizes=(8,),
        scaling_trials=2,
        scaling_max_iterations=50,
    )
    return run_fig1c(config)


def test_benchmark_fig1c(benchmark, fig1c_result):
    # fig1c_result regenerates and prints the figure's data; the benchmark
    # times a reduced profiled run.
    result = benchmark.pedantic(bench_profiled_run, rounds=3, iterations=1)
    assert result.mvm_op_fraction > 0.5
    assert fig1c_result.mvm_op_fraction > 0.5
