"""Multi-node cluster throughput benchmark (not a paper artifact).

One acceptance number for the cluster tier, appended to
``BENCH_cluster.json`` through the conftest recording hooks: the same
seeded closed-loop workload at C=64 offered to a 1-node and a 3-node
cluster (real subprocess nodes - threaded nodes share one GIL and
cannot scale) must show >= 1.5x aggregate throughput on the 3-node
fleet *when the machine has >= 4 cores*.  Like the shard-scaling bench,
the assert is core-gated (three node processes cannot beat one on a
single-core box); the digest check is unconditional - topology must
never change a seeded factorization.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q``.
"""

import os

from repro.cluster import LocalCluster
from repro.service import InProcessTransport
from repro.service.http.loadgen import LoadGenConfig, run_loadgen


def _cores():
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_cluster_node_scaling_c64(emit, record):
    """3 nodes vs 1 node at 64 concurrent requests, digests pinned."""
    cores = _cores()
    config = LoadGenConfig(
        dim=512,
        num_factors=3,
        codebook_size=32,
        codebook_sets=4,
        requests=64,
        concurrency=(64,),
        max_iterations=30,
        seed=11,
    )
    warm_config = LoadGenConfig(
        dim=config.dim,
        codebook_size=config.codebook_size,
        codebook_sets=config.codebook_sets,
        requests=8,
        concurrency=(8,),
        max_iterations=config.max_iterations,
        seed=config.seed,
    )

    with InProcessTransport() as transport:
        reference = run_loadgen(transport, config).levels[0]
    assert reference.errors == 0

    def measure(nodes):
        with LocalCluster(nodes, processes=True) as cluster:
            client = cluster.client(replication=2, jitter_seed=config.seed)
            try:
                # Warm node registries, sockets and worker caches first.
                warm = run_loadgen(client, warm_config, timeout=120.0)
                assert warm.levels[0].errors == 0
                level = run_loadgen(client, config, timeout=120.0).levels[0]
            finally:
                client.close()
        assert level.errors == 0
        return level

    single = measure(1)
    triple = measure(3)

    speedup = triple.throughput_rps / single.throughput_rps
    emit(
        f"\ncluster C=64 (D=512, F=3, M=32, 4 codebook sets, subprocess "
        f"nodes): 1 node {single.throughput_rps:.1f} req/s "
        f"(p95 {single.p95_ms:.1f} ms), 3 nodes "
        f"{triple.throughput_rps:.1f} req/s (p95 {triple.p95_ms:.1f} ms) "
        f"-> {speedup:.2f}x on {cores} core(s)"
    )
    record(
        "cluster",
        benchmark="cluster_node_scaling_c64",
        cores=cores,
        requests=config.requests,
        concurrency=64,
        rps_single_node=single.throughput_rps,
        rps_three_nodes=triple.throughput_rps,
        p95_ms_single_node=single.p95_ms,
        p95_ms_three_nodes=triple.p95_ms,
        speedup=speedup,
        digest_match=(
            single.digest == reference.digest
            and triple.digest == reference.digest
        ),
    )
    # Bit-identity across topologies is unconditional: routing decides
    # where a request computes, never what it computes.
    assert single.digest == reference.digest
    assert triple.digest == reference.digest
    assert single.solved == triple.solved == reference.solved
    if cores >= 4:
        assert speedup >= 1.5, (
            f"3 nodes gave only {speedup:.2f}x over 1 node at C=64 "
            f"on {cores} cores"
        )
    else:
        emit(
            f"\n  ({cores} core(s): node-scaling assert skipped; "
            "measurements and bit-identity recorded)"
        )
