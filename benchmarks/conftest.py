"""Shared benchmark fixtures and the perf-trajectory recorder.

``emit`` prints straight to the terminal, bypassing pytest's output
capture, so the regenerated paper tables/series are visible in the
``pytest benchmarks/ --benchmark-only`` output (and in bench_output.txt).

Every ``benchmarks/bench_<area>.py`` run also appends one machine-readable
record to ``BENCH_<area>.json`` at the repo root - the per-test outcomes
and wall-clock durations are captured automatically by the session hooks
below, and benchmarks with headline numbers (speedups, throughput) attach
them explicitly through the ``record`` fixture.  The files are
append-only JSON arrays, so successive runs accumulate a perf trajectory
that can be diffed across commits.
"""

import json
import platform
import time
from pathlib import Path

import pytest

_BENCH_PREFIX = "bench_"


def _area_for(nodeid: str):
    """``benchmarks/bench_crossbar.py::test_x`` -> ``crossbar`` (or None)."""
    stem = Path(nodeid.split("::")[0]).stem
    if not stem.startswith(_BENCH_PREFIX):
        return None
    return stem[len(_BENCH_PREFIX):]


def _append_record(root: Path, area: str, payload: dict) -> Path:
    """Append one record to ``BENCH_<area>.json`` (an append-only array)."""
    target = root / f"BENCH_{area}.json"
    records = []
    if target.exists():
        try:
            loaded = json.loads(target.read_text())
            records = loaded if isinstance(loaded, list) else [loaded]
        except ValueError:
            records = []
    records.append(payload)
    target.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
    return target


def _machine_tag() -> str:
    return f"{platform.system()}-{platform.machine()}-py{platform.python_version()}"


@pytest.fixture(scope="session")
def emit(pytestconfig):
    capmanager = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        if capmanager is not None:
            with capmanager.global_and_fixture_disabled():
                print(text)
        else:  # pragma: no cover - capture always present under pytest
            print(text)

    return _emit


@pytest.fixture(scope="session")
def record(pytestconfig):
    """Append a headline metrics record to ``BENCH_<area>.json``.

    ``record(area, **metrics)`` - e.g. ``record("algebra", dim=8192,
    speedup=5.2)``.  Timestamp and machine tag are filled in
    automatically; everything else is caller-defined, so each area keeps
    whatever headline numbers make sense for it.
    """
    root = Path(str(pytestconfig.rootpath))

    def _record(area: str, **metrics) -> Path:
        payload = {
            "kind": "metrics",
            "timestamp": time.time(),
            "machine": _machine_tag(),
        }
        payload.update(metrics)
        return _append_record(root, area, payload)

    return _record


_RUNS = {}


def pytest_runtest_logreport(report):
    """Collect per-test outcome/duration for every bench_* file."""
    if report.when != "call":
        return
    area = _area_for(report.nodeid)
    if area is None:
        return
    _RUNS.setdefault(area, []).append(
        {
            "test": report.nodeid.split("::", 1)[1],
            "outcome": report.outcome,
            "seconds": round(report.duration, 4),
        }
    )


def pytest_sessionfinish(session, exitstatus):
    """One run record per exercised area, appended at session end."""
    if not _RUNS:
        return
    root = Path(str(session.config.rootpath))
    for area, tests in sorted(_RUNS.items()):
        _append_record(
            root,
            area,
            {
                "kind": "run",
                "timestamp": time.time(),
                "machine": _machine_tag(),
                "tests": tests,
            },
        )
    _RUNS.clear()
