"""Shared benchmark fixtures.

``emit`` prints straight to the terminal, bypassing pytest's output
capture, so the regenerated paper tables/series are visible in the
``pytest benchmarks/ --benchmark-only`` output (and in bench_output.txt).
"""

import pytest


@pytest.fixture(scope="session")
def emit(pytestconfig):
    capmanager = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _emit(text: str) -> None:
        if capmanager is not None:
            with capmanager.global_and_fixture_disabled():
                print(text)
        else:  # pragma: no cover - capture always present under pytest
            print(text)

    return _emit
