"""Neuro-symbolic visual perception (the Fig. 7 workload).

Trains the numpy front-end on synthetic RAVEN-style panels, then runs the
full image -> product-vector -> H3DFact -> attributes pipeline on fresh
panels and prints the attribute-estimation accuracy.

Run:  python examples/visual_perception.py          (reduced scale, ~20 s)
      python examples/visual_perception.py --full   (paper scale)
"""

import argparse

from repro.perception import NeuroSymbolicPipeline, RavenDataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale run")
    args = parser.parse_args()

    train_panels = 3200 if args.full else 1200
    test_panels = 200 if args.full else 60

    pipeline = NeuroSymbolicPipeline(dim=1024, image_size=48, rng=0)
    print(f"training front-end on {train_panels} panels ...")
    train_acc = pipeline.train(train_panels, noise_std=0.01)
    print(f"  training bit accuracy: {100 * train_acc:.1f} %")

    print(f"evaluating on {test_panels} fresh panels ...")
    report = pipeline.evaluate(test_panels, noise_std=0.01)
    print(report.render())

    # Inspect one panel end to end.
    panel = RavenDataset.generate(1, image_size=48, noise_std=0.01, rng=99)[0]
    decoded = pipeline.infer_scene(panel.image)
    print(f"\nexample panel truth:   {panel.scene}")
    print(f"example panel decoded: {decoded}")


if __name__ == "__main__":
    main()
