"""Operational-capacity sweep: baseline vs H3DFact (Table II, reduced).

Sweeps the per-factor codebook size at F = 3 and prints accuracy and
iteration statistics for the deterministic baseline resonator and the
stochastic H3DFact configuration, showing the capacity cliff and its
stochastic rescue.

Run:  python examples/capacity_sweep.py [--dim 1024] [--trials 10]
"""

import argparse

from repro.core.engine import H3DFact, baseline_network
from repro.resonator.batch import factorize_batch


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dim", type=int, default=1024)
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--factors", type=int, default=3)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[16, 32, 64, 128]
    )
    args = parser.parse_args()

    print(
        f"{'M':>5} {'search':>12} | {'baseline acc':>12} {'iters':>7} | "
        f"{'H3D acc':>8} {'iters':>7}"
    )
    for size in args.sizes:
        baseline = factorize_batch(
            lambda p: baseline_network(p.codebooks, max_iterations=800),
            dim=args.dim,
            num_factors=args.factors,
            codebook_size=size,
            trials=args.trials,
            rng=0,
        )
        engine = H3DFact(rng=1)
        stochastic = factorize_batch(
            lambda p: engine.make_network(p.codebooks, max_iterations=6000),
            dim=args.dim,
            num_factors=args.factors,
            codebook_size=size,
            trials=args.trials,
            rng=0,
            check_correct_every=2,
        )
        search_space = size**args.factors
        print(
            f"{size:>5} {search_space:>12} | "
            f"{100 * baseline.accuracy:>11.1f}% "
            f"{baseline.statistics.mean_iterations:>7.0f} | "
            f"{100 * stochastic.accuracy:>7.1f}% "
            f"{stochastic.statistics.mean_iterations:>7.0f}"
        )


if __name__ == "__main__":
    main()
