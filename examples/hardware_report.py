"""Hardware deep-dive: Table III, floorplans, thermal map, PCM comparison.

Prints the full PPA roll-up for the three iso-capacity designs, the
per-tier area and energy breakdowns behind the headline numbers, the
Fig. 5 thermal analysis, and the modeled cost of a single factorization.

Run:  python examples/hardware_report.py
"""

from repro.arch.designs import h3d_design
from repro.core import H3DFact
from repro.experiments import Table3Config, run_table3
from repro.floorplan import h3d_floorplans
from repro.hwmodel import AreaModel, EnergyModel
from repro.resonator import FactorizationProblem


def main() -> None:
    # Table III + PCM comparison.
    result = run_table3(Table3Config())
    print(result.render())

    # Component-level breakdowns behind the table.
    design = h3d_design()
    print()
    print(AreaModel().evaluate(design).report())
    print()
    print(EnergyModel().evaluate(design).report())

    # Floorplan summary (Fig. 4).
    engine = H3DFact.default(rng=0)
    plans = h3d_floorplans(engine.ppa().energy)
    print("\nFloorplans (Fig. 4):")
    for name, plan in plans.items():
        print(
            f"  {name}: {plan.width_mm:.3f} x {plan.height_mm:.3f} mm, "
            f"{len(plan.blocks)} blocks, utilization "
            f"{100 * plan.utilization:.0f} %, power "
            f"{1e3 * plan.total_power_w:.2f} mW "
            f"(south share {100 * plan.south_power_fraction():.0f} %)"
        )

    # Thermal analysis (Fig. 5).
    print()
    report = engine.thermal(grid=30)
    print(report.render())

    # Modeled cost of one factorization run.
    problem = FactorizationProblem.random(1024, 4, 16, rng=3)
    run = engine.factorize_with_report(problem, max_iterations=600)
    print(
        f"\none factorization (F=4, M=16): {run.result.iterations} iterations"
        f" -> {run.cycles} cycles, {run.hardware_microseconds:.1f} us, "
        f"{1e9 * run.hardware_joules:.1f} nJ on the modeled chip"
    )


if __name__ == "__main__":
    main()
