"""Serve a stream of factorization requests through the micro-batching service.

Simulates live traffic: several "clients" submit individual requests
against a handful of shared codebook sets, the scheduler coalesces them
into stacked batches, and the registry pays each set's programming cost
once.  Run with ``PYTHONPATH=src python examples/service_traffic.py``.
"""

import random
import threading

from repro.core.engine import baseline_network
from repro.resonator import FactorizationProblem
from repro.service import (
    BatchPolicy,
    CodebookRegistry,
    FactorizationRequest,
    FactorizationService,
)
from repro.vsa import CodebookSet

DIM, FACTORS, SIZE = 1024, 3, 32
CLIENTS, REQUESTS_PER_CLIENT = 4, 16


def main() -> None:
    # Three "tenants", each with their own programmed codebook set.
    tenants = [
        CodebookSet.random_uniform(DIM, FACTORS, SIZE, rng=seed)
        for seed in range(3)
    ]
    service = FactorizationService(
        lambda p: baseline_network(p.codebooks, max_iterations=100),
        policy=BatchPolicy(max_batch_size=16, max_wait_seconds=0.05),
        registry=CodebookRegistry(capacity=8),
        workers=2,
    )
    correct = 0
    lock = threading.Lock()

    def client(client_id: int) -> None:
        nonlocal correct
        rng = random.Random(client_id)
        futures = []
        for index in range(REQUESTS_PER_CLIENT):
            codebooks = tenants[rng.randrange(len(tenants))]
            truth = tuple(rng.randrange(SIZE) for _ in range(FACTORS))
            futures.append(
                service.submit(
                    FactorizationRequest(
                        product=codebooks.compose(truth),
                        codebooks=codebooks,
                        seed=client_id * 1000 + index,
                        true_indices=truth,
                    )
                )
            )
        hits = sum(1 for f in futures if f.result(timeout=60).result.correct)
        with lock:
            correct += hits

    with service:
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    total = CLIENTS * REQUESTS_PER_CLIENT
    print(f"served {total} requests from {CLIENTS} client threads")
    print(
        f"  accuracy: {100.0 * correct / total:.1f} % "
        f"({correct}/{total} decoded correctly)"
    )
    print(
        f"  batches: {service.stats.batches} "
        f"(mean size {service.stats.mean_batch_size:.1f}, "
        f"largest {service.stats.largest_batch})"
    )
    print(
        f"  codebook cache: {service.registry.stats.hits} hits / "
        f"{service.registry.stats.misses} misses "
        f"(programmed {service.registry.stats.misses} of "
        f"{service.stats.submitted} submissions)"
    )


if __name__ == "__main__":
    main()
