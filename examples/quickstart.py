"""Quickstart: factorize a holographic product vector on H3DFact.

Builds the paper's running example (Fig. 1a): a visual object described by
shape, color, vertical and horizontal position, encoded as the binding of
four item hypervectors - then recovered by the H3DFact engine.

Run:  python examples/quickstart.py
"""

from repro.core import H3DFact, baseline_network
from repro.vsa import VISUAL_OBJECT_ATTRIBUTES, AttributeScene, SceneEncoder


def main() -> None:
    # 1. Codebooks: one per attribute, random bipolar item vectors.
    encoder = SceneEncoder(VISUAL_OBJECT_ATTRIBUTES, dim=1024, rng=0)

    # 2. Encode an object: bind its four attribute vectors (Fig. 1a).
    scene = AttributeScene.from_dict(
        {
            "shape": "triangle",
            "color": "blue",
            "vertical": "top",
            "horizontal": "left",
        }
    )
    product = encoder.encode(scene)
    print(f"encoded: {scene}")
    print(f"product vector: dim={product.size}, first 12 = {product[:12]}")

    # 3. Factorize with the H3DFact engine (testchip noise + 4-bit ADC).
    engine = H3DFact.default(rng=1)
    result = engine.factorize(product, codebooks=encoder.codebooks)
    decoded = encoder.decode_indices(list(result.indices))
    print(f"decoded: {decoded}")
    print(
        f"outcome: {result.outcome.value}, iterations: {result.iterations}, "
        f"exact recomposition: {result.product_match}"
    )
    assert decoded == scene

    # 4. The same problem on the deterministic baseline resonator.
    baseline = baseline_network(encoder.codebooks, rng=2)
    base_result = baseline.factorize(product)
    print(
        f"baseline resonator: outcome={base_result.outcome.value}, "
        f"iterations={base_result.iterations}"
    )

    # 5. Hardware view: what did that run cost on the modeled chip?
    metrics = engine.ppa()
    print(
        f"modeled hardware: {metrics.footprint_mm2:.3f} mm^2 footprint, "
        f"{metrics.frequency_mhz:.0f} MHz, "
        f"{metrics.throughput_tops:.2f} TOPS, "
        f"{metrics.tops_per_watt:.1f} TOPS/W"
    )


if __name__ == "__main__":
    main()
