"""Beyond perception: the Sec. V-E extension applications.

Demonstrates the three cognitive workloads the paper cites as future
directions, all running on the same H3DFact engine: analogical reasoning
(Kanerva's "dollar of Mexico"), holographic tree search, and symbolic
integer factorization.

Run:  python examples/extensions.py
"""

from repro.apps import AnalogyEngine, IntegerFactorizer, TreePathDecoder
from repro.apps.integer import primes_below


def demo_analogy() -> None:
    print("== analogical reasoning ==")
    engine = AnalogyEngine(
        roles=("capital", "currency", "language"),
        fillers=(
            "paris", "euro", "french",
            "mexico-city", "peso", "spanish",
        ),
        dim=2048,
        rng=0,
    )
    france = engine.encode_record(
        "france", {"capital": "paris", "currency": "euro", "language": "french"}
    )
    mexico = engine.encode_record(
        "mexico",
        {"capital": "mexico-city", "currency": "peso", "language": "spanish"},
    )
    answer = engine.analogy(france, "euro", mexico)
    print(f"  'euro' is to France as '{answer}' is to Mexico")
    print(f"  capital of mexico: {engine.filler_of(mexico, 'capital')}")


def demo_tree() -> None:
    print("== holographic tree search ==")
    decoder = TreePathDecoder(depth=5, branching=4, dim=1024, rng=1)
    choices = [2, 0, 3, 1, 2]
    path = decoder.encode_path(choices)
    decoded, iterations = decoder.decode_path(path)
    print(
        f"  tree with {decoder.num_leaves} leaves: path {choices} "
        f"decoded as {decoded} in {iterations} resonator iterations"
    )


def demo_integer() -> None:
    print("== symbolic integer factorization ==")
    factorizer = IntegerFactorizer(primes_below(100), dim=1024, rng=2)
    for n in (13 * 47, 89 * 97, 29 * 29):
        result = factorizer.factor_number(n)
        print(f"  {n} = {result[0]} x {result[1]}")


if __name__ == "__main__":
    demo_analogy()
    demo_tree()
    demo_integer()
