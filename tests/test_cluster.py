"""Unit tests for the cluster control plane (no sockets).

Covers the pure pieces of :mod:`repro.cluster`: the versioned
:class:`~repro.cluster.shardmap.ShardMap` and its codec, the
:class:`~repro.cluster.membership.ClusterCoordinator` epoch protocol
(driven by an injected clock so expiry is scripted, not slept), the
:class:`~repro.cluster.replication.RegistrationLedger` replay diff, and
the fleet-metrics merger.  The HTTP-level behaviour lives in
``tests/test_cluster_serving.py``.
"""

import pytest

from repro.cluster import (
    ClusterCoordinator,
    NodeInfo,
    RegistrationLedger,
    ShardMap,
    histogram_percentiles,
    merge_histograms,
    merge_metrics,
)
from repro.errors import ConfigurationError


def fleet(count, fidelities=()):
    return [
        NodeInfo(f"node{index}", f"http://127.0.0.1:{9000 + index}", fidelities)
        for index in range(count)
    ]


class FakeClock:
    """Scriptable monotonic clock for expiry tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestNodeInfo:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeInfo("", "http://x")
        with pytest.raises(ConfigurationError):
            NodeInfo("a", "")
        with pytest.raises(ConfigurationError):
            NodeInfo("a", "http://x", fidelities=("warp-drive",))

    def test_supports_semantics(self):
        open_node = NodeInfo("a", "http://x")
        sram_only = NodeInfo("b", "http://y", fidelities=("sram",))
        # None (request named no profile) and empty caps both mean "any".
        assert open_node.supports(None)
        assert open_node.supports("crossbar")
        assert sram_only.supports(None)
        assert sram_only.supports("sram")
        assert not sram_only.supports("crossbar")

    def test_payload_roundtrip(self):
        node = NodeInfo("a", "http://x:1", fidelities=("sram", "hybrid"))
        assert NodeInfo.from_payload(node.to_payload()) == node
        with pytest.raises(ConfigurationError):
            NodeInfo.from_payload({"url": "http://x"})


class TestShardMap:
    def test_codec_roundtrip_and_order_independence(self):
        nodes = fleet(3)
        shard_map = ShardMap(nodes, epoch=7, vnodes=32)
        assert ShardMap.from_payload(shard_map.to_payload()) == shard_map
        # Node order at construction never matters: ids sort.
        assert ShardMap(list(reversed(nodes)), epoch=7, vnodes=32) == shard_map
        assert shard_map.node_ids() == ("node0", "node1", "node2")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardMap(fleet(2), epoch=-1)
        with pytest.raises(ConfigurationError):
            ShardMap([fleet(1)[0], fleet(1)[0]])
        with pytest.raises(ConfigurationError):
            ShardMap([]).route("key")
        with pytest.raises(ConfigurationError):
            ShardMap(fleet(2)).node("ghost")

    def test_route_is_primary_replica(self):
        shard_map = ShardMap(fleet(4))
        for index in range(64):
            key = f"fingerprint-{index}"
            replicas = shard_map.replicas(key, 3)
            assert replicas[0] == shard_map.route(key)
            ids = [node.node_id for node in replicas]
            assert len(set(ids)) == len(ids) == 3

    def test_replicas_clamped_to_fleet(self):
        shard_map = ShardMap(fleet(2))
        assert len(shard_map.replicas("key", 5)) == 2

    def test_fidelity_filtering(self):
        nodes = [
            NodeInfo("cpu", "http://a", fidelities=("baseline",)),
            NodeInfo("sram", "http://b", fidelities=("sram",)),
            NodeInfo("any", "http://c"),
        ]
        shard_map = ShardMap(nodes)
        for index in range(32):
            owner = shard_map.route(f"k{index}", fidelity="sram")
            assert owner.node_id in ("sram", "any")
        # Nobody advertises crossbar except the unrestricted node.
        for index in range(32):
            assert shard_map.route(f"k{index}", fidelity="crossbar").node_id == "any"

    def test_fidelity_unservable_is_typed(self):
        shard_map = ShardMap([NodeInfo("a", "http://x", ("sram",))])
        with pytest.raises(ConfigurationError):
            shard_map.route("key", fidelity="crossbar")

    def test_spread_deterministic_and_bounded(self):
        picks = [ShardMap.spread("key", str(salt), 3) for salt in range(200)]
        assert picks == [
            ShardMap.spread("key", str(salt), 3) for salt in range(200)
        ]
        assert set(picks) == {0, 1, 2}  # 200 salts cover 3 slots
        assert ShardMap.spread("key", "salt", 1) == 0
        assert ShardMap.spread("key", "salt", 0) == 0


class TestClusterCoordinator:
    def test_register_bumps_epoch_once_per_change(self):
        clock = FakeClock()
        coordinator = ClusterCoordinator(clock=clock)
        node = fleet(1)[0]
        assert coordinator.epoch == 0
        assert coordinator.register(node) == 1
        # Identical re-registration refreshes liveness, not the epoch.
        assert coordinator.register(node) == 1
        # A changed record (new URL after restart) is a membership change.
        moved = NodeInfo(node.node_id, "http://127.0.0.1:9999")
        assert coordinator.register(moved) == 2
        assert coordinator.shard_map().node("node0").url == moved.url

    def test_heartbeat_keeps_member_alive(self):
        clock = FakeClock()
        coordinator = ClusterCoordinator(heartbeat_timeout=5.0, clock=clock)
        coordinator.register(fleet(1)[0])
        for _ in range(4):
            clock.advance(4.0)
            epoch, known = coordinator.heartbeat("node0")
            assert (epoch, known) == (1, True)
        assert coordinator.shard_map().node_ids() == ("node0",)

    def test_expiry_drops_silent_nodes_with_one_bump(self):
        clock = FakeClock()
        coordinator = ClusterCoordinator(heartbeat_timeout=5.0, clock=clock)
        for node in fleet(3):
            coordinator.register(node)
        assert coordinator.epoch == 3
        clock.advance(2.0)
        coordinator.heartbeat("node1")
        clock.advance(4.0)  # node0/node2 silent for 6s, node1 for 4s
        shard_map = coordinator.shard_map()
        assert shard_map.node_ids() == ("node1",)
        # Two expiries in one sweep cost one epoch bump, not two.
        assert shard_map.epoch == 4
        status = coordinator.status_payload()
        assert status["counters"]["expired"] == 2

    def test_heartbeat_never_resurrects(self):
        clock = FakeClock()
        coordinator = ClusterCoordinator(heartbeat_timeout=1.0, clock=clock)
        node = fleet(1)[0]
        coordinator.register(node)
        clock.advance(2.0)
        epoch, known = coordinator.heartbeat("node0")
        assert not known  # expired: the node must visibly re-register
        assert "node0" not in coordinator.shard_map()
        rejoin_epoch = coordinator.register(node)
        assert rejoin_epoch > epoch

    def test_leave_and_unknown_leave(self):
        coordinator = ClusterCoordinator(heartbeat_timeout=None)
        for node in fleet(2):
            coordinator.register(node)
        assert coordinator.leave("node0") == 3
        assert coordinator.leave("ghost") == 3  # no-op, no bump
        assert coordinator.shard_map().node_ids() == ("node1",)

    def test_static_mode_never_expires(self):
        coordinator = ClusterCoordinator.static(fleet(3))
        assert coordinator.heartbeat_timeout is None
        assert len(coordinator.shard_map()) == 3
        # No clock injection needed: expiry is disabled outright.
        assert coordinator.shard_map().epoch == 3

    def test_json_facade_validation(self):
        coordinator = ClusterCoordinator()
        with pytest.raises(ConfigurationError):
            coordinator.handle_heartbeat({})
        with pytest.raises(ConfigurationError):
            coordinator.handle_leave({})
        answer = coordinator.handle_register(fleet(1)[0].to_payload())
        assert answer["epoch"] == 1
        assert coordinator.handle_heartbeat({"node_id": "node0"}) == {
            "epoch": 1,
            "known": True,
        }
        payload = coordinator.shardmap_payload()
        assert ShardMap.from_payload(payload).node_ids() == ("node0",)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterCoordinator(heartbeat_timeout=0.0)


class TestRegistrationLedger:
    def make_set(self, seed):
        from repro.utils.rng import as_rng
        from repro.vsa.codebook import CodebookSet

        return CodebookSet.random(dim=64, sizes=(8, 8), rng=as_rng(seed))

    def test_missing_diffs_desired_vs_placed(self):
        ledger = RegistrationLedger()
        shard_map = ShardMap(fleet(3))
        ledger.remember("key-a", self.make_set(1))
        wanted = ledger.missing(shard_map, 2)
        expected = [
            ("key-a", node.node_id)
            for node in shard_map.replicas("key-a", 2)
        ]
        assert sorted(wanted) == sorted(expected)
        for key, node_id in wanted:
            ledger.record(key, node_id)
        # Fully placed: an unchanged map replays nothing.
        assert ledger.missing(shard_map, 2) == []

    def test_forget_node_forces_reprogramming(self):
        ledger = RegistrationLedger()
        shard_map = ShardMap(fleet(3))
        ledger.remember("key-a", self.make_set(1))
        for key, node_id in ledger.missing(shard_map, 2):
            ledger.record(key, node_id)
        victim = shard_map.replicas("key-a", 2)[0].node_id
        ledger.forget_node(victim)
        assert ledger.missing(shard_map, 2) == [("key-a", victim)]
        assert victim not in ledger.placed("key-a")

    def test_rebalance_replay_is_minimal(self):
        ledger = RegistrationLedger()
        before = ShardMap(fleet(4))
        keys = [f"key-{index}" for index in range(16)]
        for index, key in enumerate(keys):
            ledger.remember(key, self.make_set(index))
        for key, node_id in ledger.missing(before, 2):
            ledger.record(key, node_id)
        # node3 leaves: only placements that moved onto survivors replay.
        after = ShardMap(fleet(3), epoch=2)
        replay = ledger.missing(after, 2)
        assert replay == sorted(replay)  # deterministic order
        for key, node_id in replay:
            assert node_id != "node3"
            assert node_id in (
                node.node_id for node in after.replicas(key, 2)
            )
        # Keys whose replica set never touched node3 replay nothing.
        untouched = [
            key
            for key in keys
            if all(
                node.node_id != "node3"
                for node in before.replicas(key, 2)
            )
        ]
        replayed_keys = {key for key, _ in replay}
        assert not replayed_keys.intersection(untouched)


class TestMergeMetrics:
    def histogram(self, counts, mean):
        return {
            "bounds": [1.0, 10.0, 100.0],
            "counts": list(counts),
            "count": sum(counts),
            "mean": mean,
        }

    def test_counters_sum_and_histograms_merge(self):
        left = {
            "served": 10,
            "latency_histogram": self.histogram([8, 2, 0], 2.0),
            "transport": "in-process",
        }
        right = {
            "served": 5,
            "latency_histogram": self.histogram([0, 0, 5], 50.0),
            "transport": "in-process",
        }
        merged = merge_metrics([left, right], node_ids=["b", "a"])
        assert merged["served"] == 15
        assert merged["latency_histogram"]["counts"] == [8, 2, 5]
        assert merged["latency_histogram"]["count"] == 15
        expected_mean = (2.0 * 10 + 50.0 * 5) / 15
        assert merged["latency_histogram"]["mean"] == pytest.approx(
            expected_mean
        )
        assert merged["transport"] == "in-process"
        assert merged["nodes"] == ["a", "b"]
        # Percentiles come from the merged histogram, not per-node windows.
        assert merged["latency"]["samples"] == 15

    def test_non_additive_scalars_dropped(self):
        merged = merge_metrics(
            [
                {"served": 1, "uptime_seconds": 10.5, "hit_rate": 0.5},
                {"served": 2, "uptime_seconds": 99.5, "hit_rate": 0.9},
            ]
        )
        assert merged["served"] == 3
        assert "uptime_seconds" not in merged
        assert "hit_rate" not in merged

    def test_epoch_reports_newest_not_sum(self):
        merged = merge_metrics([{"epoch": 3}, {"epoch": 5}, {"epoch": 5}])
        assert merged["epoch"] == 5

    def test_node_identity_and_latency_windows_skipped(self):
        merged = merge_metrics(
            [
                {"node": "a", "latency": {"p95_ms": 3.0}, "served": 1},
                {"node": "b", "latency": {"p95_ms": 9.0}, "served": 1},
            ]
        )
        assert "node" not in merged
        assert "latency" not in merged  # no histogram to re-derive from

    def test_bounds_mismatch_is_typed(self):
        with pytest.raises(ConfigurationError):
            merge_histograms(
                [
                    self.histogram([1, 0, 0], 1.0),
                    {
                        "bounds": [5.0, 50.0],
                        "counts": [1, 0],
                        "count": 1,
                        "mean": 1.0,
                    },
                ]
            )
        with pytest.raises(ConfigurationError):
            merge_histograms([])
        with pytest.raises(ConfigurationError):
            merge_metrics([])

    def test_string_disagreement_keeps_both(self):
        merged = merge_metrics(
            [{"transport": "in-process"}, {"transport": "sharded"}]
        )
        assert merged["transport"] == ["in-process", "sharded"]

    def test_histogram_percentiles_nearest_rank(self):
        histogram = {
            "bounds": [1.0, 10.0, 100.0],
            "counts": [90, 9, 1],
            "count": 100,
            "mean": 2.0,
        }
        stats = histogram_percentiles(histogram)
        assert stats["p50"] == 1.0
        assert stats["p95"] == 10.0
        assert stats["p99"] == 100.0
        empty = histogram_percentiles(
            {"bounds": [1.0], "counts": [0], "count": 0, "mean": 0.0}
        )
        assert empty["p50"] == 0.0
