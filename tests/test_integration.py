"""Cross-model integration tests: the models must agree with each other."""

import numpy as np
import pytest

from repro.arch.dataflow import DataflowSimulator, StepLatency
from repro.arch.designs import h3d_design
from repro.core import H3DFact
from repro.floorplan import h3d_floorplans
from repro.hwmodel import calibration as cal
from repro.hwmodel.metrics import evaluate_design
from repro.resonator import FactorizationProblem
from repro.thermal.stack import h3d_thermal_stack


@pytest.fixture(scope="module")
def metrics():
    return evaluate_design(h3d_design())


class TestTimingDataflowConsistency:
    def test_mvm_interval_shared(self, metrics):
        """The timing model's MVM interval must match the dataflow latency."""
        latency = StepLatency.from_geometry(
            rows=256,
            parallel_rows=cal.ROWS_PER_PHASE,
            adc_cycles=cal.ADC_SLOT_CYCLES,
            pipeline_overhead=cal.PIPELINE_OVERHEAD_CYCLES,
        )
        assert latency.similarity == metrics.timing.mvm_interval_cycles

    def test_throughput_consistent_with_dataflow(self, metrics):
        """Sustained ops/s from the dataflow sim ~ the Table III number.

        The dataflow sweep includes unbind/convert/switch overheads and the
        bit-serial projection, so it is somewhat below the similarity-only
        peak, but must stay the same order and within ~6x.
        """
        design = h3d_design()
        latency = StepLatency.from_geometry(input_bits=design.adc_bits)
        simulator = DataflowSimulator(design.stack, design.mapping, latency=latency)
        timing = simulator.simulate_sweep(batch=100, factors=4)
        ops_per_sweep = 2 * 2 * 256 * 256 * 4 * 4 * 100  # 2 MVMs x F x batch
        sustained = (
            ops_per_sweep / timing.total_cycles * metrics.timing.frequency_hz
        )
        peak = metrics.timing.throughput_ops
        assert peak / 6 < sustained <= peak * 1.01


class TestAreaFloorplanConsistency:
    def test_floorplan_outline_matches_footprint(self, metrics):
        plans = h3d_floorplans(metrics.energy, footprint_mm2=metrics.footprint_mm2)
        for plan in plans.values():
            assert plan.area_mm2 == pytest.approx(metrics.footprint_mm2, rel=0.01)

    def test_thermal_power_matches_energy_model(self, metrics):
        plans = h3d_floorplans(metrics.energy)
        stack = h3d_thermal_stack(plans, nx=16, ny=16)
        assert stack.total_power_w == pytest.approx(
            metrics.energy.total_power_w, rel=0.15
        )


class TestEngineHardwareConsistency:
    def test_engine_report_uses_design_frequency(self, metrics):
        engine = H3DFact(rng=0)
        problem = FactorizationProblem.random(1024, 3, 8, rng=1)
        report = engine.factorize_with_report(problem, max_iterations=300)
        reconstructed = report.cycles / report.hardware_seconds
        assert reconstructed == pytest.approx(metrics.timing.frequency_hz, rel=1e-6)

    def test_energy_equals_power_times_time(self, metrics):
        engine = H3DFact(rng=0)
        problem = FactorizationProblem.random(1024, 3, 8, rng=2)
        report = engine.factorize_with_report(problem, max_iterations=300)
        assert report.hardware_joules == pytest.approx(
            metrics.energy.total_power_w * report.hardware_seconds, rel=1e-6
        )

    def test_adc_bits_propagate_to_backend(self):
        engine = H3DFact(adc_bits=8, rng=0)
        assert engine.make_backend().adc.bits == 8
        assert engine.design.adc_bits == 8


class TestTableIIvsTableIIIConsistency:
    def test_design_accuracy_snapshot_ordering(self):
        """Snapshot accuracies must preserve the stochastic > deterministic
        ordering that Table II establishes."""
        assert (
            cal.DESIGN_ACCURACY["h3d"]
            == cal.DESIGN_ACCURACY["hybrid-2d"]
            > cal.DESIGN_ACCURACY["sram-2d"]
        )
