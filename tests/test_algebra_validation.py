"""Focused error-path tests for algebra-aware validation.

The FHRR layer made several formerly bipolar-only checks dispatch on the
algebra: product validation, the expected-similarity floor, backend
complex-capability gating, and the engine/service configuration knobs.
Each error path must fire with an actionable message (naming the other
algebra when the dtype suggests a mix-up) and the happy paths must keep
their exact historical values for bipolar.
"""

import numpy as np
import pytest

from repro.core.engine import H3DFact
from repro.errors import ConfigurationError, DimensionError
from repro.resonator.activations import PhaseActivation, make_activation
from repro.resonator.backends import ExactBackend, PhasorBackend
from repro.resonator.network import FactorizationProblem, ResonatorNetwork
from repro.resonator.batched import BatchedResonatorNetwork
from repro.service.bench import ServeBenchConfig
from repro.utils.validation import (
    check_bipolar,
    check_complex_phasor,
    check_vector,
)
from repro.vsa import fhrr
from repro.vsa.algebra import get_algebra
from repro.vsa.codebook import Codebook, CodebookSet
from repro.vsa.ops import expected_similarity_floor


class TestCheckVector:
    def test_bipolar_rejects_complex_with_hint(self):
        vector = np.exp(1j * np.linspace(0, 1, 8))
        with pytest.raises(DimensionError, match="algebra='fhrr'"):
            check_bipolar("v", vector)

    def test_fhrr_rejects_real_with_hint(self):
        vector = np.ones(8, dtype=np.int8)
        with pytest.raises(DimensionError, match="algebra='bipolar'"):
            check_complex_phasor("v", vector)

    def test_fhrr_rejects_non_finite(self):
        vector = np.ones(8, dtype=np.complex128)
        vector[3] = np.nan + 1j
        with pytest.raises(DimensionError, match="non-finite"):
            check_complex_phasor("v", vector)

    def test_dispatch_unknown_algebra(self):
        with pytest.raises(ConfigurationError, match="quaternion"):
            check_vector("v", np.ones(4), algebra="quaternion")

    def test_dispatch_routes_by_algebra(self):
        bipolar = np.ones(4, dtype=np.int8)
        phasor = np.exp(1j * np.zeros(4))
        assert check_vector("v", bipolar, algebra="bipolar") is not None
        assert check_vector("v", phasor, algebra="fhrr") is not None
        with pytest.raises(DimensionError):
            check_vector("v", phasor, algebra="bipolar")
        with pytest.raises(DimensionError):
            check_vector("v", bipolar, algebra="fhrr")


class TestSimilarityFloor:
    @staticmethod
    def _floor(sigma, num_vectors=1):
        return sigma * (3.0 + np.sqrt(2.0 * np.log(max(num_vectors, 2))))

    def test_bipolar_floor_unchanged(self):
        # The historical value: sigma = 1/sqrt(D) under the 3-sigma +
        # extreme-value spread formula.
        assert expected_similarity_floor(1024) == pytest.approx(
            self._floor(1 / 32)
        )

    def test_fhrr_floor_is_tighter(self):
        bipolar = expected_similarity_floor(1024, algebra="bipolar")
        phasor = expected_similarity_floor(1024, algebra="fhrr")
        assert phasor == pytest.approx(bipolar / np.sqrt(2))

    def test_floor_scales_with_bundle_size(self):
        single = expected_similarity_floor(1024, algebra="fhrr")
        bundled = expected_similarity_floor(1024, 16, algebra="fhrr")
        sigma = 1 / np.sqrt(2 * 1024)
        assert bundled > single
        assert bundled == pytest.approx(self._floor(sigma, 16))

    def test_unknown_algebra_raises(self):
        with pytest.raises(ConfigurationError, match="algebra"):
            expected_similarity_floor(1024, algebra="binary")

    def test_matches_algebra_noise_sigma(self):
        for name in ("bipolar", "fhrr"):
            algebra = get_algebra(name)
            assert expected_similarity_floor(512, algebra=name) == pytest.approx(
                self._floor(algebra.noise_sigma(512))
            )


class TestComplexCapabilityGating:
    def test_sequential_network_rejects_real_backend(self):
        problem = FactorizationProblem.random(128, 3, 6, rng=0, algebra="fhrr")
        with pytest.raises(ConfigurationError, match="complex"):
            ResonatorNetwork(problem.codebooks, backend=ExactBackend())

    def test_batched_network_rejects_real_backend(self):
        problem = FactorizationProblem.random(128, 3, 6, rng=0, algebra="fhrr")
        with pytest.raises(ConfigurationError, match="complex"):
            BatchedResonatorNetwork(problem.codebooks, backend=ExactBackend())

    def test_phasor_backend_defaults_for_fhrr(self):
        problem = FactorizationProblem.random(128, 3, 6, rng=0, algebra="fhrr")
        network = ResonatorNetwork(problem.codebooks)
        assert isinstance(network.backend, PhasorBackend)
        assert isinstance(network.activation, PhaseActivation)

    def test_make_activation_phase(self):
        activation = make_activation("phase")
        assert isinstance(activation, PhaseActivation)
        v = fhrr.random_phasor(64, rng=np.random.default_rng(0)) * 2.5
        np.testing.assert_allclose(
            activation(v), fhrr.spectral_normalize(v), atol=1e-12
        )


class TestEngineKnobs:
    def test_unknown_algebra(self):
        with pytest.raises(ConfigurationError, match="algebra"):
            H3DFact(algebra="holographic")

    def test_fhrr_crossbar_rejected(self):
        with pytest.raises(ConfigurationError, match="crossbar"):
            H3DFact(algebra="fhrr", fidelity="crossbar")

    def test_algebra_mismatch_rejected(self):
        engine = H3DFact(algebra="fhrr")
        bipolar = FactorizationProblem.random(128, 3, 6, rng=0)
        with pytest.raises(ConfigurationError, match="bipolar"):
            engine.make_network(bipolar.codebooks)
        with pytest.raises(ConfigurationError, match="bipolar"):
            engine.make_batched_network(bipolar.codebooks)

    def test_serve_bench_algebra_validated(self):
        with pytest.raises(ConfigurationError, match="algebra"):
            ServeBenchConfig(algebra="ternary")


class TestCodebookAlgebraConsistency:
    def test_codebook_rejects_unknown_algebra(self):
        with pytest.raises(ConfigurationError, match="algebra"):
            Codebook(
                name="f0",
                matrix=np.ones((8, 2), dtype=np.int8),
                algebra="spatter",
            )

    def test_set_rejects_mixed_algebras(self):
        rng = np.random.default_rng(0)
        bipolar = Codebook.random("f0", 64, 4, rng=rng)
        phasor = Codebook.random("f1", 64, 4, rng=rng, algebra="fhrr")
        with pytest.raises(ConfigurationError, match="algebra"):
            CodebookSet(codebooks=(bipolar, phasor))

    def test_problem_product_validated_per_algebra(self):
        rng = np.random.default_rng(1)
        phasor_set = CodebookSet.random_uniform(64, 3, 4, rng=rng, algebra="fhrr")
        bipolar_product = np.ones(64, dtype=np.int8)
        with pytest.raises(DimensionError, match="algebra='bipolar'"):
            FactorizationProblem(codebooks=phasor_set, product=bipolar_product)
