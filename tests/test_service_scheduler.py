"""Tests for the micro-batching scheduler and the batch planner."""

import numpy as np
import pytest

from repro.core.engine import baseline_network
from repro.errors import BackpressureError, ConfigurationError, ServiceError
from repro.resonator import FactorizationProblem
from repro.service import (
    BatchPolicy,
    CodebookRegistry,
    FactorizationRequest,
    FactorizationService,
    group_by_geometry,
    run_problems_grouped,
)
from repro.vsa import CodebookSet


def make_problem(seed, dim=256, factors=3, size=8):
    return FactorizationProblem.random(dim, factors, size, rng=seed)


def make_requests(count, *, dim=256, size=8, seed_base=100, **kwargs):
    return [
        FactorizationRequest.from_problem(
            make_problem(i, dim=dim, size=size),
            seed=seed_base + i,
            request_id=str(i),
            **kwargs,
        )
        for i in range(count)
    ]


def result_signature(result):
    return (result.indices, result.outcome, result.iterations)


class TestRequestValidation:
    def test_needs_exactly_one_codebook_reference(self):
        problem = make_problem(0)
        with pytest.raises(ConfigurationError):
            FactorizationRequest(product=problem.product)
        with pytest.raises(ConfigurationError):
            FactorizationRequest(
                product=problem.product,
                codebooks=problem.codebooks,
                codebook_key="abc",
            )

    def test_product_must_match_codebook_dim(self):
        problem = make_problem(0)
        with pytest.raises(ConfigurationError):
            FactorizationRequest(
                product=problem.product[:-1], codebooks=problem.codebooks
            )

    def test_product_must_be_bipolar(self):
        problem = make_problem(0)
        bad = problem.product.copy()
        bad[0] = 0
        with pytest.raises(ConfigurationError):
            FactorizationRequest(product=bad, codebooks=problem.codebooks)

    def test_max_iterations_positive(self):
        problem = make_problem(0)
        with pytest.raises(ConfigurationError):
            FactorizationRequest(
                product=problem.product,
                codebooks=problem.codebooks,
                max_iterations=0,
            )


class TestBatchPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_seconds": -1.0},
            {"queue_capacity": 0},
            {"backpressure": "drop"},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchPolicy(**kwargs)


class TestSubmission:
    def test_submit_resolves_future_with_response(self):
        with FactorizationService() as service:
            problem = make_problem(1)
            response = service.submit(
                FactorizationRequest.from_problem(
                    problem, seed=7, request_id="r1"
                )
            ).result(timeout=30)
        assert response.request_id == "r1"
        assert response.result.correct
        assert response.batch_size >= 1

    def test_size_flush_coalesces_full_batch(self):
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=30.0)
        with FactorizationService(policy=policy) as service:
            futures = [
                service.submit(request) for request in make_requests(4)
            ]
            responses = [f.result(timeout=30) for f in futures]
        # Deadline never fires (30 s); only the size trigger can flush.
        assert [r.batch_size for r in responses] == [4, 4, 4, 4]
        assert len({r.batch_id for r in responses}) == 1
        assert service.stats.batches == 1
        assert service.stats.coalesced_requests == 4

    def test_deadline_flush_serves_partial_batch(self):
        policy = BatchPolicy(max_batch_size=64, max_wait_seconds=0.01)
        with FactorizationService(policy=policy) as service:
            response = service.submit(make_requests(1)[0]).result(timeout=30)
        # The batch never filled; the deadline served it anyway.
        assert response.batch_size == 1

    def test_registered_key_requests(self):
        registry = CodebookRegistry(capacity=4)
        codebooks = CodebookSet.random_uniform(256, 3, 8, rng=0)
        key = registry.register(codebooks)
        product = codebooks.compose((1, 2, 3))
        with FactorizationService(registry=registry) as service:
            response = service.submit(
                FactorizationRequest(
                    product=product, codebook_key=key, seed=5
                )
            ).result(timeout=30)
        assert response.cache_hit
        assert response.codebook_key == key
        assert response.result.indices == (1, 2, 3)

    def test_unknown_key_rejected_at_submit(self):
        with FactorizationService() as service:
            problem = make_problem(0)
            with pytest.raises(ServiceError):
                service.submit(
                    FactorizationRequest(
                        product=problem.product, codebook_key="missing"
                    )
                )

    def test_backpressure_error_policy(self):
        from repro.service.scheduler import _STOP

        policy = BatchPolicy(queue_capacity=2, backpressure="error")
        service = FactorizationService(policy=policy)
        # Kill the dispatcher so the bounded intake queue cannot drain,
        # then overfill it.
        service._queue.put(_STOP)
        service._dispatcher.join(timeout=5)
        try:
            with pytest.raises(BackpressureError):
                for request in make_requests(10):
                    service.submit(request)
            assert service.stats.rejected >= 1
        finally:
            while not service._queue.empty():
                service._queue.get_nowait()
            service.close()

    def test_submit_after_close_raises(self):
        service = FactorizationService()
        service.close()
        with pytest.raises(ServiceError):
            service.submit(make_requests(1)[0])
        service.close()  # idempotent

    def test_failed_batch_resolves_future_with_exception(self):
        def broken_factory(problem):
            raise RuntimeError("no network for you")

        with FactorizationService(broken_factory) as service:
            future = service.submit(make_requests(1)[0])
            with pytest.raises(RuntimeError):
                future.result(timeout=30)
        assert service.stats.failed == 1

    def test_different_budgets_never_share_a_batch(self):
        policy = BatchPolicy(max_batch_size=8, max_wait_seconds=0.5)
        codebooks = CodebookSet.random_uniform(256, 3, 8, rng=0)
        requests = [
            FactorizationRequest(
                product=codebooks.compose((i % 8, 0, 1)),
                codebooks=codebooks,
                seed=i,
                max_iterations=50 if i % 2 == 0 else 80,
            )
            for i in range(8)
        ]
        with FactorizationService(policy=policy) as service:
            responses = service.run(requests, timeout=30)
        budgets_by_batch = {}
        for request, response in zip(requests, responses):
            budgets_by_batch.setdefault(response.batch_id, set()).add(
                request.max_iterations
            )
        assert all(len(budgets) == 1 for budgets in budgets_by_batch.values())


class TestRunCoalesced:
    def test_responses_in_request_order(self):
        requests = make_requests(6)
        with FactorizationService() as service:
            responses = service.run_coalesced(requests)
        assert [r.request_id for r in responses] == [str(i) for i in range(6)]
        for request, response in zip(requests, responses):
            assert response.result.indices == request.true_indices

    def test_same_geometry_packs_into_one_batch(self):
        with FactorizationService() as service:
            responses = service.run_coalesced(make_requests(5))
        assert {r.batch_size for r in responses} == {5}

    def test_max_batch_size_chunks_groups(self):
        with FactorizationService() as service:
            responses = service.run_coalesced(
                make_requests(5), max_batch_size=2
            )
        assert [r.batch_size for r in responses] == [2, 2, 2, 2, 1]

    def test_empty_request_list_rejected(self):
        with FactorizationService() as service:
            with pytest.raises(ConfigurationError):
                service.run_coalesced([])

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_max_batch_size_rejected(self, bad):
        with FactorizationService() as service:
            with pytest.raises(ConfigurationError):
                service.run_coalesced(make_requests(2), max_batch_size=bad)

    def test_packing_independence_of_seeded_results(self):
        """Bit-identical results whether packed whole, chunked, or solo."""
        requests = make_requests(6)
        with FactorizationService() as service:
            whole = service.run_coalesced(requests)
            chunked = service.run_coalesced(requests, max_batch_size=2)
            solo = service.run_coalesced(requests, max_batch_size=1)
        for a, b, c in zip(whole, chunked, solo):
            assert result_signature(a.result) == result_signature(b.result)
            assert result_signature(a.result) == result_signature(c.result)

    def test_arrival_order_independence_of_seeded_results(self):
        requests = make_requests(6)
        with FactorizationService() as service:
            forward = service.run_coalesced(requests)
            backward = service.run_coalesced(list(reversed(requests)))
        by_id_forward = {r.request_id: r for r in forward}
        by_id_backward = {r.request_id: r for r in backward}
        for request_id, response in by_id_forward.items():
            assert result_signature(response.result) == result_signature(
                by_id_backward[request_id].result
            )

    def test_async_and_coalesced_agree(self):
        requests = make_requests(6)
        with FactorizationService() as service:
            sync = service.run_coalesced(requests)
        with FactorizationService(
            policy=BatchPolicy(max_batch_size=3, max_wait_seconds=0.05)
        ) as service:
            live = service.run(requests, timeout=30)
        for a, b in zip(sync, live):
            assert result_signature(a.result) == result_signature(b.result)


class TestPlanner:
    def test_group_by_geometry_first_appearance_order(self):
        problems = [
            make_problem(0, dim=256, size=8),
            make_problem(1, dim=512, size=8),
            make_problem(2, dim=256, size=8),
            make_problem(3, dim=256, size=16),
        ]
        groups = group_by_geometry(problems)
        assert groups == [[0, 2], [1], [3]]

    def test_grouped_results_in_input_order(self):
        # Odd codebook size: superposition init has no sign ties, so every
        # trajectory is deterministic and the per-problem reference runs
        # below are exact (PR 1's batched/sequential parity).
        problems = [
            make_problem(0, dim=256, size=9),
            make_problem(1, dim=512, size=9),
            make_problem(2, dim=256, size=9),
        ]
        results = run_problems_grouped(
            lambda p: baseline_network(p.codebooks, max_iterations=100),
            problems,
        )
        assert len(results) == 3
        for problem, result in zip(problems, results):
            reference = baseline_network(
                problem.codebooks, max_iterations=100
            ).factorize(problem.product, true_indices=problem.true_indices)
            assert result_signature(result) == result_signature(reference)

    def test_sequential_engine_matches_flat_loop(self):
        """engine="sequential" preserves the historical ungrouped path."""
        problems = [
            make_problem(0, dim=256, size=9),
            make_problem(1, dim=512, size=9),
            make_problem(2, dim=256, size=9),
        ]
        grouped = run_problems_grouped(
            lambda p: baseline_network(p.codebooks, max_iterations=100),
            problems,
            engine="sequential",
        )
        flat = [
            baseline_network(p.codebooks, max_iterations=100).factorize(
                p.product, true_indices=p.true_indices
            )
            for p in problems
        ]
        for a, b in zip(grouped, flat):
            assert result_signature(a) == result_signature(b)

    def test_empty_problem_list_rejected(self):
        with pytest.raises(ConfigurationError):
            run_problems_grouped(lambda p: None, [])
